//! Poll-based coordination futures and the [`WaiterSet`] driver — the
//! async submission subsystem.
//!
//! The sync API hands every pending query a [`crate::Ticket`] whose
//! channel the submitter *blocks* on: one OS thread per in-flight
//! coordination. That caps a front-end far below the "thousands of
//! in-flight coordinations" the coordination model is supposed to pay
//! off at. The async API replaces the blocking receiver with a
//! [`CoordinationFuture`]: a plain `std::future::Future` whose waker is
//! parked in the coordinator's waiter table and fired by whichever code
//! path terminates the query — a match commit, a cancellation, an
//! expiry sweep (seq-based, or the deadline-driven `expire_due` run by
//! the background [`crate::DeadlineSweeper`]), or a reattach that
//! supersedes the handle.
//!
//! No external async runtime is required (and none is linked): the
//! future is poll-based over `std::task`, so it works under any
//! executor — or under no executor at all, via [`WaiterSet`], a small
//! driver that lets **one** thread hold thousands of in-flight futures
//! and harvest completions as they fire, and
//! [`CoordinationFuture::wait_timeout`], a single-future blocking wait
//! built on a thread-parking waker.
//!
//! # Waker lifecycle
//!
//! A future's shared slot ([`TicketShared`]) lives in two places: the
//! future itself, and the owning coordinator's per-shard waiter table.
//! The coordinator completes the slot **while holding the shard lock**
//! (so a completion cannot race a migration moving the waiter between
//! shards), but fires the parked waker *after* taking it out of the
//! slot's own mutex — waker callbacks never run under a slot lock, and
//! the slot mutex is a leaf: no coordinator lock is ever taken inside
//! it. The first terminal outcome wins; later completions (e.g. a
//! reattach superseding an already-answered handle) are no-ops.
//! Dropping a future without polling it is safe — the slot completes
//! into the void, which is exactly what a crashed front-end looks like;
//! [`crate::ShardedCoordinator::reattach_async`] hands the reconnect a
//! fresh future for the same query. See `docs/async.md`.

use std::collections::HashMap;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::time::{Duration, Instant};

use crate::coordinator::MatchNotification;
use crate::ir::QueryId;

/// Terminal result of an asynchronously submitted entangled query.
/// Every future resolves to exactly one of these.
#[derive(Debug, Clone, PartialEq)]
pub enum CoordinationOutcome {
    /// The query's group matched; these are its answers.
    Answered(MatchNotification),
    /// The query was withdrawn by its owner
    /// ([`crate::Coordinator::cancel`] /
    /// [`crate::Coordinator::cancel_owner`]).
    Cancelled,
    /// The query was retired by an expiry sweep — a deadline-driven
    /// `expire_due` (usually run by the background
    /// [`crate::DeadlineSweeper`] when the query's
    /// [`crate::SubmitOptions::deadline`] lapses) or the legacy
    /// seq-based [`crate::Coordinator::expire_before`].
    Expired,
    /// A newer handle for the same query was issued (the owner
    /// reattached); this future will never receive the answer.
    Superseded,
}

impl CoordinationOutcome {
    /// The notification, when the outcome is [`Answered`].
    ///
    /// [`Answered`]: CoordinationOutcome::Answered
    pub fn answered(self) -> Option<MatchNotification> {
        match self {
            CoordinationOutcome::Answered(n) => Some(n),
            _ => None,
        }
    }
}

/// The completion slot shared between a [`CoordinationFuture`] and the
/// coordinator's waiter table: the terminal outcome (set once) and the
/// parked waker of whoever polled last.
#[derive(Debug, Default)]
pub(crate) struct TicketShared {
    slot: Mutex<Slot>,
}

#[derive(Debug, Default)]
struct Slot {
    outcome: Option<CoordinationOutcome>,
    taken: bool,
    waker: Option<Waker>,
}

impl TicketShared {
    /// A slot that is already terminal (for queries answered on
    /// arrival).
    pub(crate) fn completed(outcome: CoordinationOutcome) -> TicketShared {
        TicketShared {
            slot: Mutex::new(Slot {
                outcome: Some(outcome),
                taken: false,
                waker: None,
            }),
        }
    }

    /// Sets the terminal outcome (first writer wins) and fires the
    /// parked waker, outside the slot lock. Idempotent.
    pub(crate) fn complete(&self, outcome: CoordinationOutcome) {
        let waker = {
            let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
            if slot.outcome.is_some() {
                return; // the first terminal result wins
            }
            slot.outcome = Some(outcome);
            slot.waker.take()
        };
        if let Some(waker) = waker {
            waker.wake();
        }
    }
}

/// A pending (or already-answered) asynchronously submitted entangled
/// query. Resolves to its [`CoordinationOutcome`] when the coordinator
/// terminates the query — match commit, cancel, expiry, or
/// supersession by a reattach.
///
/// Plain `std::future::Future`, no runtime attached: await it under any
/// executor, drive many at once from one thread with a [`WaiterSet`],
/// or block on a single one with
/// [`CoordinationFuture::wait_timeout`]. The query id is available
/// immediately via [`CoordinationFuture::id`] (usable with
/// [`crate::Coordinator::cancel`] while in flight).
#[derive(Debug)]
pub struct CoordinationFuture {
    id: QueryId,
    shared: Arc<TicketShared>,
}

impl CoordinationFuture {
    pub(crate) fn new(id: QueryId, shared: Arc<TicketShared>) -> CoordinationFuture {
        CoordinationFuture { id, shared }
    }

    /// A future that is already terminal (queries answered on arrival).
    pub(crate) fn ready(id: QueryId, outcome: CoordinationOutcome) -> CoordinationFuture {
        CoordinationFuture {
            id,
            shared: Arc::new(TicketShared::completed(outcome)),
        }
    }

    /// The submitted query's id.
    pub fn id(&self) -> QueryId {
        self.id
    }

    /// Whether a terminal outcome has been set (the future would
    /// resolve on its next poll).
    pub fn is_complete(&self) -> bool {
        let slot = self.shared.slot.lock().unwrap_or_else(|e| e.into_inner());
        slot.outcome.is_some()
    }

    /// Takes the outcome if the future is complete, without a waker
    /// (non-blocking probe; the async analogue of
    /// [`crate::Ticket`]`.receiver.try_recv()`). Returns `None` while
    /// in flight and after the outcome was already taken.
    pub fn try_take(&mut self) -> Option<CoordinationOutcome> {
        let mut slot = self.shared.slot.lock().unwrap_or_else(|e| e.into_inner());
        if slot.taken {
            return None;
        }
        let outcome = slot.outcome.clone()?;
        slot.taken = true;
        Some(outcome)
    }

    /// Blocks the calling thread until the future resolves or `timeout`
    /// elapses — the drop-in replacement for a sync ticket's
    /// `recv_timeout`, built on a thread-parking waker (still no
    /// runtime). Returns `None` on timeout; the future stays armed.
    pub fn wait_timeout(&mut self, timeout: Duration) -> Option<CoordinationOutcome> {
        let deadline = Instant::now() + timeout;
        let waker = Waker::from(Arc::new(ThreadWaker(std::thread::current())));
        let mut cx = Context::from_waker(&waker);
        loop {
            if let Poll::Ready(outcome) = Pin::new(&mut *self).poll(&mut cx) {
                return Some(outcome);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            std::thread::park_timeout(deadline - now);
        }
    }
}

impl Future for CoordinationFuture {
    type Output = CoordinationOutcome;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<CoordinationOutcome> {
        let mut slot = self.shared.slot.lock().unwrap_or_else(|e| e.into_inner());
        // the outcome is delivered exactly once across poll and
        // try_take; re-polling a consumed future is a caller bug (the
        // std Future contract allows panicking here) — never deliver
        // the same completion twice
        assert!(
            !slot.taken,
            "CoordinationFuture polled after its outcome was taken"
        );
        if let Some(outcome) = slot.outcome.clone() {
            slot.taken = true;
            return Poll::Ready(outcome);
        }
        // park (or refresh) the waker; the completing path takes it out
        // under this same slot lock, so a completion either sees this
        // waker or has already set the outcome we just checked
        slot.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

/// Wakes a parked thread ([`CoordinationFuture::wait_timeout`]).
struct ThreadWaker(std::thread::Thread);

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.0.unpark();
    }
}

/// The wake signal shared by a [`WaiterSet`] and the wakers of every
/// future it drives: the queue of query ids whose futures fired, the
/// condvar a blocked [`WaiterSet::wait_timeout`] sleeps on, and an
/// optional external wake hook for owners that sleep on something
/// other than the condvar (e.g. the net reactor parked in `epoll_wait`
/// — the hook writes its eventfd).
#[derive(Default)]
struct SetSignal {
    woken: Mutex<Vec<QueryId>>,
    condvar: Condvar,
    hook: Mutex<Option<Box<dyn Fn() + Send + Sync>>>,
}

impl SetSignal {
    fn push(&self, qid: QueryId) {
        let mut woken = self.woken.lock().unwrap_or_else(|e| e.into_inner());
        woken.push(qid);
        drop(woken);
        self.condvar.notify_all();
        let hook = self.hook.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(hook) = hook.as_ref() {
            hook();
        }
    }
}

/// One future's waker inside a [`WaiterSet`]: records *which* future
/// fired and pokes the set's condvar.
struct SetWaker {
    qid: QueryId,
    signal: Arc<SetSignal>,
}

impl Wake for SetWaker {
    fn wake(self: Arc<Self>) {
        self.signal.push(self.qid);
    }
}

/// An executor-agnostic driver that lets **one** thread hold thousands
/// of in-flight [`CoordinationFuture`]s and harvest completions as
/// they fire — the front-end loop the async API exists for.
///
/// Not a general executor: it only drives coordination futures, which
/// never need re-polling except when their waker fires (a terminal
/// outcome is the only state change). The set therefore polls a future
/// exactly once on insert (parking its waker) and again only when the
/// waker fired, so a quiescent set of 10k pending futures costs zero
/// CPU.
///
/// Single-owner by design (`&mut self` everywhere): share work across
/// threads by sending futures to the owning thread, not the set.
pub struct WaiterSet {
    entries: HashMap<QueryId, CoordinationFuture>,
    /// Inserted but never polled (their wakers are not parked yet).
    fresh: Vec<QueryId>,
    signal: Arc<SetSignal>,
}

impl Default for WaiterSet {
    fn default() -> Self {
        WaiterSet::new()
    }
}

impl WaiterSet {
    /// An empty set.
    pub fn new() -> WaiterSet {
        WaiterSet {
            entries: HashMap::new(),
            fresh: Vec::new(),
            signal: Arc::new(SetSignal::default()),
        }
    }

    /// Installs a hook invoked every time one of this set's futures
    /// fires its waker — possibly from another thread, and (per the
    /// waker contract in `docs/async.md`) possibly while the
    /// completing coordinator still holds a shard lock, so the hook
    /// must be O(1) and must not call back into the coordinator. An
    /// owner that multiplexes the set with I/O readiness (the net
    /// reactor sleeping in `epoll_wait`) uses this to bridge
    /// completion wakes into its own wait primitive; pure
    /// [`WaiterSet::wait_timeout`] users never need it, the built-in
    /// condvar is always notified first.
    pub fn set_wake_hook(&mut self, hook: impl Fn() + Send + Sync + 'static) {
        let mut slot = self.signal.hook.lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some(Box::new(hook));
    }

    /// Adds a future to the set. It is polled (and its waker parked) on
    /// the next [`WaiterSet::poll_ready`] / [`WaiterSet::wait_timeout`];
    /// already-completed futures surface there immediately.
    ///
    /// Returns the future previously held for the same query id, if
    /// any — e.g. the pre-reattach handle when a reconnecting front-end
    /// inserts `reattach_async`'s fresh futures into the same set. The
    /// displaced future is still armed (it resolves
    /// [`CoordinationOutcome::Superseded`] in that pattern); resolve or
    /// drop it deliberately rather than letting its outcome vanish from
    /// the ledger.
    pub fn insert(&mut self, future: CoordinationFuture) -> Option<CoordinationFuture> {
        let qid = future.id();
        self.fresh.push(qid);
        self.entries.insert(qid, future)
    }

    /// Number of futures currently held (in-flight + completed-but-not-
    /// yet-harvested).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the set holds no futures.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The ids still held by the set (the async pending set, plus any
    /// completions not yet harvested).
    pub fn ids(&self) -> Vec<QueryId> {
        let mut ids: Vec<QueryId> = self.entries.keys().copied().collect();
        ids.sort_by_key(|q| q.0);
        ids
    }

    /// Removes a future without resolving it (e.g. after cancelling the
    /// query through the coordinator and not caring about the terminal
    /// outcome). Returns it, still armed.
    pub fn remove(&mut self, qid: QueryId) -> Option<CoordinationFuture> {
        self.entries.remove(&qid)
    }

    /// Polls every future whose waker fired (plus the freshly inserted
    /// ones), removing and returning the completed ones. Non-blocking;
    /// returns an empty vec when nothing resolved.
    pub fn poll_ready(&mut self) -> Vec<(QueryId, CoordinationOutcome)> {
        let mut candidates = std::mem::take(&mut self.fresh);
        {
            let mut woken = self.signal.woken.lock().unwrap_or_else(|e| e.into_inner());
            candidates.append(&mut woken);
        }
        let mut completed = Vec::new();
        for qid in candidates {
            let Some(future) = self.entries.get_mut(&qid) else {
                continue; // removed, or completed by an earlier duplicate wake
            };
            let waker = Waker::from(Arc::new(SetWaker {
                qid,
                signal: Arc::clone(&self.signal),
            }));
            let mut cx = Context::from_waker(&waker);
            if let Poll::Ready(outcome) = Pin::new(future).poll(&mut cx) {
                self.entries.remove(&qid);
                completed.push((qid, outcome));
            }
        }
        completed
    }

    /// Blocks until at least one future resolves or `timeout` elapses,
    /// then harvests like [`WaiterSet::poll_ready`]. Returns an empty
    /// vec on timeout or when the set is empty.
    pub fn wait_timeout(&mut self, timeout: Duration) -> Vec<(QueryId, CoordinationOutcome)> {
        let deadline = Instant::now() + timeout;
        loop {
            let completed = self.poll_ready();
            if !completed.is_empty() || self.entries.is_empty() {
                return completed;
            }
            let now = Instant::now();
            if now >= deadline {
                return Vec::new();
            }
            let woken = self.signal.woken.lock().unwrap_or_else(|e| e.into_inner());
            if woken.is_empty() {
                // a wake between the drop inside poll_ready and this
                // re-acquire lands in `woken` and is seen here, so the
                // sleep never misses a completion
                let _ = self
                    .signal
                    .condvar
                    .wait_timeout(woken, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    /// Drives the set until it is empty or `timeout` elapses, returning
    /// everything harvested. The workhorse of tests and the example
    /// front-end.
    pub fn drain_timeout(&mut self, timeout: Duration) -> Vec<(QueryId, CoordinationOutcome)> {
        let deadline = Instant::now() + timeout;
        let mut all = Vec::new();
        while !self.entries.is_empty() {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            all.extend(self.wait_timeout(deadline - now));
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn notification(qid: u64) -> MatchNotification {
        MatchNotification {
            id: QueryId(qid),
            group: vec![QueryId(qid)],
            answers: Vec::new(),
        }
    }

    fn armed(qid: u64) -> (CoordinationFuture, Arc<TicketShared>) {
        let shared = Arc::new(TicketShared::default());
        (
            CoordinationFuture::new(QueryId(qid), Arc::clone(&shared)),
            shared,
        )
    }

    #[test]
    fn ready_future_resolves_immediately() {
        let mut f =
            CoordinationFuture::ready(QueryId(1), CoordinationOutcome::Answered(notification(1)));
        assert!(f.is_complete());
        assert!(matches!(
            f.try_take(),
            Some(CoordinationOutcome::Answered(_))
        ));
        assert!(f.try_take().is_none(), "outcome is taken once");
    }

    #[test]
    fn first_terminal_outcome_wins() {
        let (mut f, shared) = armed(2);
        shared.complete(CoordinationOutcome::Cancelled);
        shared.complete(CoordinationOutcome::Answered(notification(2)));
        assert_eq!(f.try_take(), Some(CoordinationOutcome::Cancelled));
    }

    #[test]
    fn wait_timeout_returns_none_then_outcome() {
        let (mut f, shared) = armed(3);
        assert!(f.wait_timeout(Duration::from_millis(10)).is_none());
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            shared.complete(CoordinationOutcome::Expired);
        });
        assert_eq!(
            f.wait_timeout(Duration::from_secs(5)),
            Some(CoordinationOutcome::Expired)
        );
        handle.join().unwrap();
    }

    #[test]
    fn waiter_set_harvests_completions_in_any_order() {
        let mut set = WaiterSet::new();
        let mut shares = Vec::new();
        for qid in 0..100u64 {
            let (f, s) = armed(qid);
            set.insert(f);
            shares.push(s);
        }
        assert_eq!(set.len(), 100);
        assert!(set.poll_ready().is_empty(), "nothing completed yet");

        // complete out of order, some before the next poll, some after
        for qid in (0..50usize).rev() {
            shares[qid].complete(CoordinationOutcome::Cancelled);
        }
        let first = set.poll_ready();
        assert_eq!(first.len(), 50);
        for (qid, share) in shares.iter().enumerate().skip(50) {
            share.complete(CoordinationOutcome::Answered(notification(qid as u64)));
        }
        let second = set.drain_timeout(Duration::from_secs(5));
        assert_eq!(second.len(), 50);
        assert!(set.is_empty());
    }

    #[test]
    fn waiter_set_wait_blocks_until_completion() {
        let mut set = WaiterSet::new();
        let (f, shared) = armed(7);
        set.insert(f);
        assert!(set.poll_ready().is_empty());
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            shared.complete(CoordinationOutcome::Superseded);
        });
        let got = set.wait_timeout(Duration::from_secs(5));
        assert_eq!(got, vec![(QueryId(7), CoordinationOutcome::Superseded)]);
        handle.join().unwrap();
    }

    #[test]
    fn waiter_set_remove_forgets_without_resolving() {
        let mut set = WaiterSet::new();
        let (f, shared) = armed(9);
        set.insert(f);
        let future = set.remove(QueryId(9)).expect("present");
        assert!(set.is_empty());
        shared.complete(CoordinationOutcome::Cancelled);
        let mut future = future;
        assert_eq!(future.try_take(), Some(CoordinationOutcome::Cancelled));
        // waking a removed entry must not wedge the set
        assert!(set.poll_ready().is_empty());
    }

    #[test]
    fn insert_returns_the_displaced_future_for_a_duplicate_id() {
        let mut set = WaiterSet::new();
        let (old, old_shared) = armed(13);
        let (new, _new_shared) = armed(13);
        assert!(set.insert(old).is_none());
        let mut displaced = set.insert(new).expect("duplicate id displaces");
        assert_eq!(set.len(), 1, "one entry per query id");
        // the displaced handle is still armed and resolvable
        old_shared.complete(CoordinationOutcome::Superseded);
        assert_eq!(
            displaced.try_take(),
            Some(CoordinationOutcome::Superseded),
            "the displaced future's outcome is not lost"
        );
    }

    #[test]
    #[should_panic(expected = "polled after its outcome was taken")]
    fn poll_after_try_take_panics_instead_of_double_delivering() {
        let (mut f, shared) = armed(15);
        shared.complete(CoordinationOutcome::Cancelled);
        assert_eq!(f.try_take(), Some(CoordinationOutcome::Cancelled));
        // delivering the same terminal outcome twice would corrupt any
        // exactly-once ledger; re-polling a consumed future is loud
        let _ = f.wait_timeout(Duration::from_millis(1));
    }

    #[test]
    fn wake_hook_fires_on_cross_thread_completion() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let mut set = WaiterSet::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&hits);
        set.set_wake_hook(move || {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        let (f, shared) = armed(21);
        set.insert(f);
        assert!(set.poll_ready().is_empty(), "waker parked, nothing fired");
        assert_eq!(hits.load(Ordering::SeqCst), 0, "no spurious hook calls");
        std::thread::spawn(move || shared.complete(CoordinationOutcome::Cancelled))
            .join()
            .unwrap();
        assert!(hits.load(Ordering::SeqCst) >= 1, "hook saw the wake");
        assert_eq!(set.poll_ready().len(), 1);
    }

    #[test]
    fn already_completed_future_surfaces_on_first_poll() {
        let mut set = WaiterSet::new();
        let (f, shared) = armed(11);
        shared.complete(CoordinationOutcome::Expired);
        set.insert(f);
        let got = set.poll_ready();
        assert_eq!(got, vec![(QueryId(11), CoordinationOutcome::Expired)]);
    }
}
