//! The pending-query registry.
//!
//! Queries whose postconditions are not yet satisfiable "are not
//! rejected, but rather get registered in the system for possible later
//! execution" (paper, Section 2.1). The registry stores them and answers
//! the matcher's central question: *which pending heads could satisfy
//! this answer constraint?*
//!
//! Two lookup paths exist, switchable for the ablation experiment (E10
//! in DESIGN.md):
//!
//! * **relation lookup** — all heads contributed to the constraint's
//!   answer relation (the baseline);
//! * **constant-position index** — for every position where the
//!   constraint has a constant, a candidate head must carry either the
//!   same constant or a variable there. Maintained incrementally, this
//!   typically cuts candidates from *all queries on the relation* to
//!   *the handful naming the right partner* (e.g. the index on position
//!   0 of `Reservation('Jerry', ?fno)` returns only Jerry's own queries).

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use youtopia_storage::Value;

use crate::ir::{Atom, EntangledQuery, QueryId, Term};

/// A registered pending query.
#[derive(Debug, Clone)]
pub struct Pending {
    /// The query's id.
    pub id: QueryId,
    /// Who submitted it (user name / session tag; used by the demo app
    /// and the admin interface).
    pub owner: String,
    /// The compiled query, with variables namespaced by `id`.
    pub query: EntangledQuery,
    /// Monotonic submission sequence number.
    pub seq: u64,
    /// Absolute deadline in clock milliseconds, if the submission
    /// carried one ([`crate::SubmitOptions::deadline`]). A pending
    /// query past its deadline is retired by the next `expire_due`
    /// sweep; `None` waits forever.
    pub deadline: Option<u64>,
}

/// Reference to one head atom of one pending query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HeadRef {
    /// The owning query.
    pub qid: QueryId,
    /// Index into that query's `heads`.
    pub head_idx: usize,
}

#[derive(Debug, Default)]
struct RelationIndex {
    /// All heads on this relation.
    heads: HashSet<HeadRef>,
    /// position -> constant value -> heads with that constant there.
    by_const: HashMap<usize, HashMap<Value, HashSet<HeadRef>>>,
    /// position -> heads with a variable there.
    by_var: HashMap<usize, HashSet<HeadRef>>,
}

/// The pending-query store.
#[derive(Debug, Default)]
pub struct Registry {
    queries: BTreeMap<u64, Pending>,
    relations: HashMap<String, RelationIndex>,
    /// `(deadline_millis, qid)` of every pending query carrying a
    /// deadline, ordered soonest-first — the expiry sweep's index:
    /// `min_deadline` is a first-element peek and `due_before` a range
    /// scan, never a registry walk.
    deadlines: BTreeSet<(u64, u64)>,
    use_const_index: bool,
}

impl Registry {
    /// A registry with the constant-position index enabled.
    pub fn new() -> Registry {
        Registry {
            use_const_index: true,
            ..Registry::default()
        }
    }

    /// A registry using plain relation lookups (the E10 baseline).
    pub fn without_const_index() -> Registry {
        Registry {
            use_const_index: false,
            ..Registry::default()
        }
    }

    /// Whether the constant-position index is active.
    pub fn uses_const_index(&self) -> bool {
        self.use_const_index
    }

    fn rel_key(relation: &str) -> String {
        relation.to_ascii_lowercase()
    }

    /// Registers a pending query (its variables must already be
    /// namespaced).
    pub fn insert(&mut self, pending: Pending) {
        let qid = pending.id;
        for (head_idx, head) in pending.query.heads.iter().enumerate() {
            let href = HeadRef { qid, head_idx };
            let rel = self
                .relations
                .entry(Self::rel_key(&head.relation))
                .or_default();
            rel.heads.insert(href);
            for (pos, term) in head.terms.iter().enumerate() {
                match term {
                    Term::Const(v) => {
                        rel.by_const
                            .entry(pos)
                            .or_default()
                            .entry(v.clone())
                            .or_default()
                            .insert(href);
                    }
                    Term::Var(_) => {
                        rel.by_var.entry(pos).or_default().insert(href);
                    }
                }
            }
        }
        if let Some(deadline) = pending.deadline {
            self.deadlines.insert((deadline, qid.0));
        }
        self.queries.insert(qid.0, pending);
    }

    /// Removes a pending query (answered, cancelled or expired).
    pub fn remove(&mut self, qid: QueryId) -> Option<Pending> {
        let pending = self.queries.remove(&qid.0)?;
        if let Some(deadline) = pending.deadline {
            self.deadlines.remove(&(deadline, qid.0));
        }
        for (head_idx, head) in pending.query.heads.iter().enumerate() {
            let href = HeadRef { qid, head_idx };
            if let Some(rel) = self.relations.get_mut(&Self::rel_key(&head.relation)) {
                rel.heads.remove(&href);
                for (pos, term) in head.terms.iter().enumerate() {
                    match term {
                        Term::Const(v) => {
                            if let Some(by_val) = rel.by_const.get_mut(&pos) {
                                if let Some(set) = by_val.get_mut(v) {
                                    set.remove(&href);
                                    if set.is_empty() {
                                        by_val.remove(v);
                                    }
                                }
                            }
                        }
                        Term::Var(_) => {
                            if let Some(set) = rel.by_var.get_mut(&pos) {
                                set.remove(&href);
                            }
                        }
                    }
                }
            }
        }
        Some(pending)
    }

    /// Fetches a pending query.
    pub fn get(&self, qid: QueryId) -> Option<&Pending> {
        self.queries.get(&qid.0)
    }

    /// Number of pending queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when no queries are pending.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Iterates over pending queries in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Pending> {
        self.queries.values()
    }

    /// The head atom a [`HeadRef`] points at.
    pub fn head(&self, href: HeadRef) -> Option<&Atom> {
        self.get(href.qid)
            .and_then(|p| p.query.heads.get(href.head_idx))
    }

    /// Candidate heads that could satisfy `constraint` (a positive
    /// answer-constraint atom), sorted for determinism.
    ///
    /// Soundness: the result is a superset of the heads that actually
    /// unify with the constraint (property-tested); unification makes
    /// the final call.
    pub fn candidates_for(&self, constraint: &Atom) -> Vec<HeadRef> {
        let Some(rel) = self.relations.get(&Self::rel_key(&constraint.relation)) else {
            return Vec::new();
        };
        let mut result: Option<HashSet<HeadRef>> = None;
        if self.use_const_index {
            for (pos, term) in constraint.terms.iter().enumerate() {
                let Term::Const(v) = term else { continue };
                // heads compatible at `pos`: same constant, or a variable
                let mut compatible: HashSet<HeadRef> = rel
                    .by_const
                    .get(&pos)
                    .and_then(|m| m.get(v))
                    .cloned()
                    .unwrap_or_default();
                if let Some(vars) = rel.by_var.get(&pos) {
                    compatible.extend(vars.iter().copied());
                }
                result = Some(match result {
                    None => compatible,
                    Some(acc) => acc.intersection(&compatible).copied().collect(),
                });
                if result.as_ref().is_some_and(HashSet::is_empty) {
                    return Vec::new();
                }
            }
        }
        let set = result.unwrap_or_else(|| rel.heads.clone());
        let mut out: Vec<HeadRef> = set
            .into_iter()
            .filter(|href| {
                // arity must match for unification to be possible
                self.head(*href)
                    .is_some_and(|h| h.arity() == constraint.arity())
            })
            .collect();
        out.sort();
        out
    }

    /// The earliest deadline of any pending query (`None` when no
    /// pending query carries one) — the sweeper's wakeup hint.
    pub fn min_deadline(&self) -> Option<u64> {
        self.deadlines.first().map(|&(deadline, _)| deadline)
    }

    /// The pending queries whose deadline is at or before `now_millis`,
    /// soonest first (a range scan of the deadline index; pending
    /// queries without a deadline are never returned).
    pub fn due_before(&self, now_millis: u64) -> Vec<QueryId> {
        self.deadlines
            .range(..=(now_millis, u64::MAX))
            .map(|&(_, qid)| QueryId(qid))
            .collect()
    }

    /// All pending heads on `relation` regardless of constants (the
    /// baseline lookup; also used by the naive matcher).
    pub fn heads_on_relation(&self, relation: &str) -> Vec<HeadRef> {
        let Some(rel) = self.relations.get(&Self::rel_key(relation)) else {
            return Vec::new();
        };
        let mut out: Vec<HeadRef> = rel.heads.iter().copied().collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_sql;

    fn pending(id: u64, owner: &str, sql: &str) -> Pending {
        let q = compile_sql(sql).unwrap().namespaced(QueryId(id));
        Pending {
            id: QueryId(id),
            owner: owner.into(),
            query: q,
            seq: id,
            deadline: None,
        }
    }

    fn kramer(id: u64) -> Pending {
        pending(
            id,
            "kramer",
            "SELECT 'Kramer', fno INTO ANSWER Reservation \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') \
             AND ('Jerry', fno) IN ANSWER Reservation CHOOSE 1",
        )
    }

    fn jerry(id: u64) -> Pending {
        pending(
            id,
            "jerry",
            "SELECT 'Jerry', fno INTO ANSWER Reservation \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') \
             AND ('Kramer', fno) IN ANSWER Reservation CHOOSE 1",
        )
    }

    #[test]
    fn insert_get_remove() {
        let mut reg = Registry::new();
        reg.insert(kramer(1));
        assert_eq!(reg.len(), 1);
        assert!(reg.get(QueryId(1)).is_some());
        let removed = reg.remove(QueryId(1)).unwrap();
        assert_eq!(removed.owner, "kramer");
        assert!(reg.is_empty());
        assert!(reg.remove(QueryId(1)).is_none());
    }

    #[test]
    fn candidates_use_constant_positions() {
        let mut reg = Registry::new();
        reg.insert(kramer(1));
        reg.insert(jerry(2));
        // plus unrelated noise: Elaine coordinating with George
        for (i, (a, b)) in [("Elaine", "George"), ("George", "Elaine")]
            .iter()
            .enumerate()
        {
            reg.insert(pending(
                10 + i as u64,
                a,
                &format!(
                    "SELECT '{a}', fno INTO ANSWER Reservation \
                     WHERE fno IN (SELECT fno FROM Flights) \
                     AND ('{b}', fno) IN ANSWER Reservation CHOOSE 1"
                ),
            ));
        }
        // Kramer's constraint wants Reservation('Jerry', ?fno):
        // only Jerry's head should be a candidate.
        let constraint = &reg.get(QueryId(1)).unwrap().query.constraints[0].atom;
        let cands = reg.candidates_for(constraint);
        assert_eq!(
            cands,
            vec![HeadRef {
                qid: QueryId(2),
                head_idx: 0
            }]
        );
    }

    #[test]
    fn baseline_returns_all_relation_heads() {
        let mut reg = Registry::without_const_index();
        reg.insert(kramer(1));
        reg.insert(jerry(2));
        let constraint = &reg.get(QueryId(1)).unwrap().query.constraints[0].atom;
        // baseline: both heads on Reservation are candidates
        assert_eq!(reg.candidates_for(constraint).len(), 2);
        assert!(!reg.uses_const_index());
    }

    #[test]
    fn variable_positions_stay_candidates() {
        let mut reg = Registry::new();
        // a head with a variable traveler name matches any constant
        reg.insert(pending(
            5,
            "any",
            "SELECT who, fno INTO ANSWER Reservation \
             WHERE (who, fno) IN (SELECT traveler, fno FROM Offers) CHOOSE 1",
        ));
        let constraint = Atom::new("Reservation", vec![Term::constant("Jerry"), Term::var("x")]);
        assert_eq!(reg.candidates_for(&constraint).len(), 1);
    }

    #[test]
    fn arity_mismatch_excluded() {
        let mut reg = Registry::new();
        reg.insert(pending(
            1,
            "a",
            "SELECT 'J', x, y INTO ANSWER R WHERE (x, y) IN (SELECT a, b FROM t) CHOOSE 1",
        ));
        let constraint = Atom::new("R", vec![Term::constant("J"), Term::var("v")]);
        assert!(reg.candidates_for(&constraint).is_empty());
    }

    #[test]
    fn unknown_relation_has_no_candidates() {
        let reg = Registry::new();
        let constraint = Atom::new("Ghost", vec![Term::var("x")]);
        assert!(reg.candidates_for(&constraint).is_empty());
    }

    #[test]
    fn index_is_maintained_on_removal() {
        let mut reg = Registry::new();
        reg.insert(kramer(1));
        reg.insert(jerry(2));
        reg.remove(QueryId(2));
        let constraint = &reg.get(QueryId(1)).unwrap().query.constraints[0].atom;
        assert!(reg.candidates_for(constraint).is_empty());
        assert_eq!(reg.heads_on_relation("Reservation").len(), 1);
    }

    #[test]
    fn relation_lookup_is_case_insensitive() {
        let mut reg = Registry::new();
        reg.insert(jerry(1));
        assert_eq!(reg.heads_on_relation("RESERVATION").len(), 1);
        assert_eq!(reg.heads_on_relation("reservation").len(), 1);
    }

    #[test]
    fn multi_head_queries_index_every_head() {
        let mut reg = Registry::new();
        reg.insert(pending(
            1,
            "jerry",
            "SELECT 'J', fno INTO ANSWER Res, 'J', hid INTO ANSWER HotelRes \
             WHERE fno IN (SELECT fno FROM Flights) AND hid IN (SELECT hid FROM Hotels) \
             CHOOSE 1",
        ));
        assert_eq!(reg.heads_on_relation("Res").len(), 1);
        assert_eq!(reg.heads_on_relation("HotelRes").len(), 1);
        reg.remove(QueryId(1));
        assert!(reg.heads_on_relation("Res").is_empty());
        assert!(reg.heads_on_relation("HotelRes").is_empty());
    }

    #[test]
    fn deadline_index_tracks_insert_and_remove() {
        let mut reg = Registry::new();
        assert_eq!(reg.min_deadline(), None);
        assert!(reg.due_before(u64::MAX).is_empty());
        for (id, deadline) in [(1, Some(300)), (2, Some(100)), (3, None), (4, Some(200))] {
            let mut p = kramer(id);
            p.deadline = deadline;
            reg.insert(p);
        }
        assert_eq!(reg.min_deadline(), Some(100));
        assert!(reg.due_before(99).is_empty());
        let due: Vec<u64> = reg.due_before(250).iter().map(|q| q.0).collect();
        assert_eq!(due, vec![2, 4], "soonest first; deadline-less never due");
        reg.remove(QueryId(2));
        assert_eq!(reg.min_deadline(), Some(200));
        reg.remove(QueryId(4));
        reg.remove(QueryId(1));
        assert_eq!(reg.min_deadline(), None, "index drained with the entries");
        assert_eq!(reg.len(), 1, "the deadline-less query remains");
    }

    #[test]
    fn candidates_sorted_for_determinism() {
        let mut reg = Registry::new();
        for id in [5, 3, 9, 1] {
            reg.insert(jerry(id));
        }
        let constraint = Atom::new("Reservation", vec![Term::constant("Jerry"), Term::var("x")]);
        let cands = reg.candidates_for(&constraint);
        let ids: Vec<u64> = cands.iter().map(|h| h.qid.0).collect();
        assert_eq!(ids, vec![1, 3, 5, 9]);
    }
}
