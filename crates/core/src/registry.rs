//! The pending-query registry.
//!
//! Queries whose postconditions are not yet satisfiable "are not
//! rejected, but rather get registered in the system for possible later
//! execution" (paper, Section 2.1). The registry stores them and answers
//! the matcher's central question: *which pending heads could satisfy
//! this answer constraint?*
//!
//! Two lookup paths exist, switchable for the ablation experiment (E10
//! in DESIGN.md):
//!
//! * **relation lookup** — all heads contributed to the constraint's
//!   answer relation (the baseline);
//! * **constant-position index** — for every position where the
//!   constraint has a constant, a candidate head must carry either the
//!   same constant or a variable there. Maintained incrementally, this
//!   typically cuts candidates from *all queries on the relation* to
//!   *the handful naming the right partner* (e.g. the index on position
//!   0 of `Reservation('Jerry', ?fno)` returns only Jerry's own queries).

use std::collections::{BTreeMap, BTreeSet, HashMap};

use youtopia_storage::Value;

use crate::ir::{Atom, EntangledQuery, QueryId, Term};

/// Counters filled in by the candidate-scan paths: how many posting
/// entries were examined and how many candidates the index eliminated
/// before unification ever saw them. Merged into
/// [`crate::matcher::MatchStats`] by the callers.
#[derive(Debug, Default, Clone, Copy)]
pub struct CandidateScan {
    /// Posting-list entries examined.
    pub scanned: u64,
    /// Candidates eliminated by the index (constant-position or arity
    /// mismatch) without attempting unification.
    pub pruned: u64,
}

/// The (constant-posting, variable-posting) pair backing one constant
/// position of a constraint during candidate resolution.
type PostingPair<'a> = (Option<&'a BTreeSet<HeadRef>>, Option<&'a BTreeSet<HeadRef>>);

/// A registered pending query.
#[derive(Debug, Clone)]
pub struct Pending {
    /// The query's id.
    pub id: QueryId,
    /// Who submitted it (user name / session tag; used by the demo app
    /// and the admin interface).
    pub owner: String,
    /// The compiled query, with variables namespaced by `id`.
    pub query: EntangledQuery,
    /// Monotonic submission sequence number.
    pub seq: u64,
    /// Absolute deadline in clock milliseconds, if the submission
    /// carried one ([`crate::SubmitOptions::deadline`]). A pending
    /// query past its deadline is retired by the next `expire_due`
    /// sweep; `None` waits forever.
    pub deadline: Option<u64>,
}

/// Reference to one head atom of one pending query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HeadRef {
    /// The owning query.
    pub qid: QueryId,
    /// Index into that query's `heads`.
    pub head_idx: usize,
}

#[derive(Debug, Default)]
struct RelationIndex {
    /// All heads on this relation.
    heads: BTreeSet<HeadRef>,
    /// position -> constant value -> heads with that constant there.
    ///
    /// Posting sets are `BTreeSet` so candidate resolution can merge and
    /// intersect *sorted* lists directly — the deterministic output order
    /// falls out of the iteration instead of a final sort, and
    /// intersection is membership probes against the non-driver
    /// positions rather than allocating per-position `HashSet`s.
    by_const: HashMap<usize, HashMap<Value, BTreeSet<HeadRef>>>,
    /// position -> heads with a variable there.
    by_var: HashMap<usize, BTreeSet<HeadRef>>,
}

/// The pending-query store.
#[derive(Debug, Default)]
pub struct Registry {
    queries: BTreeMap<u64, Pending>,
    relations: HashMap<String, RelationIndex>,
    /// `(deadline_millis, qid)` of every pending query carrying a
    /// deadline, ordered soonest-first — the expiry sweep's index:
    /// `min_deadline` is a first-element peek and `due_before` a range
    /// scan, never a registry walk.
    deadlines: BTreeSet<(u64, u64)>,
    use_const_index: bool,
}

impl Registry {
    /// A registry with the constant-position index enabled.
    pub fn new() -> Registry {
        Registry {
            use_const_index: true,
            ..Registry::default()
        }
    }

    /// A registry using plain relation lookups (the E10 baseline).
    pub fn without_const_index() -> Registry {
        Registry {
            use_const_index: false,
            ..Registry::default()
        }
    }

    /// Whether the constant-position index is active.
    pub fn uses_const_index(&self) -> bool {
        self.use_const_index
    }

    fn rel_key(relation: &str) -> String {
        relation.to_ascii_lowercase()
    }

    /// Registers a pending query (its variables must already be
    /// namespaced).
    pub fn insert(&mut self, pending: Pending) {
        let qid = pending.id;
        for (head_idx, head) in pending.query.heads.iter().enumerate() {
            let href = HeadRef { qid, head_idx };
            let rel = self
                .relations
                .entry(Self::rel_key(&head.relation))
                .or_default();
            rel.heads.insert(href);
            for (pos, term) in head.terms.iter().enumerate() {
                match term {
                    Term::Const(v) => {
                        rel.by_const
                            .entry(pos)
                            .or_default()
                            .entry(v.clone())
                            .or_default()
                            .insert(href);
                    }
                    Term::Var(_) => {
                        rel.by_var.entry(pos).or_default().insert(href);
                    }
                }
            }
        }
        if let Some(deadline) = pending.deadline {
            self.deadlines.insert((deadline, qid.0));
        }
        self.queries.insert(qid.0, pending);
    }

    /// Removes a pending query (answered, cancelled or expired).
    pub fn remove(&mut self, qid: QueryId) -> Option<Pending> {
        let pending = self.queries.remove(&qid.0)?;
        if let Some(deadline) = pending.deadline {
            self.deadlines.remove(&(deadline, qid.0));
        }
        for (head_idx, head) in pending.query.heads.iter().enumerate() {
            let href = HeadRef { qid, head_idx };
            if let Some(rel) = self.relations.get_mut(&Self::rel_key(&head.relation)) {
                rel.heads.remove(&href);
                for (pos, term) in head.terms.iter().enumerate() {
                    match term {
                        Term::Const(v) => {
                            if let Some(by_val) = rel.by_const.get_mut(&pos) {
                                if let Some(set) = by_val.get_mut(v) {
                                    set.remove(&href);
                                    if set.is_empty() {
                                        by_val.remove(v);
                                    }
                                }
                            }
                        }
                        Term::Var(_) => {
                            if let Some(set) = rel.by_var.get_mut(&pos) {
                                set.remove(&href);
                            }
                        }
                    }
                }
            }
        }
        Some(pending)
    }

    /// Fetches a pending query.
    pub fn get(&self, qid: QueryId) -> Option<&Pending> {
        self.queries.get(&qid.0)
    }

    /// Number of pending queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when no queries are pending.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Iterates over pending queries in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Pending> {
        self.queries.values()
    }

    /// The head atom a [`HeadRef`] points at.
    pub fn head(&self, href: HeadRef) -> Option<&Atom> {
        self.get(href.qid)
            .and_then(|p| p.query.heads.get(href.head_idx))
    }

    /// Candidate heads that could satisfy `constraint` (a positive
    /// answer-constraint atom), sorted for determinism.
    ///
    /// Soundness: the result is a superset of the heads that actually
    /// unify with the constraint (property-tested); unification makes
    /// the final call.
    pub fn candidates_for(&self, constraint: &Atom) -> Vec<HeadRef> {
        let mut out = Vec::new();
        let mut scan = CandidateScan::default();
        self.candidates_for_into(constraint, &mut out, &mut scan);
        out
    }

    /// [`Registry::candidates_for`] into a caller-supplied buffer
    /// (cleared first), accumulating scan counters. The buffer-reusing
    /// entry point of the staged match pipeline.
    pub fn candidates_for_into(
        &self,
        constraint: &Atom,
        out: &mut Vec<HeadRef>,
        scan: &mut CandidateScan,
    ) {
        out.clear();
        let Some(rel) = self.relations.get(&Self::rel_key(&constraint.relation)) else {
            return;
        };
        self.candidates_on_rel(rel, constraint, out, scan);
    }

    /// Resolves candidates for a whole batch of constraints in one pass:
    /// constraints are grouped by relation signature so each relation's
    /// index is fetched once, and every per-constraint scan shares the
    /// sorted-posting-list machinery. Output slot `i` holds the sorted
    /// candidates of `constraints[i]`.
    pub fn candidates_for_batch(
        &self,
        constraints: &[&Atom],
        out: &mut Vec<Vec<HeadRef>>,
        scan: &mut CandidateScan,
    ) {
        out.resize_with(constraints.len(), Vec::new);
        for slot in out.iter_mut() {
            slot.clear();
        }
        let mut by_rel: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, c) in constraints.iter().enumerate() {
            by_rel
                .entry(Self::rel_key(&c.relation))
                .or_default()
                .push(i);
        }
        for (key, idxs) in by_rel {
            let Some(rel) = self.relations.get(&key) else {
                continue;
            };
            for i in idxs {
                self.candidates_on_rel(rel, constraints[i], &mut out[i], scan);
            }
        }
        out.truncate(constraints.len());
    }

    /// Cheap emptiness probe: `false` means *provably no pending head*
    /// can unify with `constraint` — the relation has no heads, or some
    /// constant position of the constraint has neither a matching
    /// constant posting nor any variable posting. `true` is
    /// conservative (the full intersection may still come up empty).
    ///
    /// This is the index-first pruning test the re-match sweep runs
    /// before taking the db read lock.
    pub fn has_candidates(&self, constraint: &Atom) -> bool {
        let Some(rel) = self.relations.get(&Self::rel_key(&constraint.relation)) else {
            return false;
        };
        if rel.heads.is_empty() {
            return false;
        }
        if self.use_const_index {
            for (pos, term) in constraint.terms.iter().enumerate() {
                let Term::Const(v) = term else { continue };
                let consts_empty = rel
                    .by_const
                    .get(&pos)
                    .and_then(|m| m.get(v))
                    .is_none_or(BTreeSet::is_empty);
                if consts_empty && rel.by_var.get(&pos).is_none_or(BTreeSet::is_empty) {
                    return false;
                }
            }
        }
        true
    }

    /// Candidate resolution against one relation's index: picks the
    /// most selective constant position as the *driver*, merge-iterates
    /// its (sorted, disjoint) constant/variable posting lists, and
    /// probes the remaining constant positions by membership. The
    /// output arrives sorted without a trailing sort.
    fn candidates_on_rel(
        &self,
        rel: &RelationIndex,
        constraint: &Atom,
        out: &mut Vec<HeadRef>,
        scan: &mut CandidateScan,
    ) {
        // (const-postings, var-postings) per constant position of
        // the constraint; empty when the const index is ablated off.
        let mut pos_sets: Vec<PostingPair<'_>> = Vec::new();
        let mut driver = 0usize;
        let mut driver_len = usize::MAX;
        if self.use_const_index {
            for (pos, term) in constraint.terms.iter().enumerate() {
                let Term::Const(v) = term else { continue };
                let cs = rel.by_const.get(&pos).and_then(|m| m.get(v));
                let vs = rel.by_var.get(&pos);
                let len = cs.map_or(0, BTreeSet::len) + vs.map_or(0, BTreeSet::len);
                if len == 0 {
                    // no head is compatible at this position: the whole
                    // relation's head set is pruned without a scan
                    scan.pruned += rel.heads.len() as u64;
                    return;
                }
                if len < driver_len {
                    driver = pos_sets.len();
                    driver_len = len;
                }
                pos_sets.push((cs, vs));
            }
        }
        if pos_sets.is_empty() {
            // no constant positions (or index ablated): every head on
            // the relation is a candidate, modulo arity
            for href in rel.heads.iter().copied() {
                scan.scanned += 1;
                if self
                    .head(href)
                    .is_some_and(|h| h.arity() == constraint.arity())
                {
                    out.push(href);
                } else {
                    scan.pruned += 1;
                }
            }
            return;
        }
        let (dcs, dvs) = pos_sets[driver];
        let mut consts = dcs.into_iter().flatten().copied().peekable();
        let mut vars = dvs.into_iter().flatten().copied().peekable();
        // merge the driver's two sorted (disjoint) posting lists
        let merged = std::iter::from_fn(move || match (consts.peek(), vars.peek()) {
            (Some(&x), Some(&y)) => {
                if x <= y {
                    consts.next()
                } else {
                    vars.next()
                }
            }
            (Some(_), None) => consts.next(),
            (None, Some(_)) => vars.next(),
            (None, None) => None,
        });
        for href in merged {
            scan.scanned += 1;
            let compatible = pos_sets.iter().enumerate().all(|(i, (cs, vs))| {
                i == driver
                    || cs.is_some_and(|s| s.contains(&href))
                    || vs.is_some_and(|s| s.contains(&href))
            });
            if compatible
                && self
                    .head(href)
                    .is_some_and(|h| h.arity() == constraint.arity())
            {
                out.push(href);
            } else {
                scan.pruned += 1;
            }
        }
    }

    /// The earliest deadline of any pending query (`None` when no
    /// pending query carries one) — the sweeper's wakeup hint.
    pub fn min_deadline(&self) -> Option<u64> {
        self.deadlines.first().map(|&(deadline, _)| deadline)
    }

    /// The pending queries whose deadline is at or before `now_millis`,
    /// soonest first (a range scan of the deadline index; pending
    /// queries without a deadline are never returned).
    pub fn due_before(&self, now_millis: u64) -> Vec<QueryId> {
        self.deadlines
            .range(..=(now_millis, u64::MAX))
            .map(|&(_, qid)| QueryId(qid))
            .collect()
    }

    /// All pending heads on `relation` regardless of constants (the
    /// baseline lookup; also used by the naive matcher).
    pub fn heads_on_relation(&self, relation: &str) -> Vec<HeadRef> {
        let Some(rel) = self.relations.get(&Self::rel_key(relation)) else {
            return Vec::new();
        };
        // BTreeSet iteration is already in sorted (deterministic) order
        rel.heads.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_sql;

    fn pending(id: u64, owner: &str, sql: &str) -> Pending {
        let q = compile_sql(sql).unwrap().namespaced(QueryId(id));
        Pending {
            id: QueryId(id),
            owner: owner.into(),
            query: q,
            seq: id,
            deadline: None,
        }
    }

    fn kramer(id: u64) -> Pending {
        pending(
            id,
            "kramer",
            "SELECT 'Kramer', fno INTO ANSWER Reservation \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') \
             AND ('Jerry', fno) IN ANSWER Reservation CHOOSE 1",
        )
    }

    fn jerry(id: u64) -> Pending {
        pending(
            id,
            "jerry",
            "SELECT 'Jerry', fno INTO ANSWER Reservation \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') \
             AND ('Kramer', fno) IN ANSWER Reservation CHOOSE 1",
        )
    }

    #[test]
    fn insert_get_remove() {
        let mut reg = Registry::new();
        reg.insert(kramer(1));
        assert_eq!(reg.len(), 1);
        assert!(reg.get(QueryId(1)).is_some());
        let removed = reg.remove(QueryId(1)).unwrap();
        assert_eq!(removed.owner, "kramer");
        assert!(reg.is_empty());
        assert!(reg.remove(QueryId(1)).is_none());
    }

    #[test]
    fn candidates_use_constant_positions() {
        let mut reg = Registry::new();
        reg.insert(kramer(1));
        reg.insert(jerry(2));
        // plus unrelated noise: Elaine coordinating with George
        for (i, (a, b)) in [("Elaine", "George"), ("George", "Elaine")]
            .iter()
            .enumerate()
        {
            reg.insert(pending(
                10 + i as u64,
                a,
                &format!(
                    "SELECT '{a}', fno INTO ANSWER Reservation \
                     WHERE fno IN (SELECT fno FROM Flights) \
                     AND ('{b}', fno) IN ANSWER Reservation CHOOSE 1"
                ),
            ));
        }
        // Kramer's constraint wants Reservation('Jerry', ?fno):
        // only Jerry's head should be a candidate.
        let constraint = &reg.get(QueryId(1)).unwrap().query.constraints[0].atom;
        let cands = reg.candidates_for(constraint);
        assert_eq!(
            cands,
            vec![HeadRef {
                qid: QueryId(2),
                head_idx: 0
            }]
        );
    }

    #[test]
    fn baseline_returns_all_relation_heads() {
        let mut reg = Registry::without_const_index();
        reg.insert(kramer(1));
        reg.insert(jerry(2));
        let constraint = &reg.get(QueryId(1)).unwrap().query.constraints[0].atom;
        // baseline: both heads on Reservation are candidates
        assert_eq!(reg.candidates_for(constraint).len(), 2);
        assert!(!reg.uses_const_index());
    }

    #[test]
    fn variable_positions_stay_candidates() {
        let mut reg = Registry::new();
        // a head with a variable traveler name matches any constant
        reg.insert(pending(
            5,
            "any",
            "SELECT who, fno INTO ANSWER Reservation \
             WHERE (who, fno) IN (SELECT traveler, fno FROM Offers) CHOOSE 1",
        ));
        let constraint = Atom::new("Reservation", vec![Term::constant("Jerry"), Term::var("x")]);
        assert_eq!(reg.candidates_for(&constraint).len(), 1);
    }

    #[test]
    fn arity_mismatch_excluded() {
        let mut reg = Registry::new();
        reg.insert(pending(
            1,
            "a",
            "SELECT 'J', x, y INTO ANSWER R WHERE (x, y) IN (SELECT a, b FROM t) CHOOSE 1",
        ));
        let constraint = Atom::new("R", vec![Term::constant("J"), Term::var("v")]);
        assert!(reg.candidates_for(&constraint).is_empty());
    }

    #[test]
    fn unknown_relation_has_no_candidates() {
        let reg = Registry::new();
        let constraint = Atom::new("Ghost", vec![Term::var("x")]);
        assert!(reg.candidates_for(&constraint).is_empty());
    }

    #[test]
    fn index_is_maintained_on_removal() {
        let mut reg = Registry::new();
        reg.insert(kramer(1));
        reg.insert(jerry(2));
        reg.remove(QueryId(2));
        let constraint = &reg.get(QueryId(1)).unwrap().query.constraints[0].atom;
        assert!(reg.candidates_for(constraint).is_empty());
        assert_eq!(reg.heads_on_relation("Reservation").len(), 1);
    }

    #[test]
    fn relation_lookup_is_case_insensitive() {
        let mut reg = Registry::new();
        reg.insert(jerry(1));
        assert_eq!(reg.heads_on_relation("RESERVATION").len(), 1);
        assert_eq!(reg.heads_on_relation("reservation").len(), 1);
    }

    #[test]
    fn multi_head_queries_index_every_head() {
        let mut reg = Registry::new();
        reg.insert(pending(
            1,
            "jerry",
            "SELECT 'J', fno INTO ANSWER Res, 'J', hid INTO ANSWER HotelRes \
             WHERE fno IN (SELECT fno FROM Flights) AND hid IN (SELECT hid FROM Hotels) \
             CHOOSE 1",
        ));
        assert_eq!(reg.heads_on_relation("Res").len(), 1);
        assert_eq!(reg.heads_on_relation("HotelRes").len(), 1);
        reg.remove(QueryId(1));
        assert!(reg.heads_on_relation("Res").is_empty());
        assert!(reg.heads_on_relation("HotelRes").is_empty());
    }

    #[test]
    fn deadline_index_tracks_insert_and_remove() {
        let mut reg = Registry::new();
        assert_eq!(reg.min_deadline(), None);
        assert!(reg.due_before(u64::MAX).is_empty());
        for (id, deadline) in [(1, Some(300)), (2, Some(100)), (3, None), (4, Some(200))] {
            let mut p = kramer(id);
            p.deadline = deadline;
            reg.insert(p);
        }
        assert_eq!(reg.min_deadline(), Some(100));
        assert!(reg.due_before(99).is_empty());
        let due: Vec<u64> = reg.due_before(250).iter().map(|q| q.0).collect();
        assert_eq!(due, vec![2, 4], "soonest first; deadline-less never due");
        reg.remove(QueryId(2));
        assert_eq!(reg.min_deadline(), Some(200));
        reg.remove(QueryId(4));
        reg.remove(QueryId(1));
        assert_eq!(reg.min_deadline(), None, "index drained with the entries");
        assert_eq!(reg.len(), 1, "the deadline-less query remains");
    }

    #[test]
    fn candidates_sorted_for_determinism() {
        let mut reg = Registry::new();
        for id in [5, 3, 9, 1] {
            reg.insert(jerry(id));
        }
        let constraint = Atom::new("Reservation", vec![Term::constant("Jerry"), Term::var("x")]);
        let cands = reg.candidates_for(&constraint);
        let ids: Vec<u64> = cands.iter().map(|h| h.qid.0).collect();
        assert_eq!(ids, vec![1, 3, 5, 9]);
    }

    #[test]
    fn batch_matches_per_constraint_scans() {
        let mut reg = Registry::new();
        reg.insert(kramer(1));
        reg.insert(jerry(2));
        reg.insert(jerry(3));
        let jerry_c = Atom::new("Reservation", vec![Term::constant("Jerry"), Term::var("x")]);
        let kramer_c = Atom::new(
            "Reservation",
            vec![Term::constant("Kramer"), Term::var("y")],
        );
        let ghost_c = Atom::new("Ghost", vec![Term::var("z")]);
        let constraints = [&jerry_c, &kramer_c, &ghost_c];
        let mut batch = Vec::new();
        let mut scan = CandidateScan::default();
        reg.candidates_for_batch(&constraints, &mut batch, &mut scan);
        assert_eq!(batch.len(), 3);
        for (i, c) in constraints.iter().enumerate() {
            assert_eq!(batch[i], reg.candidates_for(c), "slot {i} diverges");
        }
        assert!(scan.scanned > 0);
        // the buffer is reused across calls without stale carry-over
        reg.candidates_for_batch(&[&ghost_c], &mut batch, &mut scan);
        assert_eq!(batch.len(), 1);
        assert!(batch[0].is_empty());
    }

    #[test]
    fn has_candidates_probe_is_sound() {
        let mut reg = Registry::new();
        reg.insert(jerry(1)); // head Reservation('Jerry', ?fno)
        let matchable = Atom::new("Reservation", vec![Term::constant("Jerry"), Term::var("x")]);
        let ghost_name = Atom::new(
            "Reservation",
            vec![Term::constant("Newman"), Term::var("x")],
        );
        let ghost_rel = Atom::new("Ghost", vec![Term::var("x")]);
        assert!(reg.has_candidates(&matchable));
        assert!(!reg.has_candidates(&ghost_name), "no posting for Newman");
        assert!(!reg.has_candidates(&ghost_rel), "relation never seen");
        // the probe never prunes anything candidates_for would return
        assert!(reg.candidates_for(&ghost_name).is_empty());
        assert!(!reg.candidates_for(&matchable).is_empty());
        // ablated index: probe falls back to relation emptiness only
        let mut base = Registry::without_const_index();
        base.insert(jerry(1));
        assert!(
            base.has_candidates(&ghost_name),
            "no index, stays conservative"
        );
    }

    #[test]
    fn scan_counters_account_for_pruning() {
        let mut reg = Registry::new();
        reg.insert(kramer(1));
        reg.insert(jerry(2));
        let constraint = Atom::new("Reservation", vec![Term::constant("Jerry"), Term::var("x")]);
        let mut out = Vec::new();
        let mut scan = CandidateScan::default();
        reg.candidates_for_into(&constraint, &mut out, &mut scan);
        assert_eq!(out.len(), 1, "only Jerry's head survives");
        assert!(scan.scanned >= 1);
        // Newman never appears: both pending heads pruned without a scan
        let mut scan2 = CandidateScan::default();
        reg.candidates_for_into(
            &Atom::new(
                "Reservation",
                vec![Term::constant("Newman"), Term::var("x")],
            ),
            &mut out,
            &mut scan2,
        );
        assert!(out.is_empty());
        assert_eq!(scan2.scanned, 0);
        assert_eq!(scan2.pruned, 2);
    }
}
