//! The intermediate representation of entangled queries.
//!
//! The compiler (`crate::compile`) lowers the parsed
//! [`youtopia_sql::EntangledSelect`] into this IR, which is what the
//! pending-query registry stores and the matcher works on. The paper's
//! Figure 2 calls this "an intermediate representation inside Youtopia
//! for processing by the coordination component".
//!
//! An entangled query in IR form is:
//!
//! * one or more **head atoms** — the tuples the query contributes to
//!   answer relations, over constants and variables;
//! * **membership predicates** — `(t1,...,tn) IN (SELECT ...)` database
//!   predicates that range-restrict variables;
//! * **filters** — residual scalar predicates over variables
//!   (`price < 500`, `x <> y`, ...);
//! * **answer constraints** — `(t1,...,tn) [NOT] IN ANSWER R` postconditions
//!   that refer to the joint answer relation and thereby to *other*
//!   queries' answers.

use std::fmt;

use youtopia_sql::{Expr, Select};
use youtopia_storage::Value;

/// Identifier of a registered entangled query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u64);

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// A variable in an entangled query.
///
/// Within one compiled query, names are the source-level identifiers
/// (`fno`); when the query is registered, variables are *namespaced* by
/// the query id (`q12.fno`) so different queries' variables never
/// collide during unification.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub String);

impl Var {
    /// Builds a variable.
    pub fn new(name: impl Into<String>) -> Var {
        Var(name.into())
    }

    /// The variable's name.
    pub fn name(&self) -> &str {
        &self.0
    }

    /// The namespaced form of this variable for query `qid`.
    pub fn namespaced(&self, qid: QueryId) -> Var {
        Var(format!("{qid}.{}", self.0))
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

/// A term: a constant or a variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A constant value.
    Const(Value),
    /// A variable.
    Var(Var),
}

impl Term {
    /// Shorthand for a constant term.
    pub fn constant(v: impl Into<Value>) -> Term {
        Term::Const(v.into())
    }

    /// Shorthand for a variable term.
    pub fn var(name: impl Into<String>) -> Term {
        Term::Var(Var::new(name))
    }

    /// The variable inside, if any.
    pub fn as_var(&self) -> Option<&Var> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// The constant inside, if any.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Const(v) => Some(v),
            Term::Var(_) => None,
        }
    }

    /// Renames the variable (if any) into `qid`'s namespace.
    pub fn namespaced(&self, qid: QueryId) -> Term {
        match self {
            Term::Var(v) => Term::Var(v.namespaced(qid)),
            c => c.clone(),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(v) => write!(f, "{}", v.sql_literal()),
            Term::Var(v) => write!(f, "{v}"),
        }
    }
}

/// An atom over an answer relation: `R(t1, ..., tn)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// The answer relation name (case preserved; matching is
    /// case-insensitive).
    pub relation: String,
    /// The terms.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Builds an atom.
    pub fn new(relation: impl Into<String>, terms: Vec<Term>) -> Atom {
        Atom {
            relation: relation.into(),
            terms,
        }
    }

    /// Arity of the atom.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// All variables occurring in the atom.
    pub fn vars(&self) -> Vec<&Var> {
        self.terms.iter().filter_map(Term::as_var).collect()
    }

    /// True when both atoms name the same relation (case-insensitively)
    /// and have the same arity — the precondition for unification.
    pub fn compatible_with(&self, other: &Atom) -> bool {
        self.relation.eq_ignore_ascii_case(&other.relation) && self.arity() == other.arity()
    }

    /// Renames all variables into `qid`'s namespace.
    pub fn namespaced(&self, qid: QueryId) -> Atom {
        Atom {
            relation: self.relation.clone(),
            terms: self.terms.iter().map(|t| t.namespaced(qid)).collect(),
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// A membership (database) predicate: `(t1,...,tn) IN (SELECT ...)`.
///
/// The subquery ranges over regular database tables only; evaluating it
/// yields the finite domain that range-restricts the tuple's variables.
#[derive(Debug, Clone, PartialEq)]
pub struct Membership {
    /// The constrained tuple.
    pub terms: Vec<Term>,
    /// The defining subquery.
    pub select: Select,
    /// Whether the membership is negated (`NOT IN (SELECT ...)`).
    pub negated: bool,
}

impl Membership {
    /// All variables in the constrained tuple.
    pub fn vars(&self) -> Vec<&Var> {
        self.terms.iter().filter_map(Term::as_var).collect()
    }

    /// Renames all variables into `qid`'s namespace.
    pub fn namespaced(&self, qid: QueryId) -> Membership {
        Membership {
            terms: self.terms.iter().map(|t| t.namespaced(qid)).collect(),
            select: self.select.clone(),
            negated: self.negated,
        }
    }
}

impl fmt::Display for Membership {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        let op = if self.negated { "NOT IN" } else { "IN" };
        write!(f, ") {op} ({})", self.select)
    }
}

/// An answer constraint: `(t1,...,tn) [NOT] IN ANSWER R`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnswerConstraint {
    /// The constrained atom (relation = the ANSWER relation).
    pub atom: Atom,
    /// Negated?
    pub negated: bool,
}

impl AnswerConstraint {
    /// Renames all variables into `qid`'s namespace.
    pub fn namespaced(&self, qid: QueryId) -> AnswerConstraint {
        AnswerConstraint {
            atom: self.atom.namespaced(qid),
            negated: self.negated,
        }
    }
}

impl fmt::Display for AnswerConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negated {
            write!(f, "NOT {}", self.atom)
        } else {
            write!(f, "{}", self.atom)
        }
    }
}

/// A residual scalar filter over variables (`price < 500`, `x <> y`).
///
/// The expression's column references are variable references; it is
/// evaluated by the grounding phase once its variables are bound.
#[derive(Debug, Clone, PartialEq)]
pub struct Filter {
    /// The predicate expression (column refs = variables).
    pub expr: Expr,
    /// The variables the expression references, precomputed.
    pub vars: Vec<Var>,
}

impl Filter {
    /// Renames all variables into `qid`'s namespace.
    pub fn namespaced(&self, qid: QueryId) -> Filter {
        Filter {
            expr: rename_expr_vars(&self.expr, qid),
            vars: self.vars.iter().map(|v| v.namespaced(qid)).collect(),
        }
    }
}

/// Rewrites every column reference in `expr` into `qid`'s namespace.
fn rename_expr_vars(expr: &Expr, qid: QueryId) -> Expr {
    use youtopia_sql::Expr as E;
    match expr {
        E::Column { table: None, name } => E::Column {
            table: None,
            name: format!("{qid}.{name}"),
        },
        E::Column { table: Some(_), .. } | E::Literal(_) => expr.clone(),
        E::Unary { op, expr } => E::Unary {
            op: *op,
            expr: Box::new(rename_expr_vars(expr, qid)),
        },
        E::Binary { left, op, right } => E::Binary {
            left: Box::new(rename_expr_vars(left, qid)),
            op: *op,
            right: Box::new(rename_expr_vars(right, qid)),
        },
        E::Function { name, args, star } => E::Function {
            name: name.clone(),
            args: args.iter().map(|a| rename_expr_vars(a, qid)).collect(),
            star: *star,
        },
        E::IsNull { expr, negated } => E::IsNull {
            expr: Box::new(rename_expr_vars(expr, qid)),
            negated: *negated,
        },
        E::InList {
            expr,
            list,
            negated,
        } => E::InList {
            expr: Box::new(rename_expr_vars(expr, qid)),
            list: list.iter().map(|e| rename_expr_vars(e, qid)).collect(),
            negated: *negated,
        },
        E::Between {
            expr,
            low,
            high,
            negated,
        } => E::Between {
            expr: Box::new(rename_expr_vars(expr, qid)),
            low: Box::new(rename_expr_vars(low, qid)),
            high: Box::new(rename_expr_vars(high, qid)),
            negated: *negated,
        },
        E::Like {
            expr,
            pattern,
            negated,
        } => E::Like {
            expr: Box::new(rename_expr_vars(expr, qid)),
            pattern: Box::new(rename_expr_vars(pattern, qid)),
            negated: *negated,
        },
        // These never appear inside compiled filters.
        E::InSubquery { .. } | E::InAnswer { .. } | E::Exists { .. } | E::Tuple(_) => expr.clone(),
    }
}

/// A compiled entangled query.
#[derive(Debug, Clone, PartialEq)]
pub struct EntangledQuery {
    /// Head atoms: the tuples contributed to answer relations.
    pub heads: Vec<Atom>,
    /// Positive membership (database) predicates.
    pub memberships: Vec<Membership>,
    /// Residual scalar filters.
    pub filters: Vec<Filter>,
    /// Answer constraints (postconditions on the joint answer relation).
    pub constraints: Vec<AnswerConstraint>,
    /// `CHOOSE k` (this implementation supports `k = 1`).
    pub choose: u64,
    /// The original SQL text (for the admin interface).
    pub sql: String,
}

impl EntangledQuery {
    /// Every variable occurring anywhere in the query, deduplicated in
    /// first-occurrence order.
    pub fn all_vars(&self) -> Vec<Var> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        let mut add = |v: &Var| {
            if seen.insert(v.clone()) {
                out.push(v.clone());
            }
        };
        for h in &self.heads {
            for v in h.vars() {
                add(v);
            }
        }
        for m in &self.memberships {
            for v in m.vars() {
                add(v);
            }
        }
        for f in &self.filters {
            for v in &f.vars {
                add(v);
            }
        }
        for c in &self.constraints {
            for v in c.atom.vars() {
                add(v);
            }
        }
        out
    }

    /// The query's *answer-relation signature*: every answer relation
    /// it touches through a head or an answer constraint, lowercased
    /// and deduplicated. Two queries can only ever coordinate (one's
    /// head satisfying the other's constraint, directly or through a
    /// chain of intermediaries) when their signatures are connected, so
    /// this set is the routing key of the sharded coordinator.
    pub fn answer_relations(&self) -> std::collections::BTreeSet<String> {
        self.heads
            .iter()
            .map(|h| h.relation.to_ascii_lowercase())
            .chain(
                self.constraints
                    .iter()
                    .map(|c| c.atom.relation.to_ascii_lowercase()),
            )
            .collect()
    }

    /// A copy with all variables namespaced by `qid` (done at
    /// registration so different queries' variables never collide).
    pub fn namespaced(&self, qid: QueryId) -> EntangledQuery {
        EntangledQuery {
            heads: self.heads.iter().map(|h| h.namespaced(qid)).collect(),
            memberships: self.memberships.iter().map(|m| m.namespaced(qid)).collect(),
            filters: self.filters.iter().map(|f| f.namespaced(qid)).collect(),
            constraints: self.constraints.iter().map(|c| c.namespaced(qid)).collect(),
            choose: self.choose,
            sql: self.sql.clone(),
        }
    }
}

impl fmt::Display for EntangledQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "heads: ")?;
        for (i, h) in self.heads.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{h}")?;
        }
        if !self.memberships.is_empty() {
            write!(f, "; where: ")?;
            for (i, m) in self.memberships.iter().enumerate() {
                if i > 0 {
                    write!(f, " AND ")?;
                }
                write!(f, "{m}")?;
            }
        }
        if !self.filters.is_empty() {
            write!(f, "; filters: ")?;
            for (i, flt) in self.filters.iter().enumerate() {
                if i > 0 {
                    write!(f, " AND ")?;
                }
                write!(f, "{}", flt.expr)?;
            }
        }
        if !self.constraints.is_empty() {
            write!(f, "; requires: ")?;
            for (i, c) in self.constraints.iter().enumerate() {
                if i > 0 {
                    write!(f, " AND ")?;
                }
                write!(f, "{c}")?;
            }
        }
        write!(f, "; choose {}", self.choose)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kramer_head() -> Atom {
        Atom::new(
            "Reservation",
            vec![Term::constant("Kramer"), Term::var("fno")],
        )
    }

    #[test]
    fn term_accessors() {
        let c = Term::constant(122i64);
        let v = Term::var("fno");
        assert_eq!(c.as_const(), Some(&Value::Int(122)));
        assert!(c.as_var().is_none());
        assert_eq!(v.as_var(), Some(&Var::new("fno")));
        assert!(v.as_const().is_none());
    }

    #[test]
    fn atom_compatibility() {
        let a = kramer_head();
        let b = Atom::new("reservation", vec![Term::constant("Jerry"), Term::var("x")]);
        assert!(a.compatible_with(&b)); // case-insensitive relation
        let c = Atom::new("Reservation", vec![Term::var("x")]);
        assert!(!a.compatible_with(&c)); // arity differs
        let d = Atom::new("Hotel", vec![Term::var("x"), Term::var("y")]);
        assert!(!a.compatible_with(&d)); // relation differs
    }

    #[test]
    fn namespacing_renames_vars_only() {
        let a = kramer_head().namespaced(QueryId(7));
        assert_eq!(a.terms[0], Term::constant("Kramer"));
        assert_eq!(a.terms[1], Term::Var(Var::new("q7.fno")));
    }

    #[test]
    fn namespacing_renames_filter_columns() {
        let f = Filter {
            expr: youtopia_sql::parse_expr("price < 500 AND fno <> 0").unwrap(),
            vars: vec![Var::new("price"), Var::new("fno")],
        };
        let f2 = f.namespaced(QueryId(3));
        assert_eq!(f2.expr.to_string(), "q3.price < 500 AND q3.fno <> 0");
        assert_eq!(f2.vars, vec![Var::new("q3.price"), Var::new("q3.fno")]);
    }

    #[test]
    fn all_vars_dedup_in_order() {
        let q = EntangledQuery {
            heads: vec![kramer_head()],
            memberships: vec![Membership {
                terms: vec![Term::var("fno")],
                select: youtopia_sql::Select::empty(),
                negated: false,
            }],
            filters: vec![],
            constraints: vec![AnswerConstraint {
                atom: Atom::new(
                    "Reservation",
                    vec![Term::constant("Jerry"), Term::var("fno")],
                ),
                negated: false,
            }],
            choose: 1,
            sql: String::new(),
        };
        assert_eq!(q.all_vars(), vec![Var::new("fno")]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(kramer_head().to_string(), "Reservation('Kramer', ?fno)");
        assert_eq!(QueryId(12).to_string(), "q12");
        assert_eq!(Term::var("x").to_string(), "?x");
        let c = AnswerConstraint {
            atom: Atom::new("R", vec![Term::var("x")]),
            negated: true,
        };
        assert_eq!(c.to_string(), "NOT R(?x)");
    }
}
