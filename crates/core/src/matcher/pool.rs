//! Thread-local scratch-buffer pools for the staged matcher.
//!
//! Instead of cloning substitution/group/obligation state at every
//! search branch, a match attempt borrows one scratch set from its
//! thread's pool, mutates it in place (undoing on backtrack), and
//! returns it wiped — the get/return discipline of a vectorized
//! operator's shared buffers. Pool hits and misses are counted into
//! [`MatchStats`] so the benches can confirm the steady state allocates
//! nothing.

use std::cell::RefCell;

use super::MatchStats;
use crate::unify::Subst;

/// Max buffers retained per pool: enough for the deepest realistic
/// search recursion, small enough that a burst cannot pin memory.
const MAX_POOLED: usize = 64;

/// A buffer that can be wiped for reuse while keeping its allocations.
pub trait Reusable: Default {
    /// Clears contents; capacity stays.
    fn wipe(&mut self);
}

impl<T> Reusable for Vec<T> {
    fn wipe(&mut self) {
        self.clear();
    }
}

impl Reusable for Subst {
    fn wipe(&mut self) {
        self.reset();
    }
}

/// A stack of reusable buffers, designed to live in a `thread_local!`.
#[derive(Default)]
pub struct BufferPool<T: Reusable> {
    bufs: RefCell<Vec<T>>,
}

impl<T: Reusable> BufferPool<T> {
    /// An empty pool (const, for `thread_local!` initializers).
    pub const fn new() -> BufferPool<T> {
        BufferPool {
            bufs: RefCell::new(Vec::new()),
        }
    }

    /// Pops a pooled buffer (hit) or allocates a fresh one (miss).
    pub fn get(&self, stats: &mut MatchStats) -> T {
        match self.bufs.borrow_mut().pop() {
            Some(buf) => {
                stats.pool_hits += 1;
                buf
            }
            None => {
                stats.pool_misses += 1;
                T::default()
            }
        }
    }

    /// Returns a buffer, wiped but with its allocations intact. Full
    /// pools drop the buffer instead.
    pub fn put(&self, mut buf: T) {
        buf.wipe();
        let mut bufs = self.bufs.borrow_mut();
        if bufs.len() < MAX_POOLED {
            bufs.push(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    thread_local! {
        static TEST_POOL: BufferPool<Vec<u64>> = const { BufferPool::new() };
    }

    #[test]
    fn get_put_roundtrip_counts_hits() {
        let mut stats = MatchStats::default();
        TEST_POOL.with(|pool| {
            let mut a = pool.get(&mut stats);
            a.extend([1, 2, 3]);
            let cap = a.capacity();
            pool.put(a);
            let b = pool.get(&mut stats);
            assert!(b.is_empty(), "returned buffers come back wiped");
            assert!(b.capacity() >= cap, "allocation is retained");
            pool.put(b);
        });
        assert_eq!(stats.pool_misses, 1);
        assert_eq!(stats.pool_hits, 1);
    }

    #[test]
    fn pool_caps_retention() {
        let mut stats = MatchStats::default();
        TEST_POOL.with(|pool| {
            let bufs: Vec<Vec<u64>> = (0..MAX_POOLED + 10).map(|_| pool.get(&mut stats)).collect();
            for buf in bufs {
                pool.put(buf);
            }
            assert!(pool.bufs.borrow().len() <= MAX_POOLED);
        });
    }
}
