//! The naive baseline matcher (experiment E7): enumerate subsets of the
//! pending set that contain the trigger query, by increasing size, and
//! test each subset for joint satisfiability.
//!
//! This is the "obvious" algorithm a first implementation would use.
//! Its cost grows combinatorially with the number of pending queries,
//! which is exactly the contrast the loaded-system experiment shows
//! against the incremental, index-pruned matcher.

use rand::rngs::StdRng;

use youtopia_storage::Catalog;

use crate::error::CoreResult;
use crate::ir::QueryId;
use crate::matcher::ground::ground_group;
use crate::matcher::{GroupMatch, MatchConfig, MatchStats};
use crate::registry::Registry;
use crate::unify::Subst;

/// Attempts to match `trigger` by exhaustive subset enumeration.
pub fn match_query_naive(
    registry: &Registry,
    catalog: &Catalog,
    trigger: QueryId,
    config: &MatchConfig,
    rng: &mut StdRng,
    stats: &mut MatchStats,
) -> CoreResult<Option<GroupMatch>> {
    if registry.get(trigger).is_none() {
        return Ok(None);
    }
    let others: Vec<QueryId> = registry
        .iter()
        .map(|p| p.id)
        .filter(|&id| id != trigger)
        .collect();
    let max_extra = config.max_group_size.saturating_sub(1).min(others.len());

    // sizes ascending: the first satisfiable subset is minimal
    for extra in 0..=max_extra {
        let mut combo: Vec<usize> = Vec::with_capacity(extra);
        if let Some(m) = combos(
            registry, catalog, trigger, &others, extra, 0, &mut combo, config, rng, stats,
        )? {
            return Ok(Some(m));
        }
    }
    Ok(None)
}

#[allow(clippy::too_many_arguments)]
fn combos(
    registry: &Registry,
    catalog: &Catalog,
    trigger: QueryId,
    others: &[QueryId],
    want: usize,
    from: usize,
    combo: &mut Vec<usize>,
    config: &MatchConfig,
    rng: &mut StdRng,
    stats: &mut MatchStats,
) -> CoreResult<Option<GroupMatch>> {
    if combo.len() == want {
        let mut group: Vec<QueryId> = combo.iter().map(|&i| others[i]).collect();
        group.push(trigger);
        group.sort();
        stats.subsets_tested += 1;
        return try_subset(registry, catalog, &group, config, rng, stats);
    }
    for i in from..others.len() {
        combo.push(i);
        if let Some(m) = combos(
            registry,
            catalog,
            trigger,
            others,
            want,
            i + 1,
            combo,
            config,
            rng,
            stats,
        )? {
            return Ok(Some(m));
        }
        combo.pop();
    }
    Ok(None)
}

/// Tests one fixed subset: assign a provider (within the subset) to
/// every member's positive constraint, then ground.
fn try_subset(
    registry: &Registry,
    catalog: &Catalog,
    group: &[QueryId],
    config: &MatchConfig,
    rng: &mut StdRng,
    stats: &mut MatchStats,
) -> CoreResult<Option<GroupMatch>> {
    // collect all positive obligations of all members
    let mut obligations: Vec<(QueryId, usize)> = Vec::new();
    for &qid in group {
        let Some(pending) = registry.get(qid) else {
            return Ok(None);
        };
        for (cidx, c) in pending.query.constraints.iter().enumerate() {
            if !c.negated {
                obligations.push((qid, cidx));
            }
        }
    }
    assign_providers(
        registry,
        catalog,
        group,
        &obligations,
        0,
        &mut Subst::new(),
        config,
        rng,
        stats,
    )
}

#[allow(clippy::too_many_arguments)]
fn assign_providers(
    registry: &Registry,
    catalog: &Catalog,
    group: &[QueryId],
    obligations: &[(QueryId, usize)],
    next: usize,
    subst: &mut Subst,
    config: &MatchConfig,
    rng: &mut StdRng,
    stats: &mut MatchStats,
) -> CoreResult<Option<GroupMatch>> {
    if next == obligations.len() {
        return ground_group(registry, catalog, group, subst, config, rng, stats);
    }
    let (qid, cidx) = obligations[next];
    let constraint = {
        let pending = registry.get(qid).expect("member exists");
        pending.query.constraints[cidx].atom.clone()
    };
    // candidate providers: every head of every subset member; each
    // attempt is unwound via the undo journal instead of cloning
    for &provider in group {
        let Some(p) = registry.get(provider) else {
            continue;
        };
        for head in &p.query.heads {
            stats.unify_attempts += 1;
            let mark = subst.mark();
            if !subst.unify_atoms(&constraint, head) {
                subst.undo_to(mark);
                continue;
            }
            stats.unify_successes += 1;
            if let Some(m) = assign_providers(
                registry,
                catalog,
                group,
                obligations,
                next + 1,
                subst,
                config,
                rng,
                stats,
            )? {
                return Ok(Some(m));
            }
            subst.undo_to(mark);
        }
    }
    // ... and, matching the incremental matcher's semantics, committed
    // answer tuples already in the relation
    if config.use_committed_answers {
        if let Ok(table) = catalog.table(&constraint.relation) {
            for (_, tuple) in table.scan() {
                if tuple.arity() != constraint.arity() {
                    continue;
                }
                stats.committed_considered += 1;
                stats.unify_attempts += 1;
                let mark = subst.mark();
                let ok = constraint
                    .terms
                    .iter()
                    .zip(tuple.values())
                    .all(|(t, v)| subst.unify_terms(t, &crate::ir::Term::Const(v.clone())));
                if !ok {
                    subst.undo_to(mark);
                    continue;
                }
                stats.unify_successes += 1;
                if let Some(m) = assign_providers(
                    registry,
                    catalog,
                    group,
                    obligations,
                    next + 1,
                    subst,
                    config,
                    rng,
                    stats,
                )? {
                    return Ok(Some(m));
                }
                subst.undo_to(mark);
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_sql;
    use crate::matcher::search::match_query;
    use crate::registry::Pending;
    use rand::SeedableRng;
    use youtopia_exec::run_sql;
    use youtopia_storage::Database;

    fn flights_db() -> Database {
        let db = Database::new();
        for sql in [
            "CREATE TABLE Flights (fno INT PRIMARY KEY, dest STRING NOT NULL)",
            "INSERT INTO Flights VALUES (122, 'Paris'), (123, 'Paris'), (136, 'Rome')",
        ] {
            run_sql(&db, sql).unwrap();
        }
        db
    }

    fn pair_sql(me: &str, friend: &str) -> String {
        format!(
            "SELECT '{me}', fno INTO ANSWER Reservation \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') \
             AND ('{friend}', fno) IN ANSWER Reservation CHOOSE 1"
        )
    }

    fn registry_of(queries: &[(u64, String)]) -> Registry {
        let mut reg = Registry::new();
        for (id, sql) in queries {
            let q = compile_sql(sql).unwrap().namespaced(QueryId(*id));
            reg.insert(Pending {
                id: QueryId(*id),
                owner: format!("user{id}"),
                query: q,
                seq: *id,
                deadline: None,
            });
        }
        reg
    }

    fn cfg() -> MatchConfig {
        MatchConfig {
            randomize: false,
            ..MatchConfig::default()
        }
    }

    #[test]
    fn naive_matches_the_pair() {
        let db = flights_db();
        let reg = registry_of(&[
            (1, pair_sql("Kramer", "Jerry")),
            (2, pair_sql("Jerry", "Kramer")),
        ]);
        let read = db.read();
        let mut rng = StdRng::seed_from_u64(3);
        let mut stats = MatchStats::default();
        let m = match_query_naive(
            &reg,
            read.catalog(),
            QueryId(2),
            &cfg(),
            &mut rng,
            &mut stats,
        )
        .unwrap()
        .expect("pair matches");
        assert_eq!(m.members, vec![QueryId(1), QueryId(2)]);
        assert!(stats.subsets_tested >= 1);
    }

    #[test]
    fn naive_returns_minimal_groups() {
        let db = flights_db();
        // a matching pair plus a self-contained query: the pair must not
        // drag the singleton in
        let reg = registry_of(&[
            (1, pair_sql("Kramer", "Jerry")),
            (2, pair_sql("Jerry", "Kramer")),
            (
                3,
                "SELECT 'Solo', fno INTO ANSWER Reservation \
                 WHERE fno IN (SELECT fno FROM Flights) CHOOSE 1"
                    .to_string(),
            ),
        ]);
        let read = db.read();
        let mut rng = StdRng::seed_from_u64(3);
        let mut stats = MatchStats::default();
        let m = match_query_naive(
            &reg,
            read.catalog(),
            QueryId(2),
            &cfg(),
            &mut rng,
            &mut stats,
        )
        .unwrap()
        .unwrap();
        assert_eq!(m.members, vec![QueryId(1), QueryId(2)]);
        // and the singleton alone matches as a singleton
        let m3 = match_query_naive(
            &reg,
            read.catalog(),
            QueryId(3),
            &cfg(),
            &mut rng,
            &mut stats,
        )
        .unwrap()
        .unwrap();
        assert_eq!(m3.members, vec![QueryId(3)]);
    }

    #[test]
    fn naive_agrees_with_incremental_on_matchability() {
        let db = flights_db();
        let scenarios: Vec<Vec<(u64, String)>> = vec![
            // matching pair
            vec![(1, pair_sql("A", "B")), (2, pair_sql("B", "A"))],
            // non-matching
            vec![(1, pair_sql("A", "B")), (2, pair_sql("C", "D"))],
            // ring of three
            vec![
                (1, pair_sql("A", "B")),
                (2, pair_sql("B", "C")),
                (3, pair_sql("C", "A")),
            ],
            // half-open: A needs B, B needs nobody
            vec![
                (1, pair_sql("A", "B")),
                (
                    2,
                    "SELECT 'B', fno INTO ANSWER Reservation \
                     WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') CHOOSE 1"
                        .to_string(),
                ),
            ],
        ];
        for queries in scenarios {
            let reg = registry_of(&queries);
            let trigger = QueryId(queries.last().unwrap().0);
            let read = db.read();
            let mut rng1 = StdRng::seed_from_u64(1);
            let mut rng2 = StdRng::seed_from_u64(1);
            let mut s1 = MatchStats::default();
            let mut s2 = MatchStats::default();
            let naive =
                match_query_naive(&reg, read.catalog(), trigger, &cfg(), &mut rng1, &mut s1)
                    .unwrap();
            let incr =
                match_query(&reg, read.catalog(), trigger, &cfg(), &mut rng2, &mut s2).unwrap();
            assert_eq!(
                naive.is_some(),
                incr.is_some(),
                "matchers disagree on {queries:?}"
            );
            if let (Some(n), Some(i)) = (naive, incr) {
                assert_eq!(n.members, i.members, "different groups for {queries:?}");
            }
        }
    }

    #[test]
    fn naive_respects_group_size_bound() {
        let db = flights_db();
        let names = ["A", "B", "C", "D"];
        let queries: Vec<(u64, String)> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (i as u64 + 1, pair_sql(n, names[(i + 1) % 4])))
            .collect();
        let reg = registry_of(&queries);
        let read = db.read();
        let small = MatchConfig {
            max_group_size: 3,
            randomize: false,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let mut stats = MatchStats::default();
        assert!(match_query_naive(
            &reg,
            read.catalog(),
            QueryId(4),
            &small,
            &mut rng,
            &mut stats
        )
        .unwrap()
        .is_none());
    }

    #[test]
    fn naive_subset_count_grows() {
        // demonstrates the combinatorial cost that E7 measures
        let db = flights_db();
        let mut queries: Vec<(u64, String)> = (0..8u64)
            .map(|i| (i + 10, pair_sql(&format!("X{i}"), &format!("Y{i}"))))
            .collect();
        queries.push((1, pair_sql("K", "J")));
        let reg = registry_of(&queries);
        let read = db.read();
        let mut rng = StdRng::seed_from_u64(3);
        let mut stats = MatchStats::default();
        let config = MatchConfig {
            max_group_size: 3,
            randomize: false,
            ..Default::default()
        };
        match_query_naive(
            &reg,
            read.catalog(),
            QueryId(1),
            &config,
            &mut rng,
            &mut stats,
        )
        .unwrap();
        // C(8,0) + C(8,1) + C(8,2) = 1 + 8 + 28
        assert_eq!(stats.subsets_tested, 37);
    }
}
