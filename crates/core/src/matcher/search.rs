//! The incremental matcher, staged as a batch-oriented pipeline.
//!
//! Runs whenever a new entangled query arrives (the paper: "the
//! coordination component runs whenever an entangled query arrives in
//! the system"). **Stage 1** batch-resolves all of the trigger's
//! positive obligations in one pass over the registry's
//! constant-position index; an obligation with no pending candidate and
//! no compatible committed tuple proves the whole attempt unmatchable
//! before any search state is built. **Stage 2** grows a candidate
//! group from the trigger, resolving one unsatisfied positive answer
//! constraint at a time: the index proposes heads, unification prunes
//! them, and each viable provider spawns a search branch. The search
//! mutates one pooled scratch state in place — substitution rollback
//! via [`Subst::mark`]/[`Subst::undo_to`], group/obligation truncation —
//! instead of cloning at every branch. **Stage 3**, once every
//! constraint in the group has a provider, is the shared grounding
//! phase ([`ground_group`]).
//!
//! Only groups *containing the trigger* are explored — queries that
//! could have matched among themselves earlier already had their chance
//! when they arrived, so arrival-driven exploration loses nothing
//! (tested against the exhaustive baseline).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use std::collections::BTreeSet;

use youtopia_storage::{Catalog, Value};

use crate::error::CoreResult;
use crate::ir::{Atom, QueryId, Term};
use crate::matcher::ground::ground_group;
use crate::matcher::pool::{BufferPool, Reusable};
use crate::matcher::{GroupMatch, MatchConfig, MatchStats};
use crate::registry::{CandidateScan, HeadRef, Registry};
use crate::unify::Subst;

/// One unsatisfied positive answer constraint: query + constraint index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Obligation {
    qid: QueryId,
    cidx: usize,
}

/// A provider for one constraint: a live pending head, or (under
/// `use_committed_answers`) a ground tuple already committed to the
/// answer relation.
enum Provider {
    Head(HeadRef),
    Committed(Vec<Value>),
}

/// The mutable search state, shared down the recursion and undone on
/// backtrack instead of cloned per branch.
#[derive(Default)]
struct SearchScratch {
    subst: Subst,
    group: BTreeSet<QueryId>,
    obligations: Vec<Obligation>,
}

impl Reusable for SearchScratch {
    fn wipe(&mut self) {
        self.subst.reset();
        self.group.clear();
        self.obligations.clear();
    }
}

/// Per-search-node buffers: resolved candidate heads and the assembled
/// provider list.
#[derive(Default)]
struct NodeBufs {
    heads: Vec<HeadRef>,
    providers: Vec<Provider>,
}

impl Reusable for NodeBufs {
    fn wipe(&mut self) {
        self.heads.clear();
        self.providers.clear();
    }
}

thread_local! {
    static SCRATCH_POOL: BufferPool<SearchScratch> = const { BufferPool::new() };
    static NODE_POOL: BufferPool<NodeBufs> = const { BufferPool::new() };
}

/// Attempts to find and ground a coordination group containing
/// `trigger`. Returns the first match found (candidate/row order is
/// randomized when `config.randomize` is set, giving the paper's
/// nondeterministic `CHOOSE`).
pub fn match_query(
    registry: &Registry,
    catalog: &Catalog,
    trigger: QueryId,
    config: &MatchConfig,
    rng: &mut StdRng,
    stats: &mut MatchStats,
) -> CoreResult<Option<GroupMatch>> {
    let Some(pending) = registry.get(trigger) else {
        return Ok(None);
    };
    // Stage 1: batched candidate scan — all positive obligations of the
    // trigger resolved in one pass over the index. An obligation with
    // no pending candidate and no compatible committed tuple can never
    // be satisfied (candidates_for is a superset of the unifiable
    // heads), so the attempt dies before any search state is built.
    let atoms: Vec<&Atom> = pending
        .query
        .constraints
        .iter()
        .filter(|c| !c.negated)
        .map(|c| &c.atom)
        .collect();
    if registry.uses_const_index() && !atoms.is_empty() {
        let mut scan = CandidateScan::default();
        let mut batch: Vec<Vec<HeadRef>> = Vec::with_capacity(atoms.len());
        registry.candidates_for_batch(&atoms, &mut batch, &mut scan);
        stats.absorb_scan(&scan);
        for (atom, cands) in atoms.iter().zip(&batch) {
            let satisfiable = !cands.is_empty()
                || (config.use_committed_answers && committed_can_satisfy(catalog, atom, stats));
            if !satisfiable {
                stats.triggers_pruned += 1;
                return Ok(None);
            }
        }
    }
    let mut scratch = SCRATCH_POOL.with(|p| p.get(stats));
    scratch.group.insert(trigger);
    push_positive_obligations(registry, trigger, &mut scratch.obligations);
    let result = solve(registry, catalog, &mut scratch, config, rng, stats);
    SCRATCH_POOL.with(|p| p.put(scratch));
    result
}

/// True when some committed answer tuple could satisfy `atom`: arity
/// matches and every constant position is sql-compatible with the
/// tuple's value there. A superset test — unification decides the rest.
fn committed_can_satisfy(catalog: &Catalog, atom: &Atom, stats: &mut MatchStats) -> bool {
    let Ok(table) = catalog.table(&atom.relation) else {
        return false;
    };
    for (_, tuple) in table.scan() {
        stats.candidates_scanned += 1;
        if tuple.arity() == atom.arity() && tuple_compatible(atom, tuple.values()) {
            return true;
        }
        stats.index_pruned += 1;
    }
    false
}

/// Constant prefilter for committed tuples: a tuple whose value clashes
/// with one of the atom's constants can never unify with it.
fn tuple_compatible(atom: &Atom, values: &[Value]) -> bool {
    atom.terms.iter().zip(values).all(|(t, v)| match t {
        Term::Const(c) => c.sql_eq(v) || c == v,
        Term::Var(_) => true,
    })
}

fn push_positive_obligations(registry: &Registry, qid: QueryId, out: &mut Vec<Obligation>) {
    let Some(pending) = registry.get(qid) else {
        return;
    };
    out.extend(
        pending
            .query
            .constraints
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.negated)
            .map(|(cidx, _)| Obligation { qid, cidx }),
    );
}

/// One search node: pops an obligation, tries its providers. On a dead
/// end the parent's obligation stack is restored before returning.
fn solve(
    registry: &Registry,
    catalog: &Catalog,
    scratch: &mut SearchScratch,
    config: &MatchConfig,
    rng: &mut StdRng,
    stats: &mut MatchStats,
) -> CoreResult<Option<GroupMatch>> {
    stats.nodes_expanded += 1;
    let Some(obligation) = scratch.obligations.pop() else {
        // Structurally closed: every constraint has a provider. Ground it.
        let members: Vec<QueryId> = scratch.group.iter().copied().collect();
        return ground_group(
            registry,
            catalog,
            &members,
            &mut scratch.subst,
            config,
            rng,
            stats,
        );
    };
    let mut bufs = NODE_POOL.with(|p| p.get(stats));
    let result = solve_obligation(
        registry, catalog, scratch, obligation, &mut bufs, config, rng, stats,
    );
    NODE_POOL.with(|p| p.put(bufs));
    if let Ok(None) = &result {
        scratch.obligations.push(obligation);
    }
    result
}

#[allow(clippy::too_many_arguments)]
fn solve_obligation(
    registry: &Registry,
    catalog: &Catalog,
    scratch: &mut SearchScratch,
    obligation: Obligation,
    bufs: &mut NodeBufs,
    config: &MatchConfig,
    rng: &mut StdRng,
    stats: &mut MatchStats,
) -> CoreResult<Option<GroupMatch>> {
    let constraint_atom = {
        let pending = registry
            .get(obligation.qid)
            .expect("group members stay registered during matching");
        &pending.query.constraints[obligation.cidx].atom
    };
    // Forward checking: resolve already-bound variables so the
    // constant-position index can prune harder.
    let lookup_atom = if config.forward_checking {
        scratch.subst.apply_atom(constraint_atom)
    } else {
        constraint_atom.clone()
    };

    // Assemble providers into the pooled node buffers: index-resolved
    // pending heads, then committed tuples surviving the constant
    // prefilter (a clashing tuple could never unify — skip it before
    // cloning its values).
    let NodeBufs { heads, providers } = bufs;
    let mut scan = CandidateScan::default();
    registry.candidates_for_into(&lookup_atom, heads, &mut scan);
    stats.absorb_scan(&scan);
    providers.clear();
    providers.extend(heads.drain(..).map(Provider::Head));
    if config.use_committed_answers {
        if let Ok(table) = catalog.table(&lookup_atom.relation) {
            for (_, tuple) in table.scan() {
                stats.candidates_scanned += 1;
                if tuple.arity() != lookup_atom.arity() {
                    continue;
                }
                if !tuple_compatible(&lookup_atom, tuple.values()) {
                    stats.index_pruned += 1;
                    continue;
                }
                providers.push(Provider::Committed(tuple.values().to_vec()));
            }
        }
    }
    if config.randomize {
        providers.shuffle(rng);
    }

    for provider in bufs.providers.iter() {
        let mark = scratch.subst.mark();
        let obligations_len = scratch.obligations.len();
        let mut added_member = None;
        match provider {
            Provider::Head(href) => {
                stats.candidates_considered += 1;
                let Some(head) = registry.head(*href) else {
                    continue;
                };
                // Group-size bound: adding a new member must not exceed it.
                let is_new = !scratch.group.contains(&href.qid);
                if is_new && scratch.group.len() >= config.max_group_size {
                    continue;
                }
                stats.unify_attempts += 1;
                if !scratch.subst.unify_atoms(&lookup_atom, head) {
                    scratch.subst.undo_to(mark);
                    continue;
                }
                stats.unify_successes += 1;
                if is_new {
                    scratch.group.insert(href.qid);
                    added_member = Some(href.qid);
                    push_positive_obligations(registry, href.qid, &mut scratch.obligations);
                }
            }
            Provider::Committed(values) => {
                stats.committed_considered += 1;
                stats.unify_attempts += 1;
                let ok = lookup_atom
                    .terms
                    .iter()
                    .zip(values)
                    .all(|(t, v)| scratch.subst.unify_terms(t, &Term::Const(v.clone())));
                if !ok {
                    scratch.subst.undo_to(mark);
                    continue;
                }
                stats.unify_successes += 1;
                // a committed tuple adds no member and no obligations
            }
        }
        if let Some(m) = solve(registry, catalog, scratch, config, rng, stats)? {
            return Ok(Some(m));
        }
        // Backtrack: unwind everything this provider did to the scratch.
        scratch.subst.undo_to(mark);
        scratch.obligations.truncate(obligations_len);
        if let Some(qid) = added_member {
            scratch.group.remove(&qid);
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_sql;
    use crate::registry::Pending;
    use rand::SeedableRng;
    use youtopia_exec::run_sql;
    use youtopia_storage::{Database, Value};

    fn flights_db() -> Database {
        let db = Database::new();
        for sql in [
            "CREATE TABLE Flights (fno INT PRIMARY KEY, dest STRING NOT NULL, price FLOAT)",
            "INSERT INTO Flights VALUES (122, 'Paris', 450.0), (123, 'Paris', 500.0), \
             (134, 'Paris', 800.0), (136, 'Rome', 300.0)",
            "CREATE TABLE Hotels (hid INT PRIMARY KEY, city STRING NOT NULL)",
            "INSERT INTO Hotels VALUES (7, 'Paris'), (8, 'Paris'), (9, 'Rome')",
        ] {
            run_sql(&db, sql).unwrap();
        }
        db
    }

    fn pair_sql(me: &str, friend: &str) -> String {
        format!(
            "SELECT '{me}', fno INTO ANSWER Reservation \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') \
             AND ('{friend}', fno) IN ANSWER Reservation CHOOSE 1"
        )
    }

    fn registry_of(queries: &[(u64, &str)]) -> Registry {
        let mut reg = Registry::new();
        for (id, sql) in queries {
            let q = compile_sql(sql).unwrap().namespaced(QueryId(*id));
            reg.insert(Pending {
                id: QueryId(*id),
                owner: format!("user{id}"),
                query: q,
                seq: *id,
                deadline: None,
            });
        }
        reg
    }

    fn cfg() -> MatchConfig {
        MatchConfig {
            randomize: false,
            ..MatchConfig::default()
        }
    }

    fn run_match(
        db: &Database,
        reg: &Registry,
        trigger: u64,
        config: &MatchConfig,
    ) -> Option<GroupMatch> {
        let read = db.read();
        let mut rng = StdRng::seed_from_u64(7);
        let mut stats = MatchStats::default();
        match_query(
            reg,
            read.catalog(),
            QueryId(trigger),
            config,
            &mut rng,
            &mut stats,
        )
        .unwrap()
    }

    #[test]
    fn kramer_alone_stays_pending() {
        let db = flights_db();
        let reg = registry_of(&[(1, &pair_sql("Kramer", "Jerry"))]);
        assert!(run_match(&db, &reg, 1, &cfg()).is_none());
    }

    #[test]
    fn kramer_and_jerry_match_fig1() {
        let db = flights_db();
        let reg = registry_of(&[
            (1, &pair_sql("Kramer", "Jerry")),
            (2, &pair_sql("Jerry", "Kramer")),
        ]);
        let m = run_match(&db, &reg, 2, &cfg()).expect("pair should match");
        assert_eq!(m.members, vec![QueryId(1), QueryId(2)]);
        let k = &m.answers[&QueryId(1)][0];
        let j = &m.answers[&QueryId(2)][0];
        assert_eq!(k.0, "Reservation");
        assert_eq!(k.1.values()[0], Value::from("Kramer"));
        assert_eq!(j.1.values()[0], Value::from("Jerry"));
        // the coordinated flight number is shared and is a Paris flight
        assert_eq!(k.1.values()[1], j.1.values()[1]);
        let fno = k.1.values()[1].as_int().unwrap();
        assert!([122, 123, 134].contains(&fno), "fig 1: never Rome's 136");
    }

    #[test]
    fn mismatched_names_do_not_match() {
        let db = flights_db();
        // Kramer waits for Jerry, but only Elaine is around
        let reg = registry_of(&[
            (1, &pair_sql("Kramer", "Jerry")),
            (2, &pair_sql("Elaine", "George")),
        ]);
        assert!(run_match(&db, &reg, 2, &cfg()).is_none());
    }

    #[test]
    fn noise_does_not_confuse_the_pair() {
        let db = flights_db();
        let mut queries: Vec<(u64, String)> = Vec::new();
        // 20 unmatched bystanders
        for i in 0..20u64 {
            queries.push((100 + i, pair_sql(&format!("U{i}"), &format!("V{i}"))));
        }
        queries.push((1, pair_sql("Kramer", "Jerry")));
        queries.push((2, pair_sql("Jerry", "Kramer")));
        let refs: Vec<(u64, &str)> = queries.iter().map(|(id, s)| (*id, s.as_str())).collect();
        let reg = registry_of(&refs);
        let m = run_match(&db, &reg, 2, &cfg()).expect("pair matches despite noise");
        assert_eq!(m.members, vec![QueryId(1), QueryId(2)]);
    }

    #[test]
    fn asymmetric_browse_then_join() {
        let db = flights_db();
        // Jerry books unconditionally (well, self-contained); Kramer's
        // later query requires Jerry's tuple. They still only match as a
        // group if both are pending simultaneously.
        let reg = registry_of(&[
            (
                1,
                "SELECT 'Jerry', fno INTO ANSWER Reservation \
                 WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') CHOOSE 1",
            ),
            (2, &pair_sql("Kramer", "Jerry")),
        ]);
        let m = run_match(&db, &reg, 2, &cfg()).expect("kramer joins jerry");
        assert_eq!(m.members, vec![QueryId(1), QueryId(2)]);
        assert_eq!(
            m.answers[&QueryId(1)][0].1.values()[1],
            m.answers[&QueryId(2)][0].1.values()[1]
        );
    }

    #[test]
    fn group_of_four_on_one_flight() {
        let db = flights_db();
        // a ring: each friend requires the next one's reservation
        let names = ["A", "B", "C", "D"];
        let mut queries = Vec::new();
        for (i, name) in names.iter().enumerate() {
            let next = names[(i + 1) % names.len()];
            queries.push((i as u64 + 1, pair_sql(name, next)));
        }
        let refs: Vec<(u64, &str)> = queries.iter().map(|(id, s)| (*id, s.as_str())).collect();
        let reg = registry_of(&refs);
        // first three arrivals: no match
        for t in 1..=3 {
            assert!(run_match(&db, &reg_subset(&refs, t), t, &cfg()).is_none());
        }
        let m = run_match(&db, &reg, 4, &cfg()).expect("ring of four closes");
        assert_eq!(m.members.len(), 4);
        // everyone on the same flight
        let fnos: std::collections::HashSet<i64> = m
            .answers
            .values()
            .map(|a| a[0].1.values()[1].as_int().unwrap())
            .collect();
        assert_eq!(fnos.len(), 1);
    }

    fn reg_subset(all: &[(u64, &str)], upto: u64) -> Registry {
        let subset: Vec<(u64, &str)> = all.iter().filter(|(id, _)| *id <= upto).copied().collect();
        registry_of(&subset)
    }

    #[test]
    fn flight_and_hotel_multi_relation_group() {
        let db = flights_db();
        let jerry = "SELECT 'Jerry', fno INTO ANSWER Res, 'Jerry', hid INTO ANSWER HotelRes \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') \
             AND hid IN (SELECT hid FROM Hotels WHERE city = 'Paris') \
             AND ('Kramer', fno) IN ANSWER Res AND ('Kramer', hid) IN ANSWER HotelRes CHOOSE 1";
        let kramer = "SELECT 'Kramer', fno INTO ANSWER Res, 'Kramer', hid INTO ANSWER HotelRes \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') \
             AND hid IN (SELECT hid FROM Hotels WHERE city = 'Paris') \
             AND ('Jerry', fno) IN ANSWER Res AND ('Jerry', hid) IN ANSWER HotelRes CHOOSE 1";
        let reg = registry_of(&[(1, jerry), (2, kramer)]);
        let m = run_match(&db, &reg, 2, &cfg()).expect("flight+hotel pair");
        // same flight AND same hotel
        let j = &m.answers[&QueryId(1)];
        let k = &m.answers[&QueryId(2)];
        assert_eq!(j.len(), 2);
        let j_flight = j.iter().find(|(r, _)| r == "Res").unwrap();
        let k_flight = k.iter().find(|(r, _)| r == "Res").unwrap();
        let j_hotel = j.iter().find(|(r, _)| r == "HotelRes").unwrap();
        let k_hotel = k.iter().find(|(r, _)| r == "HotelRes").unwrap();
        assert_eq!(j_flight.1.values()[1], k_flight.1.values()[1]);
        assert_eq!(j_hotel.1.values()[1], k_hotel.1.values()[1]);
        // hotel is a Paris hotel
        let hid = j_hotel.1.values()[1].as_int().unwrap();
        assert!([7, 8].contains(&hid));
    }

    #[test]
    fn adhoc_overlapping_constraints() {
        let db = flights_db();
        // Jerry & Kramer coordinate on flights only; Kramer & Elaine on
        // flights and hotels (the paper's ad-hoc example, §3.1).
        let jerry = pair_sql("Jerry", "Kramer");
        let kramer =
            "SELECT 'Kramer', fno INTO ANSWER Reservation, 'Kramer', hid INTO ANSWER HotelRes \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') \
             AND hid IN (SELECT hid FROM Hotels WHERE city = 'Paris') \
             AND ('Jerry', fno) IN ANSWER Reservation \
             AND ('Elaine', hid) IN ANSWER HotelRes CHOOSE 1";
        let elaine =
            "SELECT 'Elaine', fno INTO ANSWER Reservation, 'Elaine', hid INTO ANSWER HotelRes \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') \
             AND hid IN (SELECT hid FROM Hotels WHERE city = 'Paris') \
             AND ('Kramer', fno) IN ANSWER Reservation \
             AND ('Kramer', hid) IN ANSWER HotelRes CHOOSE 1";
        let reg = registry_of(&[(1, &jerry), (2, kramer), (3, elaine)]);
        let m = run_match(&db, &reg, 3, &cfg()).expect("three-way ad-hoc group");
        assert_eq!(m.members.len(), 3);
        // Jerry & Kramer share a flight; Kramer & Elaine share a hotel
        let flight = |qid: u64| {
            m.answers[&QueryId(qid)]
                .iter()
                .find(|(r, _)| r == "Reservation")
                .map(|(_, t)| t.values()[1].clone())
        };
        let hotel = |qid: u64| {
            m.answers[&QueryId(qid)]
                .iter()
                .find(|(r, _)| r == "HotelRes")
                .map(|(_, t)| t.values()[1].clone())
        };
        assert_eq!(flight(1), flight(2));
        assert_eq!(hotel(2), hotel(3));
    }

    #[test]
    fn randomized_choice_varies_across_seeds() {
        let db = flights_db();
        let reg = registry_of(&[
            (1, &pair_sql("Kramer", "Jerry")),
            (2, &pair_sql("Jerry", "Kramer")),
        ]);
        let read = db.read();
        let config = MatchConfig::default(); // randomize = true
        let mut seen = std::collections::HashSet::new();
        for seed in 0..64u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut stats = MatchStats::default();
            let m = match_query(
                &reg,
                read.catalog(),
                QueryId(2),
                &config,
                &mut rng,
                &mut stats,
            )
            .unwrap()
            .unwrap();
            seen.insert(m.answers[&QueryId(1)][0].1.values()[1].as_int().unwrap());
        }
        // nondeterministic choice over {122, 123, 134}: with 64 seeds we
        // should see at least two distinct flights
        assert!(seen.len() >= 2, "expected varied choices, saw {seen:?}");
        for fno in &seen {
            assert!([122, 123, 134].contains(fno));
        }
    }

    #[test]
    fn max_group_size_bounds_search() {
        let db = flights_db();
        let names = ["A", "B", "C", "D"];
        let mut queries = Vec::new();
        for (i, name) in names.iter().enumerate() {
            let next = names[(i + 1) % names.len()];
            queries.push((i as u64 + 1, pair_sql(name, next)));
        }
        let refs: Vec<(u64, &str)> = queries.iter().map(|(id, s)| (*id, s.as_str())).collect();
        let reg = registry_of(&refs);
        let small = MatchConfig {
            max_group_size: 3,
            randomize: false,
            ..Default::default()
        };
        assert!(run_match(&db, &reg, 4, &small).is_none());
    }

    #[test]
    fn forward_checking_off_still_correct() {
        let db = flights_db();
        let reg = registry_of(&[
            (1, &pair_sql("Kramer", "Jerry")),
            (2, &pair_sql("Jerry", "Kramer")),
        ]);
        let no_fc = MatchConfig {
            forward_checking: false,
            randomize: false,
            ..Default::default()
        };
        let m = run_match(&db, &reg, 2, &no_fc).expect("still matches");
        assert_eq!(m.members.len(), 2);
    }

    #[test]
    fn trigger_must_exist() {
        let db = flights_db();
        let reg = Registry::new();
        assert!(run_match(&db, &reg, 99, &cfg()).is_none());
    }

    #[test]
    fn stats_are_collected() {
        let db = flights_db();
        let reg = registry_of(&[
            (1, &pair_sql("Kramer", "Jerry")),
            (2, &pair_sql("Jerry", "Kramer")),
        ]);
        let read = db.read();
        let mut rng = StdRng::seed_from_u64(7);
        let mut stats = MatchStats::default();
        match_query(
            &reg,
            read.catalog(),
            QueryId(2),
            &cfg(),
            &mut rng,
            &mut stats,
        )
        .unwrap()
        .unwrap();
        assert!(stats.nodes_expanded >= 2);
        assert!(stats.unify_attempts >= 2);
        assert!(stats.groundings_attempted >= 1);
    }
}
