//! The grounding phase: given a structurally closed group (every
//! positive answer constraint has been unified with a member head),
//! find a variable assignment satisfying all database predicates,
//! filters and negative constraints.
//!
//! This is a finite CSP: each positive membership predicate contributes
//! a domain (the rows of its subquery, evaluated once against the
//! current database snapshot), and the search assigns memberships to
//! rows with backtracking. With `forward_checking` on, the next
//! membership to assign is chosen fail-first (fewest compatible rows).
//!
//! The search mutates the caller's substitution in place, rolling back
//! with [`Subst::mark`]/[`Subst::undo_to`] on backtrack, and filters
//! row domains into pooled index buffers — no per-row or per-branch
//! substitution clones.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use youtopia_exec::execute_select;
use youtopia_storage::{Catalog, Tuple, Value};

use crate::error::{CoreError, CoreResult};
use crate::ir::{Atom, Filter, QueryId, Term};
use crate::matcher::pool::BufferPool;
use crate::matcher::{GroupMatch, MatchConfig, MatchStats};
use crate::registry::Registry;
use crate::unify::Subst;

thread_local! {
    /// Row-index scratch buffers for the fail-first filtering passes.
    static ROW_POOL: BufferPool<Vec<usize>> = const { BufferPool::new() };
}

/// A membership predicate with its pre-evaluated row domain.
#[derive(Debug)]
struct MembershipDomain {
    terms: Vec<Term>,
    rows: Vec<Vec<Value>>,
}

/// A negative membership check (`NOT IN (SELECT ...)`).
#[derive(Debug)]
struct NegMembership {
    terms: Vec<Term>,
    rows: Vec<Vec<Value>>,
}

/// The complete grounding problem for one candidate group.
#[derive(Debug)]
pub struct GroundingProblem {
    members: Vec<QueryId>,
    domains: Vec<MembershipDomain>,
    neg_memberships: Vec<NegMembership>,
    filters: Vec<Filter>,
    neg_constraints: Vec<Atom>,
    heads: Vec<(QueryId, Atom)>,
}

impl GroundingProblem {
    /// Builds the problem for `group`: evaluates every member's
    /// membership subqueries against `catalog` and collects filters,
    /// negative constraints and heads.
    pub fn build(
        registry: &Registry,
        catalog: &Catalog,
        group: &[QueryId],
        stats: &mut MatchStats,
    ) -> CoreResult<GroundingProblem> {
        let mut domains = Vec::new();
        let mut neg_memberships = Vec::new();
        let mut filters = Vec::new();
        let mut neg_constraints = Vec::new();
        let mut heads = Vec::new();

        for &qid in group {
            let pending = registry.get(qid).ok_or(CoreError::UnknownQuery(qid.0))?;
            let q = &pending.query;
            for m in &q.memberships {
                let result = execute_select(catalog, &m.select)?;
                if result.schema.arity() != m.terms.len() {
                    return Err(CoreError::Compile(format!(
                        "membership tuple has {} terms but its subquery returns {} columns",
                        m.terms.len(),
                        result.schema.arity()
                    )));
                }
                let rows: Vec<Vec<Value>> =
                    result.rows.into_iter().map(Tuple::into_values).collect();
                stats.rows_scanned += rows.len() as u64;
                if m.negated {
                    neg_memberships.push(NegMembership {
                        terms: m.terms.clone(),
                        rows,
                    });
                } else {
                    domains.push(MembershipDomain {
                        terms: m.terms.clone(),
                        rows,
                    });
                }
            }
            filters.extend(q.filters.iter().cloned());
            for c in &q.constraints {
                if c.negated {
                    neg_constraints.push(c.atom.clone());
                }
            }
            for h in &q.heads {
                heads.push((qid, h.clone()));
            }
        }
        Ok(GroundingProblem {
            members: group.to_vec(),
            domains,
            neg_memberships,
            filters,
            neg_constraints,
            heads,
        })
    }

    /// Solves the problem starting from `subst` (the unifications the
    /// structural phase produced). Returns the group's joint answers on
    /// success. The substitution is always restored to its entry state
    /// before returning — the caller's scratch survives the search.
    pub fn solve(
        &self,
        subst: &mut Subst,
        catalog: &Catalog,
        config: &MatchConfig,
        rng: &mut StdRng,
        stats: &mut MatchStats,
    ) -> CoreResult<Option<GroupMatch>> {
        stats.groundings_attempted += 1;
        let unassigned: Vec<usize> = (0..self.domains.len()).collect();
        self.assign(subst, &unassigned, catalog, config, rng, stats)
    }

    fn assign(
        &self,
        subst: &mut Subst,
        unassigned: &[usize],
        catalog: &Catalog,
        config: &MatchConfig,
        rng: &mut StdRng,
        stats: &mut MatchStats,
    ) -> CoreResult<Option<GroupMatch>> {
        if unassigned.is_empty() {
            return self.finalize(subst, catalog, config, stats);
        }
        let mut best_rows = ROW_POOL.with(|p| p.get(stats));
        let mut trial_rows = ROW_POOL.with(|p| p.get(stats));
        // Pick the next membership: fail-first under forward checking,
        // first-listed otherwise.
        let pick_pos = if config.forward_checking {
            let mut pick: Option<usize> = None;
            for (pos, &idx) in unassigned.iter().enumerate() {
                self.compatible_row_indices(idx, subst, &mut trial_rows, stats);
                if pick.is_none() || trial_rows.len() < best_rows.len() {
                    std::mem::swap(&mut best_rows, &mut trial_rows);
                    pick = Some(pos);
                    if best_rows.is_empty() {
                        break; // cannot do better than zero
                    }
                }
            }
            pick.expect("unassigned is non-empty")
        } else {
            self.compatible_row_indices(unassigned[0], subst, &mut best_rows, stats);
            0
        };
        // Shuffling the index buffer visits the same rows in the same
        // order (and burns the same RNG draws) as shuffling a 0..len
        // order vector over materialized clones did.
        if config.randomize {
            best_rows.shuffle(rng);
        }
        let rest: Vec<usize> = unassigned
            .iter()
            .enumerate()
            .filter(|(p, _)| *p != pick_pos)
            .map(|(_, &i)| i)
            .collect();
        let domain = &self.domains[unassigned[pick_pos]];
        let mut found: Option<CoreResult<GroupMatch>> = None;
        for &row_pos in best_rows.iter() {
            let mark = subst.mark();
            let ok = domain
                .terms
                .iter()
                .zip(&domain.rows[row_pos])
                .all(|(t, v)| subst.unify_terms(t, &Term::Const(v.clone())));
            debug_assert!(ok, "a row compatible at filter time re-unifies");
            if ok {
                match self.assign(subst, &rest, catalog, config, rng, stats) {
                    Ok(Some(m)) => {
                        subst.undo_to(mark);
                        found = Some(Ok(m));
                        break;
                    }
                    Ok(None) => {}
                    Err(e) => {
                        subst.undo_to(mark);
                        found = Some(Err(e));
                        break;
                    }
                }
            }
            subst.undo_to(mark);
        }
        ROW_POOL.with(|p| {
            p.put(best_rows);
            p.put(trial_rows);
        });
        match found {
            Some(Ok(m)) => Ok(Some(m)),
            Some(Err(e)) => Err(e),
            None => Ok(None),
        }
    }

    /// Collects the indices of membership `idx`'s rows compatible with
    /// the current substitution into `out`. Every trial unification is
    /// undone — the substitution leaves exactly as it arrived.
    fn compatible_row_indices(
        &self,
        idx: usize,
        subst: &mut Subst,
        out: &mut Vec<usize>,
        stats: &mut MatchStats,
    ) {
        out.clear();
        let domain = &self.domains[idx];
        for (row_pos, row) in domain.rows.iter().enumerate() {
            stats.rows_scanned += 1;
            let mark = subst.mark();
            let ok = domain
                .terms
                .iter()
                .zip(row)
                .all(|(t, v)| subst.unify_terms(t, &Term::Const(v.clone())));
            subst.undo_to(mark);
            if ok {
                out.push(row_pos);
            }
        }
    }

    /// Final validation once every positive membership is assigned.
    fn finalize(
        &self,
        subst: &Subst,
        catalog: &Catalog,
        config: &MatchConfig,
        stats: &mut MatchStats,
    ) -> CoreResult<Option<GroupMatch>> {
        // 1. every head must ground (each query gets its CHOOSE 1 tuple)
        let mut ground_heads: Vec<(QueryId, String, Vec<Value>)> =
            Vec::with_capacity(self.heads.len());
        for (qid, head) in &self.heads {
            match subst.ground_atom(head) {
                Some(values) => {
                    ground_heads.push((*qid, head.relation.clone(), values));
                }
                None => return Ok(None),
            }
        }

        // 2. filters must evaluate to TRUE
        for filter in &self.filters {
            if !eval_filter(catalog, filter, subst)? {
                return Ok(None);
            }
        }

        // 3. negative memberships: the ground tuple must be absent
        for neg in &self.neg_memberships {
            let Some(values) = subst.ground_tuple(&neg.terms) else {
                return Ok(None); // unground negation cannot be verified
            };
            stats.rows_scanned += neg.rows.len() as u64;
            let present = neg
                .rows
                .iter()
                .any(|row| row.iter().zip(&values).all(|(a, b)| a.sql_eq(b) || a == b));
            if present {
                return Ok(None);
            }
        }

        // 4. negative answer constraints: the ground atom must not be
        //    among the group's joint answers, nor (when the system-wide
        //    reading is active) among already-committed answers
        for neg in &self.neg_constraints {
            let Some(values) = subst.ground_atom(neg) else {
                return Ok(None);
            };
            let violated = ground_heads.iter().any(|(_, rel, head_vals)| {
                rel.eq_ignore_ascii_case(&neg.relation)
                    && head_vals.len() == values.len()
                    && head_vals
                        .iter()
                        .zip(&values)
                        .all(|(a, b)| a.sql_eq(b) || a == b)
            });
            if violated {
                return Ok(None);
            }
            if config.use_committed_answers {
                if let Ok(table) = catalog.table(&neg.relation) {
                    let committed = table.scan().any(|(_, tuple)| {
                        tuple.arity() == values.len()
                            && tuple
                                .values()
                                .iter()
                                .zip(&values)
                                .all(|(a, b)| a.sql_eq(b) || a == b)
                    });
                    if committed {
                        return Ok(None);
                    }
                }
            }
        }

        // Assemble the match.
        let mut answers: std::collections::BTreeMap<QueryId, Vec<(String, Tuple)>> =
            std::collections::BTreeMap::new();
        for (qid, rel, values) in ground_heads {
            answers
                .entry(qid)
                .or_default()
                .push((rel, Tuple::new(values)));
        }
        let mut members = self.members.clone();
        members.sort();
        Ok(Some(GroupMatch { members, answers }))
    }
}

/// Evaluates a residual filter under the substitution: every variable
/// must be bound; unbound variables fail the branch (safety guarantees
/// this cannot happen for accepted queries whose memberships all
/// ground).
fn eval_filter(catalog: &Catalog, filter: &Filter, subst: &Subst) -> CoreResult<bool> {
    use youtopia_exec::{ColRef, EvalContext, RelSchema};
    let mut cols = Vec::with_capacity(filter.vars.len());
    let mut values = Vec::with_capacity(filter.vars.len());
    for var in &filter.vars {
        match subst.lookup(var) {
            Some(v) => {
                cols.push(ColRef::bare(var.name().to_string()));
                values.push(v.clone());
            }
            None => return Ok(false),
        }
    }
    let schema = RelSchema::new(cols);
    let row = Tuple::new(values);
    let ctx = EvalContext::with_row(catalog, &schema, &row);
    ctx.eval_predicate(&filter.expr).map_err(CoreError::Exec)
}

/// Convenience used by both matchers: build + solve for a fixed group.
/// `subst` is restored to its entry state before returning.
#[allow(clippy::too_many_arguments)]
pub fn ground_group(
    registry: &Registry,
    catalog: &Catalog,
    group: &[QueryId],
    subst: &mut Subst,
    config: &MatchConfig,
    rng: &mut StdRng,
    stats: &mut MatchStats,
) -> CoreResult<Option<GroupMatch>> {
    let problem = GroundingProblem::build(registry, catalog, group, stats)?;
    problem.solve(subst, catalog, config, rng, stats)
}

/// Evaluates a lone filter expression for tests.
#[cfg(test)]
pub(crate) fn eval_filter_for_tests(
    catalog: &Catalog,
    filter: &Filter,
    subst: &Subst,
) -> CoreResult<bool> {
    eval_filter(catalog, filter, subst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_sql;
    use crate::ir::Var;
    use crate::registry::Pending;
    use rand::SeedableRng;
    use youtopia_exec::run_sql;
    use youtopia_storage::Database;

    fn flights_db() -> Database {
        let db = Database::new();
        for sql in [
            "CREATE TABLE Flights (fno INT PRIMARY KEY, dest STRING NOT NULL, price FLOAT)",
            "INSERT INTO Flights VALUES (122, 'Paris', 450.0), (123, 'Paris', 500.0), \
             (134, 'Paris', 800.0), (136, 'Rome', 300.0)",
        ] {
            run_sql(&db, sql).unwrap();
        }
        db
    }

    fn reg_with(queries: &[(u64, &str, &str)]) -> Registry {
        let mut reg = Registry::new();
        for (id, owner, sql) in queries {
            let q = compile_sql(sql).unwrap().namespaced(QueryId(*id));
            reg.insert(Pending {
                id: QueryId(*id),
                owner: owner.to_string(),
                query: q,
                seq: *id,
                deadline: None,
            });
        }
        reg
    }

    fn cfg() -> MatchConfig {
        MatchConfig {
            randomize: false,
            ..MatchConfig::default()
        }
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn singleton_self_contained_query_grounds() {
        let db = flights_db();
        let reg = reg_with(&[(
            1,
            "kramer",
            "SELECT 'Kramer', fno INTO ANSWER R \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') CHOOSE 1",
        )]);
        let read = db.read();
        let mut stats = MatchStats::default();
        let m = ground_group(
            &reg,
            read.catalog(),
            &[QueryId(1)],
            &mut Subst::new(),
            &cfg(),
            &mut rng(),
            &mut stats,
        )
        .unwrap()
        .expect("should ground");
        assert_eq!(m.members, vec![QueryId(1)]);
        let (rel, tuple) = &m.answers[&QueryId(1)][0];
        assert_eq!(rel, "R");
        assert_eq!(tuple.values()[0], Value::from("Kramer"));
        let fno = tuple.values()[1].as_int().unwrap();
        assert!([122, 123, 134].contains(&fno));
    }

    #[test]
    fn filters_prune_groundings() {
        let db = flights_db();
        let reg = reg_with(&[(
            1,
            "kramer",
            "SELECT 'K', fno, price INTO ANSWER R \
             WHERE (fno, price) IN (SELECT fno, price FROM Flights WHERE dest = 'Paris') \
             AND price < 480 CHOOSE 1",
        )]);
        let read = db.read();
        let mut stats = MatchStats::default();
        let m = ground_group(
            &reg,
            read.catalog(),
            &[QueryId(1)],
            &mut Subst::new(),
            &cfg(),
            &mut rng(),
            &mut stats,
        )
        .unwrap()
        .unwrap();
        // only flight 122 at 450 passes the filter
        assert_eq!(m.answers[&QueryId(1)][0].1.values()[1], Value::Int(122));
    }

    #[test]
    fn unsatisfiable_filter_fails_gracefully() {
        let db = flights_db();
        let reg = reg_with(&[(
            1,
            "k",
            "SELECT 'K', fno, price INTO ANSWER R \
             WHERE (fno, price) IN (SELECT fno, price FROM Flights) AND price < 0 CHOOSE 1",
        )]);
        let read = db.read();
        let mut stats = MatchStats::default();
        let m = ground_group(
            &reg,
            read.catalog(),
            &[QueryId(1)],
            &mut Subst::new(),
            &cfg(),
            &mut rng(),
            &mut stats,
        )
        .unwrap();
        assert!(m.is_none());
    }

    #[test]
    fn pair_grounding_shares_variable() {
        let db = flights_db();
        let reg = reg_with(&[
            (
                1,
                "kramer",
                "SELECT 'Kramer', fno INTO ANSWER R \
                 WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') \
                 AND ('Jerry', fno) IN ANSWER R CHOOSE 1",
            ),
            (
                2,
                "jerry",
                "SELECT 'Jerry', fno INTO ANSWER R \
                 WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') \
                 AND ('Kramer', fno) IN ANSWER R CHOOSE 1",
            ),
        ]);
        // structural phase: unify the two fno variables manually
        let mut subst = Subst::new();
        assert!(subst.union(&Var::new("q1.fno"), &Var::new("q2.fno")));
        let read = db.read();
        let mut stats = MatchStats::default();
        let m = ground_group(
            &reg,
            read.catalog(),
            &[QueryId(1), QueryId(2)],
            &mut subst,
            &cfg(),
            &mut rng(),
            &mut stats,
        )
        .unwrap()
        .unwrap();
        // both get the same flight
        let k = m.answers[&QueryId(1)][0].1.values()[1].clone();
        let j = m.answers[&QueryId(2)][0].1.values()[1].clone();
        assert_eq!(k, j);
    }

    #[test]
    fn contradictory_memberships_fail() {
        let db = flights_db();
        let reg = reg_with(&[
            (
                1,
                "a",
                "SELECT 'A', fno INTO ANSWER R \
                 WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') CHOOSE 1",
            ),
            (
                2,
                "b",
                "SELECT 'B', fno INTO ANSWER R \
                 WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Rome') CHOOSE 1",
            ),
        ]);
        let mut subst = Subst::new();
        assert!(subst.union(&Var::new("q1.fno"), &Var::new("q2.fno")));
        let read = db.read();
        let mut stats = MatchStats::default();
        let m = ground_group(
            &reg,
            read.catalog(),
            &[QueryId(1), QueryId(2)],
            &mut subst,
            &cfg(),
            &mut rng(),
            &mut stats,
        )
        .unwrap();
        assert!(m.is_none()); // Paris ∩ Rome = ∅
    }

    #[test]
    fn negative_membership_excludes_rows() {
        let db = flights_db();
        run_sql(&db, "CREATE TABLE Banned (fno INT)").unwrap();
        run_sql(&db, "INSERT INTO Banned VALUES (122), (123), (134)").unwrap();
        let reg = reg_with(&[(
            1,
            "k",
            "SELECT 'K', fno INTO ANSWER R \
             WHERE fno IN (SELECT fno FROM Flights) \
             AND fno NOT IN (SELECT fno FROM Banned) CHOOSE 1",
        )]);
        let read = db.read();
        let mut stats = MatchStats::default();
        let m = ground_group(
            &reg,
            read.catalog(),
            &[QueryId(1)],
            &mut Subst::new(),
            &cfg(),
            &mut rng(),
            &mut stats,
        )
        .unwrap()
        .unwrap();
        assert_eq!(m.answers[&QueryId(1)][0].1.values()[1], Value::Int(136));
    }

    #[test]
    fn negative_constraint_blocks_equal_answer() {
        let db = flights_db();
        // Both want a Paris flight, but A insists B does NOT get the
        // same one — and B's constraint forces the same one. Unsat.
        let reg = reg_with(&[
            (
                1,
                "a",
                "SELECT 'A', fno INTO ANSWER R \
                 WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') \
                 AND ('B', fno) NOT IN ANSWER R CHOOSE 1",
            ),
            (
                2,
                "b",
                "SELECT 'B', fno INTO ANSWER R \
                 WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') \
                 AND ('A', fno) IN ANSWER R CHOOSE 1",
            ),
        ]);
        let mut subst = Subst::new();
        // B's positive constraint unified A's head with ('A', q2.fno)
        assert!(subst.union(&Var::new("q1.fno"), &Var::new("q2.fno")));
        let read = db.read();
        let mut stats = MatchStats::default();
        let m = ground_group(
            &reg,
            read.catalog(),
            &[QueryId(1), QueryId(2)],
            &mut subst,
            &cfg(),
            &mut rng(),
            &mut stats,
        )
        .unwrap();
        assert!(m.is_none());
    }

    #[test]
    fn unbound_head_variable_fails() {
        let db = flights_db();
        // relaxed-safety query alone: fno bound by nobody
        let reg = reg_with(&[(
            1,
            "k",
            "SELECT 'K', fno INTO ANSWER R WHERE ('J', fno) IN ANSWER R CHOOSE 1",
        )]);
        let read = db.read();
        let mut stats = MatchStats::default();
        let m = ground_group(
            &reg,
            read.catalog(),
            &[QueryId(1)],
            &mut Subst::new(),
            &cfg(),
            &mut rng(),
            &mut stats,
        )
        .unwrap();
        assert!(m.is_none());
    }

    #[test]
    fn stats_count_rows() {
        let db = flights_db();
        let reg = reg_with(&[(
            1,
            "k",
            "SELECT 'K', fno INTO ANSWER R WHERE fno IN (SELECT fno FROM Flights) CHOOSE 1",
        )]);
        let read = db.read();
        let mut stats = MatchStats::default();
        ground_group(
            &reg,
            read.catalog(),
            &[QueryId(1)],
            &mut Subst::new(),
            &cfg(),
            &mut rng(),
            &mut stats,
        )
        .unwrap();
        assert!(stats.rows_scanned >= 4);
        assert_eq!(stats.groundings_attempted, 1);
    }

    #[test]
    fn filter_eval_helper() {
        let db = flights_db();
        let read = db.read();
        // build "price < 500" then namespace it into q1's variable space
        let filter = Filter {
            expr: youtopia_sql::parse_expr("price < 500").unwrap(),
            vars: vec![Var::new("price")],
        }
        .namespaced(QueryId(1));
        let mut s = Subst::new();
        s.bind(&Var::new("q1.price"), Value::Float(450.0));
        assert!(eval_filter_for_tests(read.catalog(), &filter, &s).unwrap());
        let mut s2 = Subst::new();
        s2.bind(&Var::new("q1.price"), Value::Float(600.0));
        assert!(!eval_filter_for_tests(read.catalog(), &filter, &s2).unwrap());
        // unbound var → false
        assert!(!eval_filter_for_tests(read.catalog(), &filter, &Subst::new()).unwrap());
    }
}
