//! The matcher: finds coordination groups of pending entangled queries
//! that can be answered jointly.
//!
//! A **coordination group** is a set `G` of pending queries together
//! with a variable assignment such that
//!
//! 1. every member's *membership predicates* hold on the database,
//! 2. every member's *filters* hold,
//! 3. every member's positive *answer constraints* unify with the head
//!    of some member of `G` (the joint answer relation satisfies all
//!    postconditions),
//! 4. every negative answer constraint's ground tuple is absent from
//!    the group's joint answers, and
//! 5. every head grounds to a concrete tuple (each query receives its
//!    `CHOOSE 1` answer).
//!
//! Two implementations share the grounding phase
//! ([`ground::GroundingProblem`]):
//!
//! * [`search::match_query`] — the incremental matcher: grows a group
//!   outward from the newly arrived query, using the registry's
//!   constant-position index and unification-guided candidate pruning;
//! * [`baseline::match_query_naive`] — the obvious algorithm: enumerate
//!   subsets of the pending set by increasing size and test each. It is
//!   the comparison baseline for experiment E7/E10.

pub mod baseline;
pub mod ground;
pub mod pool;
pub mod search;

use std::collections::BTreeMap;

use youtopia_storage::Tuple;

use crate::ir::QueryId;

/// A successful joint answer for a group of queries.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupMatch {
    /// The answered queries, sorted by id.
    pub members: Vec<QueryId>,
    /// Per member: the ground answer tuples, one per head, tagged with
    /// the answer relation they belong to.
    pub answers: BTreeMap<QueryId, Vec<(String, Tuple)>>,
}

impl GroupMatch {
    /// All `(relation, tuple)` answers across the group — the content
    /// this match contributes to the joint answer relations.
    pub fn all_answers(&self) -> impl Iterator<Item = &(String, Tuple)> {
        self.answers.values().flatten()
    }

    /// Group size.
    pub fn size(&self) -> usize {
        self.members.len()
    }
}

/// Tuning knobs shared by both matchers.
#[derive(Debug, Clone, Copy)]
pub struct MatchConfig {
    /// Upper bound on group size; groups larger than this are not
    /// explored (the demo's largest scenario uses 4; the default leaves
    /// generous headroom).
    pub max_group_size: usize,
    /// Forward checking: apply the current substitution to constraints
    /// before candidate lookup, and use fail-first ordering during
    /// grounding. Disabling this is the E10 ablation.
    pub forward_checking: bool,
    /// Randomize candidate and row order (the `CHOOSE 1`
    /// nondeterminism of the paper). Tests disable this for
    /// reproducibility; the coordinator seeds its own RNG.
    pub randomize: bool,
    /// Evaluate answer constraints against the *system-wide* answer
    /// relation: besides pending heads, already-committed answer tuples
    /// can satisfy a positive constraint (and violate a negative one).
    /// This is the paper's reading — "an individual query can only be
    /// answered if the system-wide answer relation satisfies a
    /// postcondition" — and is what lets Jerry coordinate with a
    /// booking Kramer already holds. Disable for strictly live-query
    /// coordination.
    pub use_committed_answers: bool,
}

impl Default for MatchConfig {
    fn default() -> Self {
        MatchConfig {
            max_group_size: 16,
            forward_checking: true,
            randomize: true,
            use_committed_answers: true,
        }
    }
}

/// Counters describing the work one or more match attempts performed.
/// The benches report these alongside wall-clock numbers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Candidate heads considered across all constraint expansions.
    pub candidates_considered: u64,
    /// Committed answer tuples considered as constraint providers.
    pub committed_considered: u64,
    /// Atom unifications attempted.
    pub unify_attempts: u64,
    /// Atom unifications that succeeded.
    pub unify_successes: u64,
    /// Grounding phases entered (structurally closed groups found).
    pub groundings_attempted: u64,
    /// Membership rows scanned during grounding.
    pub rows_scanned: u64,
    /// Search nodes expanded (structural branches).
    pub nodes_expanded: u64,
    /// Subsets tested (naive matcher only).
    pub subsets_tested: u64,
    /// Posting-list entries and committed rows examined by the staged
    /// candidate scans.
    pub candidates_scanned: u64,
    /// Candidates the constant-position index (or the committed-table
    /// constant prefilter) eliminated before unification.
    pub index_pruned: u64,
    /// Whole match attempts skipped because the candidate index proved
    /// some positive obligation unsatisfiable (sweep pruning).
    pub triggers_pruned: u64,
    /// Scratch buffers served from the thread-local pool.
    pub pool_hits: u64,
    /// Scratch buffers freshly allocated because the pool was empty.
    pub pool_misses: u64,
}

impl MatchStats {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &MatchStats) {
        self.candidates_considered += other.candidates_considered;
        self.committed_considered += other.committed_considered;
        self.unify_attempts += other.unify_attempts;
        self.unify_successes += other.unify_successes;
        self.groundings_attempted += other.groundings_attempted;
        self.rows_scanned += other.rows_scanned;
        self.nodes_expanded += other.nodes_expanded;
        self.subsets_tested += other.subsets_tested;
        self.candidates_scanned += other.candidates_scanned;
        self.index_pruned += other.index_pruned;
        self.triggers_pruned += other.triggers_pruned;
        self.pool_hits += other.pool_hits;
        self.pool_misses += other.pool_misses;
    }

    /// Folds a candidate-scan tally into the matcher counters.
    pub fn absorb_scan(&mut self, scan: &crate::registry::CandidateScan) {
        self.candidates_scanned += scan.scanned;
        self.index_pruned += scan.pruned;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtopia_storage::Value;

    #[test]
    fn group_match_accessors() {
        let mut answers = BTreeMap::new();
        answers.insert(
            QueryId(1),
            vec![(
                "Reservation".to_string(),
                Tuple::new(vec![Value::from("K"), Value::Int(122)]),
            )],
        );
        answers.insert(
            QueryId(2),
            vec![(
                "Reservation".to_string(),
                Tuple::new(vec![Value::from("J"), Value::Int(122)]),
            )],
        );
        let m = GroupMatch {
            members: vec![QueryId(1), QueryId(2)],
            answers,
        };
        assert_eq!(m.size(), 2);
        assert_eq!(m.all_answers().count(), 2);
    }

    #[test]
    fn stats_merge() {
        let mut a = MatchStats {
            candidates_considered: 1,
            ..Default::default()
        };
        let b = MatchStats {
            candidates_considered: 2,
            rows_scanned: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.candidates_considered, 3);
        assert_eq!(a.rows_scanned, 5);
    }

    #[test]
    fn default_config() {
        let c = MatchConfig::default();
        assert_eq!(c.max_group_size, 16);
        assert!(c.forward_checking);
        assert!(c.randomize);
    }
}
