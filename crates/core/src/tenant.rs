//! Multi-tenant admission control for the coordination layer.
//!
//! The network front-end (and any other multi-user entry point) treats
//! the *owner* string of a submission as belonging to a **tenant**: the
//! prefix before the first `/`, or the whole owner when it has none
//! (so `acme/alice` and `acme/bob` share the tenant `acme`, while the
//! classic single-word owners of the in-process API are each their own
//! tenant). A [`TenantRegistry`] installed on a coordinator via
//! `set_tenant_registry` is consulted **before registration**: a
//! submission that would exceed its tenant's quotas is rejected with
//! [`CoreError::QuotaExceeded`] without allocating a query id or
//! writing a WAL frame.
//!
//! Three quotas are enforced per tenant ([`TenantQuotas`]):
//!
//! * `max_in_flight` — concurrent pending (registered, unanswered)
//!   queries;
//! * `max_standing` — the subset of those with **no deadline**, which
//!   the sweeper can never reap;
//! * a submit-rate token bucket (`rate_burst` capacity, `rate_per_sec`
//!   refill) charged one token per accepted submission.
//!
//! Accounting follows the `ShardMonitor` discipline: per-tenant
//! counters are plain atomics bumped on the submit/terminate paths and
//! read lock-free by [`TenantRegistry::stats`], so the ledger
//!
//! ```text
//! submitted == answered + cancelled + expired + aborted + in_flight
//! ```
//!
//! holds at every quiescent point. `aborted` counts admissions rolled
//! back because the WAL append that would have made the registration
//! durable failed.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{CoreError, CoreResult};
use crate::ir::QueryId;
use crate::lifecycle::{Clock, SystemClock};

/// The tenant an owner string belongs to: the prefix before the first
/// `/`, or the whole owner when it contains none.
pub fn tenant_of(owner: &str) -> &str {
    owner.split('/').next().unwrap_or(owner)
}

/// Per-tenant admission quotas. The default is unlimited, so
/// installing a registry without configuring a tenant changes nothing
/// for it beyond accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuotas {
    /// Maximum concurrent pending queries.
    pub max_in_flight: usize,
    /// Maximum concurrent pending queries **without a deadline**.
    pub max_standing: usize,
    /// Token-bucket capacity: how many submissions a tenant may burst
    /// before the refill rate gates it.
    pub rate_burst: u64,
    /// Token-bucket refill rate in submissions per second. `0` means
    /// the bucket never refills — the burst is a hard lifetime cap
    /// (useful with a [`crate::MockClock`], where time never advances
    /// on its own).
    pub rate_per_sec: u64,
}

impl Default for TenantQuotas {
    fn default() -> Self {
        TenantQuotas::unlimited()
    }
}

impl TenantQuotas {
    /// No limits: every submission is admitted (but still counted).
    pub fn unlimited() -> Self {
        TenantQuotas {
            max_in_flight: usize::MAX,
            max_standing: usize::MAX,
            rate_burst: u64::MAX,
            rate_per_sec: 0,
        }
    }
}

/// How a tracked query left the pending set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantOutcome {
    /// Answered as part of a committed coordination group.
    Answered,
    /// Cancelled by the owner (or an owner-wide cancel).
    Cancelled,
    /// Reaped by the deadline sweeper.
    Expired,
    /// Rolled back before registration became durable (WAL append
    /// failed after admission).
    Aborted,
}

/// A lock-free snapshot of one tenant's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantStats {
    /// Tenant name (owner prefix).
    pub tenant: String,
    /// Quotas in force for this tenant.
    pub quotas: TenantQuotas,
    /// Submissions admitted (including ones since terminated).
    pub submitted: u64,
    /// Admitted queries answered.
    pub answered: u64,
    /// Admitted queries cancelled.
    pub cancelled: u64,
    /// Admitted queries expired by the sweeper.
    pub expired: u64,
    /// Admitted queries rolled back on WAL-append failure.
    pub aborted: u64,
    /// Submissions rejected by a quota (not counted in `submitted`).
    pub rejected: u64,
    /// Currently pending queries.
    pub in_flight: usize,
    /// Currently pending queries without a deadline.
    pub standing: usize,
}

/// Token bucket in milli-tokens (integer arithmetic, no floats):
/// `rate_per_sec` tokens/second is exactly `rate_per_sec`
/// milli-tokens/millisecond.
#[derive(Debug)]
struct TokenBucket {
    milli_tokens: u64,
    last_refill_millis: u64,
}

#[derive(Debug)]
struct TenantSlot {
    quotas: TenantQuotas,
    in_flight: AtomicUsize,
    standing: AtomicUsize,
    submitted: AtomicU64,
    answered: AtomicU64,
    cancelled: AtomicU64,
    expired: AtomicU64,
    aborted: AtomicU64,
    rejected: AtomicU64,
    bucket: Mutex<TokenBucket>,
}

impl TenantSlot {
    fn new(quotas: TenantQuotas, now_millis: u64) -> Self {
        TenantSlot {
            quotas,
            in_flight: AtomicUsize::new(0),
            standing: AtomicUsize::new(0),
            submitted: AtomicU64::new(0),
            answered: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            bucket: Mutex::new(TokenBucket {
                milli_tokens: quotas.rate_burst.saturating_mul(1000),
                last_refill_millis: now_millis,
            }),
        }
    }

    /// Refills by elapsed wall time, then tries to take one token.
    fn take_token(&self, now_millis: u64) -> bool {
        let cap = self.quotas.rate_burst.saturating_mul(1000);
        let mut bucket = self.bucket.lock();
        let elapsed = now_millis.saturating_sub(bucket.last_refill_millis);
        bucket.last_refill_millis = now_millis;
        bucket.milli_tokens = bucket
            .milli_tokens
            .saturating_add(elapsed.saturating_mul(self.quotas.rate_per_sec))
            .min(cap);
        if bucket.milli_tokens >= 1000 {
            bucket.milli_tokens -= 1000;
            true
        } else {
            false
        }
    }

    fn stats(&self, tenant: &str) -> TenantStats {
        TenantStats {
            tenant: tenant.to_string(),
            quotas: self.quotas,
            submitted: self.submitted.load(Ordering::Acquire),
            answered: self.answered.load(Ordering::Acquire),
            cancelled: self.cancelled.load(Ordering::Acquire),
            expired: self.expired.load(Ordering::Acquire),
            aborted: self.aborted.load(Ordering::Acquire),
            rejected: self.rejected.load(Ordering::Acquire),
            in_flight: self.in_flight.load(Ordering::Acquire),
            standing: self.standing.load(Ordering::Acquire),
        }
    }
}

/// A successful admission, holding its tenant's reserved capacity.
///
/// The coordinator converts it into tracked state with
/// [`TenantRegistry::track`] once the registration is durably logged;
/// dropping it unconsumed (the WAL append failed, so the query never
/// existed) releases the reservation and records the attempt as
/// `aborted`.
#[derive(Debug)]
#[must_use = "an unconsumed admission rolls its reservation back"]
pub struct Admission {
    slot: Option<Arc<TenantSlot>>,
    standing: bool,
}

impl Drop for Admission {
    fn drop(&mut self) {
        if let Some(slot) = self.slot.take() {
            slot.in_flight.fetch_sub(1, Ordering::AcqRel);
            if self.standing {
                slot.standing.fetch_sub(1, Ordering::AcqRel);
            }
            slot.aborted.fetch_add(1, Ordering::AcqRel);
        }
    }
}

#[derive(Debug)]
struct Track {
    slot: Arc<TenantSlot>,
    standing: bool,
}

#[derive(Debug, Default)]
struct Inner {
    tenants: HashMap<String, Arc<TenantSlot>>,
    tracked: HashMap<u64, Track>,
}

/// Admission control and per-tenant accounting shared by every
/// coordinator entry point. See the module docs for the model.
pub struct TenantRegistry {
    default_quotas: TenantQuotas,
    clock: Arc<dyn Clock>,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for TenantRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantRegistry")
            .field("default_quotas", &self.default_quotas)
            .finish_non_exhaustive()
    }
}

impl TenantRegistry {
    /// A registry on the system clock; tenants not explicitly
    /// configured get `default_quotas`.
    pub fn new(default_quotas: TenantQuotas) -> Arc<Self> {
        TenantRegistry::with_clock(default_quotas, Arc::new(SystemClock))
    }

    /// A registry on an injected clock (tests pair it with the
    /// coordinator's [`crate::MockClock`] so the token bucket and the
    /// deadline sweeper share one time domain).
    pub fn with_clock(default_quotas: TenantQuotas, clock: Arc<dyn Clock>) -> Arc<Self> {
        Arc::new(TenantRegistry {
            default_quotas,
            clock,
            inner: Mutex::new(Inner::default()),
        })
    }

    /// Overrides the quotas for one tenant. Existing reservations and
    /// counters are kept; only the limits change.
    pub fn set_quotas(&self, tenant: &str, quotas: TenantQuotas) {
        let now = self.clock.now_millis();
        let mut inner = self.inner.lock();
        let old = inner.tenants.get(tenant).cloned();
        // Rebuild the slot with the new limits, carrying the counters
        // over from the old one (if any).
        let fresh = TenantSlot::new(quotas, now);
        if let Some(old) = &old {
            for (dst, src) in [
                (&fresh.submitted, &old.submitted),
                (&fresh.answered, &old.answered),
                (&fresh.cancelled, &old.cancelled),
                (&fresh.expired, &old.expired),
                (&fresh.aborted, &old.aborted),
                (&fresh.rejected, &old.rejected),
            ] {
                dst.store(src.load(Ordering::Acquire), Ordering::Release);
            }
            fresh
                .in_flight
                .store(old.in_flight.load(Ordering::Acquire), Ordering::Release);
            fresh
                .standing
                .store(old.standing.load(Ordering::Acquire), Ordering::Release);
        }
        let fresh = Arc::new(fresh);
        if let Some(old) = &old {
            // Repoint tracked entries at the fresh slot so their
            // terminations decrement the live counters.
            for track in inner.tracked.values_mut() {
                if Arc::ptr_eq(&track.slot, old) {
                    track.slot = Arc::clone(&fresh);
                }
            }
        }
        inner.tenants.insert(tenant.to_string(), fresh);
    }

    fn slot_for(&self, inner: &mut Inner, tenant: &str) -> Arc<TenantSlot> {
        if let Some(slot) = inner.tenants.get(tenant) {
            return Arc::clone(slot);
        }
        let slot = Arc::new(TenantSlot::new(
            self.default_quotas,
            self.clock.now_millis(),
        ));
        inner.tenants.insert(tenant.to_string(), Arc::clone(&slot));
        Arc::clone(&slot)
    }

    /// Checks the owner's tenant against its quotas and, on success,
    /// reserves capacity for one pending query (`deadline` decides
    /// whether it counts against the standing cap). Call **before**
    /// allocating a query id so a rejected submission leaves no trace.
    pub fn admit(&self, owner: &str, deadline: Option<u64>) -> CoreResult<Admission> {
        let tenant = tenant_of(owner);
        let slot = {
            let mut inner = self.inner.lock();
            self.slot_for(&mut inner, tenant)
        };
        let standing = deadline.is_none();
        let reject = |reason: String| {
            slot.rejected.fetch_add(1, Ordering::AcqRel);
            Err(CoreError::QuotaExceeded {
                tenant: tenant.to_string(),
                reason,
            })
        };
        let in_flight = slot.in_flight.load(Ordering::Acquire);
        if in_flight >= slot.quotas.max_in_flight {
            return reject(format!(
                "in-flight limit {} reached",
                slot.quotas.max_in_flight
            ));
        }
        if standing && slot.standing.load(Ordering::Acquire) >= slot.quotas.max_standing {
            return reject(format!(
                "standing-query limit {} reached",
                slot.quotas.max_standing
            ));
        }
        if !slot.take_token(self.clock.now_millis()) {
            return reject(format!(
                "submit rate exceeded (burst {}, {}/s refill)",
                slot.quotas.rate_burst, slot.quotas.rate_per_sec
            ));
        }
        slot.in_flight.fetch_add(1, Ordering::AcqRel);
        if standing {
            slot.standing.fetch_add(1, Ordering::AcqRel);
        }
        slot.submitted.fetch_add(1, Ordering::AcqRel);
        Ok(Admission {
            slot: Some(slot),
            standing,
        })
    }

    /// Binds an admission to its durably-registered query id so a later
    /// [`finish`](TenantRegistry::finish) can release the reservation.
    pub fn track(&self, mut admission: Admission, qid: QueryId) {
        let slot = admission.slot.take().expect("admission already consumed");
        let standing = admission.standing;
        self.inner
            .lock()
            .tracked
            .insert(qid.0, Track { slot, standing });
    }

    /// Adopts an already-pending query (recovery, or a registry
    /// installed after submissions started) without quota checks.
    pub fn adopt(&self, owner: &str, qid: QueryId, deadline: Option<u64>) {
        let tenant = tenant_of(owner).to_string();
        let standing = deadline.is_none();
        let mut inner = self.inner.lock();
        if inner.tracked.contains_key(&qid.0) {
            return;
        }
        let slot = self.slot_for(&mut inner, &tenant);
        slot.in_flight.fetch_add(1, Ordering::AcqRel);
        if standing {
            slot.standing.fetch_add(1, Ordering::AcqRel);
        }
        slot.submitted.fetch_add(1, Ordering::AcqRel);
        inner.tracked.insert(qid.0, Track { slot, standing });
    }

    /// Releases the reservation held by `qid` and records how it
    /// terminated. Unknown ids (registered before the registry was
    /// installed, or already finished) are ignored.
    pub fn finish(&self, qid: QueryId, outcome: TenantOutcome) {
        let track = self.inner.lock().tracked.remove(&qid.0);
        let Some(Track { slot, standing }) = track else {
            return;
        };
        slot.in_flight.fetch_sub(1, Ordering::AcqRel);
        if standing {
            slot.standing.fetch_sub(1, Ordering::AcqRel);
        }
        let counter = match outcome {
            TenantOutcome::Answered => &slot.answered,
            TenantOutcome::Cancelled => &slot.cancelled,
            TenantOutcome::Expired => &slot.expired,
            TenantOutcome::Aborted => &slot.aborted,
        };
        counter.fetch_add(1, Ordering::AcqRel);
    }

    /// [`finish`](TenantRegistry::finish) for a batch of ids.
    pub fn finish_all(&self, qids: &[QueryId], outcome: TenantOutcome) {
        for qid in qids {
            self.finish(*qid, outcome);
        }
    }

    /// Snapshot of one tenant's counters, if it has ever been seen.
    pub fn tenant_stats(&self, tenant: &str) -> Option<TenantStats> {
        self.inner
            .lock()
            .tenants
            .get(tenant)
            .map(|slot| slot.stats(tenant))
    }

    /// Snapshots of every tenant, sorted by name.
    pub fn stats(&self) -> Vec<TenantStats> {
        let inner = self.inner.lock();
        let mut out: Vec<TenantStats> = inner
            .tenants
            .iter()
            .map(|(tenant, slot)| slot.stats(tenant))
            .collect();
        drop(inner);
        out.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifecycle::MockClock;

    fn clocked(quotas: TenantQuotas) -> (Arc<TenantRegistry>, Arc<MockClock>) {
        let clock = Arc::new(MockClock::new(1_000));
        let reg = TenantRegistry::with_clock(quotas, clock.clone());
        (reg, clock)
    }

    #[test]
    fn tenant_prefix() {
        assert_eq!(tenant_of("acme/alice"), "acme");
        assert_eq!(tenant_of("acme/teams/a"), "acme");
        assert_eq!(tenant_of("kramer"), "kramer");
        assert_eq!(tenant_of(""), "");
    }

    #[test]
    fn in_flight_cap_enforced_and_released() {
        let (reg, _) = clocked(TenantQuotas {
            max_in_flight: 2,
            ..TenantQuotas::unlimited()
        });
        let a = reg.admit("t/a", Some(99)).unwrap();
        reg.track(a, QueryId(1));
        let b = reg.admit("t/b", Some(99)).unwrap();
        reg.track(b, QueryId(2));
        let err = reg.admit("t/c", Some(99)).unwrap_err();
        assert!(matches!(err, CoreError::QuotaExceeded { ref tenant, .. } if tenant == "t"));
        // Another tenant is unaffected.
        reg.track(reg.admit("other", Some(99)).unwrap(), QueryId(3));
        // Releasing one slot re-opens admission.
        reg.finish(QueryId(1), TenantOutcome::Answered);
        reg.track(reg.admit("t/c", Some(99)).unwrap(), QueryId(4));
        let s = reg.tenant_stats("t").unwrap();
        assert_eq!((s.submitted, s.answered, s.rejected), (3, 1, 1));
        assert_eq!(s.in_flight, 2);
    }

    #[test]
    fn standing_cap_only_counts_deadline_less() {
        let (reg, _) = clocked(TenantQuotas {
            max_standing: 1,
            ..TenantQuotas::unlimited()
        });
        reg.track(reg.admit("t", None).unwrap(), QueryId(1));
        // Deadline-bearing submissions pass the standing cap.
        reg.track(reg.admit("t", Some(5_000)).unwrap(), QueryId(2));
        let err = reg.admit("t", None).unwrap_err();
        assert!(err.to_string().contains("standing-query limit"));
        reg.finish(QueryId(1), TenantOutcome::Cancelled);
        reg.track(reg.admit("t", None).unwrap(), QueryId(3));
        let s = reg.tenant_stats("t").unwrap();
        assert_eq!(s.standing, 1);
        assert_eq!(s.in_flight, 2);
    }

    #[test]
    fn token_bucket_refills_with_clock() {
        let (reg, clock) = clocked(TenantQuotas {
            rate_burst: 2,
            rate_per_sec: 1,
            ..TenantQuotas::unlimited()
        });
        reg.track(reg.admit("t", Some(1)).unwrap(), QueryId(1));
        reg.track(reg.admit("t", Some(1)).unwrap(), QueryId(2));
        let err = reg.admit("t", Some(1)).unwrap_err();
        assert!(err.to_string().contains("submit rate"));
        // 1 token/s: after 1.5s exactly one more submission fits.
        clock.advance(1_500);
        reg.track(reg.admit("t", Some(1)).unwrap(), QueryId(3));
        assert!(reg.admit("t", Some(1)).is_err());
        let s = reg.tenant_stats("t").unwrap();
        assert_eq!((s.submitted, s.rejected), (3, 2));
    }

    #[test]
    fn dropped_admission_rolls_back_as_aborted() {
        let (reg, _) = clocked(TenantQuotas {
            max_in_flight: 1,
            ..TenantQuotas::unlimited()
        });
        let adm = reg.admit("t", None).unwrap();
        drop(adm); // WAL append failed — registration never happened
        let s = reg.tenant_stats("t").unwrap();
        assert_eq!((s.in_flight, s.standing), (0, 0));
        assert_eq!((s.submitted, s.aborted), (1, 1));
        // Capacity was released.
        reg.track(reg.admit("t", None).unwrap(), QueryId(1));
    }

    #[test]
    fn adopt_and_ledger_balance() {
        let (reg, _) = clocked(TenantQuotas::unlimited());
        reg.adopt("t/x", QueryId(10), None);
        reg.adopt("t/y", QueryId(11), Some(9));
        reg.adopt("t/x", QueryId(10), None); // idempotent
        reg.track(reg.admit("t/z", Some(9)).unwrap(), QueryId(12));
        reg.finish(QueryId(11), TenantOutcome::Expired);
        reg.finish(QueryId(11), TenantOutcome::Expired); // ignored
        reg.finish(QueryId(99), TenantOutcome::Answered); // unknown: ignored
        let s = reg.tenant_stats("t").unwrap();
        assert_eq!(s.submitted, 3);
        assert_eq!(
            s.submitted,
            s.answered + s.cancelled + s.expired + s.aborted + s.in_flight as u64
        );
        assert_eq!(s.in_flight, 2);
        assert_eq!(s.standing, 1);
    }

    #[test]
    fn stats_sorted_by_tenant() {
        let (reg, _) = clocked(TenantQuotas::unlimited());
        reg.track(reg.admit("zeta", None).unwrap(), QueryId(1));
        reg.track(reg.admit("alpha", None).unwrap(), QueryId(2));
        let names: Vec<String> = reg.stats().into_iter().map(|s| s.tenant).collect();
        assert_eq!(names, vec!["alpha".to_string(), "zeta".to_string()]);
    }
}
