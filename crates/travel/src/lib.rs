//! # youtopia-travel
//!
//! The demonstration application of the Youtopia reproduction: the
//! travel web site of the paper's Section 3, built on the coordination
//! stack the way the demo's three-tier application is built on
//! Youtopia.
//!
//! * [`model`] — the travel schema (flights, hotels, users, friends,
//!   answer relations) and the demo dataset (the paper's Figure 1
//!   flights);
//! * [`social`] — the friend graph (the "Facebook" substitute);
//! * [`travel`] — the middle tier: search, direct booking, and every
//!   §3.1 coordination scenario, implemented by generating entangled
//!   SQL;
//! * [`notify`] — per-user mailboxes (the "Facebook message"
//!   substitute);
//! * [`admin`] — the §3.2 SQL command line and system-state inspector;
//! * [`workload`] — deterministic generators for the loaded-system
//!   experiments.
//!
//! ```
//! use youtopia_travel::{TravelService, FlightPrefs, BookingOutcome};
//!
//! let site = TravelService::bootstrap_demo().unwrap();
//! site.social().import_friends("jerry", &["kramer"]).unwrap();
//!
//! // Jerry asks to fly to Paris on the same flight as Kramer...
//! let waiting = site
//!     .coordinate_flight("jerry", "kramer", "Paris", FlightPrefs::default())
//!     .unwrap();
//! assert!(matches!(waiting, BookingOutcome::Waiting(_)));
//!
//! // ...and the matching request from Kramer confirms both.
//! let done = site
//!     .coordinate_flight("kramer", "jerry", "Paris", FlightPrefs::default())
//!     .unwrap();
//! assert!(done.is_confirmed());
//! assert_eq!(
//!     site.account_view("jerry").unwrap().flights,
//!     site.account_view("kramer").unwrap().flights,
//! );
//! ```

#![warn(missing_docs)]

pub mod admin;
pub mod error;
pub mod model;
pub mod notify;
pub mod social;
pub mod travel;
pub mod workload;

pub use admin::{render_result_set, AdminConsole};
pub use error::{TravelError, TravelResult};
pub use model::{flight_by_fno, hotel_by_hid, install_schema, seed_demo_data, Flight, Hotel};
pub use notify::{Message, Notifier};
pub use social::SocialGraph;
pub use travel::{AccountView, BookingOutcome, FlightPrefs, TravelService};
pub use workload::{
    drive_async, drive_batched, drive_concurrent, run_crash_restart, AsyncDriveReport, CrashReport,
    CrashScenario, DriveReport, Request, WorkloadGen,
};
