//! Error type for the travel application.

use std::fmt;

use youtopia_core::CoreError;
use youtopia_exec::ExecError;
use youtopia_storage::StorageError;

/// Errors surfaced by the travel middle tier.
#[derive(Debug, Clone, PartialEq)]
pub enum TravelError {
    /// Underlying storage failure.
    Storage(StorageError),
    /// Underlying execution failure.
    Exec(ExecError),
    /// Coordination failure (unsafe query, apply conflict...).
    Core(CoreError),
    /// The referenced user is not registered.
    UnknownUser(String),
    /// The users are not friends; coordination requests require a
    /// friend relationship (the demo imports these from "Facebook").
    NotFriends {
        /// Requesting user.
        user: String,
        /// The non-friend.
        other: String,
    },
    /// No flight/hotel satisfies the request (e.g. unknown flight
    /// number for a direct booking).
    NoSuchItem(String),
    /// Capacity exhausted (no seats / rooms left).
    SoldOut(String),
}

impl fmt::Display for TravelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TravelError::Storage(e) => write!(f, "{e}"),
            TravelError::Exec(e) => write!(f, "{e}"),
            TravelError::Core(e) => write!(f, "{e}"),
            TravelError::UnknownUser(u) => write!(f, "unknown user '{u}'"),
            TravelError::NotFriends { user, other } => {
                write!(f, "'{user}' and '{other}' are not friends")
            }
            TravelError::NoSuchItem(what) => write!(f, "no such item: {what}"),
            TravelError::SoldOut(what) => write!(f, "sold out: {what}"),
        }
    }
}

impl std::error::Error for TravelError {}

impl From<StorageError> for TravelError {
    fn from(e: StorageError) -> Self {
        TravelError::Storage(e)
    }
}
impl From<ExecError> for TravelError {
    fn from(e: ExecError) -> Self {
        TravelError::Exec(e)
    }
}
impl From<CoreError> for TravelError {
    fn from(e: CoreError) -> Self {
        TravelError::Core(e)
    }
}

/// Result alias for the travel crate.
pub type TravelResult<T> = Result<T, TravelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert_eq!(
            TravelError::UnknownUser("x".into()).to_string(),
            "unknown user 'x'"
        );
        assert_eq!(
            TravelError::NotFriends {
                user: "a".into(),
                other: "b".into()
            }
            .to_string(),
            "'a' and 'b' are not friends"
        );
        assert_eq!(
            TravelError::SoldOut("flight 122".into()).to_string(),
            "sold out: flight 122"
        );
    }

    #[test]
    fn conversions() {
        let e: TravelError = StorageError::TableNotFound("t".into()).into();
        assert!(matches!(e, TravelError::Storage(_)));
        let e: TravelError = CoreError::NotEntangled.into();
        assert!(matches!(e, TravelError::Core(_)));
        let e: TravelError = ExecError::DivisionByZero.into();
        assert!(matches!(e, TravelError::Exec(_)));
    }
}
