//! The social graph — the demo's "Facebook" substitute.
//!
//! The paper's demo imports the user's contact list through the
//! Facebook API and coordinates with those friends. This module keeps
//! the same *shape* — users log in, import a friend list, and the
//! travel site only lets them coordinate with friends — but the graph
//! lives in the database (`Users` / `Friends` tables), so the rest of
//! the pipeline is identical.

use youtopia_exec::{run_sql, StatementOutcome};
use youtopia_storage::Database;

use crate::error::{TravelError, TravelResult};
use crate::model::sql_str;

/// Friend-graph operations over the `Users` / `Friends` tables.
#[derive(Clone)]
pub struct SocialGraph {
    db: Database,
}

impl SocialGraph {
    /// Wraps a database that already has the travel schema installed.
    pub fn new(db: Database) -> SocialGraph {
        SocialGraph { db }
    }

    /// Registers a user ("logs in"); idempotent.
    pub fn register(&self, name: &str) -> TravelResult<()> {
        if self.is_registered(name)? {
            return Ok(());
        }
        run_sql(
            &self.db,
            &format!("INSERT INTO Users VALUES ({})", sql_str(name)),
        )?;
        Ok(())
    }

    /// True when `name` has an account.
    pub fn is_registered(&self, name: &str) -> TravelResult<bool> {
        let out = run_sql(
            &self.db,
            &format!("SELECT COUNT(*) FROM Users WHERE name = {}", sql_str(name)),
        )?;
        let StatementOutcome::Rows(rs) = out else {
            unreachable!("count query")
        };
        Ok(rs.rows[0].values()[0].as_int() == Some(1))
    }

    /// Imports a friend list for `user` (the "Facebook login" step).
    /// Friendship is symmetric; both directions are stored. Unregistered
    /// friends are registered on the fly.
    pub fn import_friends(&self, user: &str, friends: &[&str]) -> TravelResult<()> {
        self.register(user)?;
        for friend in friends {
            self.register(friend)?;
            if !self.are_friends(user, friend)? {
                run_sql(
                    &self.db,
                    &format!(
                        "INSERT INTO Friends VALUES ({}, {}), ({}, {})",
                        sql_str(user),
                        sql_str(friend),
                        sql_str(friend),
                        sql_str(user)
                    ),
                )?;
            }
        }
        Ok(())
    }

    /// True when the two users are friends.
    pub fn are_friends(&self, a: &str, b: &str) -> TravelResult<bool> {
        let out = run_sql(
            &self.db,
            &format!(
                "SELECT COUNT(*) FROM Friends WHERE a = {} AND b = {}",
                sql_str(a),
                sql_str(b)
            ),
        )?;
        let StatementOutcome::Rows(rs) = out else {
            unreachable!("count query")
        };
        Ok(rs.rows[0].values()[0].as_int().unwrap_or(0) > 0)
    }

    /// The friend list of `user`, sorted (Figure 3's "choose a friend"
    /// picker).
    pub fn friends_of(&self, user: &str) -> TravelResult<Vec<String>> {
        if !self.is_registered(user)? {
            return Err(TravelError::UnknownUser(user.to_string()));
        }
        let out = run_sql(
            &self.db,
            &format!(
                "SELECT b FROM Friends WHERE a = {} ORDER BY b",
                sql_str(user)
            ),
        )?;
        let StatementOutcome::Rows(rs) = out else {
            unreachable!("select query")
        };
        Ok(rs
            .rows
            .iter()
            .filter_map(|r| r.values()[0].as_str().map(str::to_string))
            .collect())
    }

    /// Requires `a` and `b` to be registered friends (coordination
    /// precondition in the UI flow).
    pub fn require_friends(&self, a: &str, b: &str) -> TravelResult<()> {
        if !self.is_registered(a)? {
            return Err(TravelError::UnknownUser(a.to_string()));
        }
        if !self.is_registered(b)? {
            return Err(TravelError::UnknownUser(b.to_string()));
        }
        if !self.are_friends(a, b)? {
            return Err(TravelError::NotFriends {
                user: a.to_string(),
                other: b.to_string(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::install_schema;

    fn graph() -> SocialGraph {
        let db = Database::new();
        install_schema(&db).unwrap();
        SocialGraph::new(db)
    }

    #[test]
    fn register_is_idempotent() {
        let g = graph();
        g.register("jerry").unwrap();
        g.register("jerry").unwrap();
        assert!(g.is_registered("jerry").unwrap());
        assert!(!g.is_registered("kramer").unwrap());
    }

    #[test]
    fn import_makes_symmetric_friendships() {
        let g = graph();
        g.import_friends("jerry", &["kramer", "elaine"]).unwrap();
        assert!(g.are_friends("jerry", "kramer").unwrap());
        assert!(g.are_friends("kramer", "jerry").unwrap());
        assert!(g.are_friends("jerry", "elaine").unwrap());
        assert!(!g.are_friends("kramer", "elaine").unwrap());
        // friends were auto-registered
        assert!(g.is_registered("elaine").unwrap());
    }

    #[test]
    fn import_twice_does_not_duplicate() {
        let g = graph();
        g.import_friends("jerry", &["kramer"]).unwrap();
        g.import_friends("jerry", &["kramer"]).unwrap();
        assert_eq!(g.friends_of("jerry").unwrap(), vec!["kramer"]);
    }

    #[test]
    fn friends_of_sorted() {
        let g = graph();
        g.import_friends("jerry", &["newman", "kramer", "elaine"])
            .unwrap();
        assert_eq!(
            g.friends_of("jerry").unwrap(),
            vec!["elaine", "kramer", "newman"]
        );
    }

    #[test]
    fn friends_of_unknown_user_errors() {
        let g = graph();
        assert!(matches!(
            g.friends_of("ghost"),
            Err(TravelError::UnknownUser(_))
        ));
    }

    #[test]
    fn require_friends_gatekeeps() {
        let g = graph();
        g.import_friends("jerry", &["kramer"]).unwrap();
        g.register("newman").unwrap();
        g.require_friends("jerry", "kramer").unwrap();
        assert!(matches!(
            g.require_friends("jerry", "newman"),
            Err(TravelError::NotFriends { .. })
        ));
        assert!(matches!(
            g.require_friends("jerry", "ghost"),
            Err(TravelError::UnknownUser(_))
        ));
    }

    #[test]
    fn names_with_quotes_are_escaped() {
        let g = graph();
        g.import_friends("O'Brien", &["D'Arcy"]).unwrap();
        assert!(g.are_friends("O'Brien", "D'Arcy").unwrap());
    }
}
