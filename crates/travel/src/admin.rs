//! The administrative ("debugging") interface of Section 3.2: a SQL
//! command line that accepts regular SQL *and* entangled queries, plus
//! a special mode that renders the internal coordination state (the
//! pending queries and their IR).

use std::sync::Arc;

use parking_lot::Mutex;
use youtopia_core::{
    latency_histogram, Coordinator, CoreError, RecoveryReport, Submission, AUDIT_TABLE,
};
use youtopia_exec::{run_statement, ExecError, ResultSet, StatementOutcome};
use youtopia_sql::{parse_statement, Statement};
use youtopia_storage::Database;

/// The admin console: wraps a database and its coordinator.
pub struct AdminConsole {
    db: Database,
    coordinator: Arc<Coordinator>,
    recovery: Mutex<Option<RecoveryReport>>,
}

impl AdminConsole {
    /// Builds a console over an existing stack.
    pub fn new(db: Database, coordinator: Arc<Coordinator>) -> AdminConsole {
        AdminConsole {
            db,
            coordinator,
            recovery: Mutex::new(None),
        }
    }

    /// Stores the report of a crash recovery (from
    /// [`crate::TravelService::recover`]) so the `recovery` admin
    /// command can render what the replay actually did.
    pub fn set_recovery_report(&self, report: RecoveryReport) {
        *self.recovery.lock() = Some(report);
    }

    /// Executes one command line as `user` and renders the outcome as
    /// text. Handles the full statement surface: DDL/DML/queries via
    /// the execution engine, entangled queries via the coordination
    /// component, `SHOW PENDING` via the registry snapshot — plus the
    /// observability commands `audit`, `latency <tenant>`, `recovery`
    /// and `gauges`, which are intercepted before SQL parsing.
    pub fn execute_as(&self, user: &str, line: &str) -> String {
        if let Some(out) = self.observability_command(line.trim()) {
            return out;
        }
        let stmt = match parse_statement(line) {
            Ok(s) => s,
            Err(e) => return format!("error: {e}"),
        };
        match stmt {
            // EXPLAIN of an entangled query renders the coordination IR
            // and the safety verdicts instead of submitting
            Statement::Explain(inner) if matches!(inner.as_ref(), Statement::Entangled(_)) => {
                self.explain(&inner.to_string())
            }
            Statement::Entangled(_) => match self.coordinator.submit_sql(user, line) {
                Ok(Submission::Answered(n)) => {
                    let answers: Vec<String> =
                        n.answers.iter().map(|(r, t)| format!("{r}{t}")).collect();
                    format!(
                        "answered immediately (group of {}): {}",
                        n.group.len(),
                        answers.join(", ")
                    )
                }
                Ok(Submission::Pending(t)) => {
                    format!("registered as {} (waiting for coordination partners)", t.id)
                }
                Err(CoreError::Unsafe(msg)) => format!("rejected: unsafe query: {msg}"),
                Err(e) => format!("error: {e}"),
            },
            Statement::ShowPending => self.render_pending(),
            other => match run_statement(&self.db, &other) {
                Ok(StatementOutcome::Rows(rs)) => render_result_set(&rs),
                Ok(StatementOutcome::Affected(n)) => format!("{n} row(s) affected"),
                Ok(StatementOutcome::Done) => "ok".to_string(),
                Ok(StatementOutcome::TableNames(names)) => {
                    if names.is_empty() {
                        "(no tables)".to_string()
                    } else {
                        names.join("\n")
                    }
                }
                Ok(StatementOutcome::Plan(plan)) => plan,
                Ok(StatementOutcome::Entangled(_)) | Ok(StatementOutcome::ShowPending) => {
                    unreachable!("handled above")
                }
                Err(ExecError::Storage(e)) => format!("error: {e}"),
                Err(e) => format!("error: {e}"),
            },
        }
    }

    /// Executes as the default `admin` user.
    pub fn execute(&self, line: &str) -> String {
        self.execute_as("admin", line)
    }

    /// Compiles entangled SQL *without* submitting it and renders the
    /// internal representation plus the safety verdicts — the "visual
    /// inspection of ... their representation in the system" of §3.2,
    /// usable before committing to a request.
    pub fn explain(&self, sql: &str) -> String {
        use youtopia_core::{check_safety, compile_sql, SafetyMode};
        match compile_sql(sql) {
            Ok(q) => {
                let strict = match check_safety(&q, SafetyMode::Strict) {
                    Ok(()) => "safe".to_string(),
                    Err(e) => format!("unsafe ({e})"),
                };
                let relaxed = match check_safety(&q, SafetyMode::Relaxed) {
                    Ok(()) => "safe".to_string(),
                    Err(e) => format!("unsafe ({e})"),
                };
                let vars: Vec<String> = q
                    .all_vars()
                    .iter()
                    .map(|v| format!("?{}", v.name()))
                    .collect();
                format!(
                    "ir: {q}\nvariables: {}\nsafety: strict = {strict}; relaxed = {relaxed}",
                    if vars.is_empty() {
                        "(none)".to_string()
                    } else {
                        vars.join(", ")
                    }
                )
            }
            Err(e) => format!("error: {e}"),
        }
    }

    /// The §3.2 "special mode": the set of queries pending to be
    /// entangled and their representation in the system.
    pub fn render_pending(&self) -> String {
        let pending = self.coordinator.pending_snapshot();
        if pending.is_empty() {
            return "(no pending entangled queries)".to_string();
        }
        let mut out = String::new();
        out.push_str(&format!("{} pending entangled quer(ies):\n", pending.len()));
        for p in pending {
            out.push_str(&format!(
                "  {} [owner={}, seq={}]\n    sql: {}\n    ir:  {}\n",
                p.id, p.owner, p.seq, p.sql, p.ir
            ));
        }
        out
    }

    /// Renders the match graph (§3.2: "visualize the state created by
    /// the matching algorithms"): potential partner edges between
    /// pending queries, and dangling constraints explaining waits.
    pub fn render_match_graph(&self) -> String {
        let graph = self.coordinator.match_graph();
        if graph.edges.is_empty() && graph.dangling.is_empty() {
            return "(match graph is empty: no pending entangled queries)".to_string();
        }
        let mut out = String::new();
        if !graph.edges.is_empty() {
            out.push_str("potential satisfactions:\n");
            for e in &graph.edges {
                out.push_str(&format!(
                    "  {} needs {}  <-- could be satisfied by {} head {}\n",
                    e.from, e.constraint, e.to, e.head
                ));
            }
        }
        if !graph.dangling.is_empty() {
            out.push_str("waiting on partners that do not exist yet:\n");
            for (qid, cidx, atom) in &graph.dangling {
                out.push_str(&format!("  {qid} constraint #{cidx}: {atom}\n"));
            }
        }
        out
    }

    /// Renders the coordination statistics.
    pub fn render_stats(&self) -> String {
        let s = self.coordinator.stats();
        format!(
            "submitted={} answered={} pending={} groups={} rejected_unsafe={} \
             match_attempts={} matching_ms={:.3}\n\
             work: candidates={} unify={}/{} groundings={} rows_scanned={} nodes={}",
            s.submitted,
            s.answered,
            self.coordinator.pending_count(),
            s.groups_matched,
            s.rejected_unsafe,
            s.match_attempts,
            s.matching_nanos as f64 / 1e6,
            s.match_work.candidates_considered,
            s.match_work.unify_successes,
            s.match_work.unify_attempts,
            s.match_work.groundings_attempted,
            s.match_work.rows_scanned,
            s.match_work.nodes_expanded,
        )
    }

    /// Dispatches the observability commands; `None` when `line` is a
    /// regular statement for the SQL surface.
    fn observability_command(&self, line: &str) -> Option<String> {
        match line {
            "audit" => Some(self.render_audit()),
            "recovery" => Some(self.render_recovery()),
            "gauges" => Some(self.render_gauges()),
            _ => line
                .strip_prefix("latency ")
                .map(|tenant| self.render_latency(tenant.trim())),
        }
    }

    /// Renders the `sys_audit` coordination ledger (the `audit`
    /// command). The relation is ordinary SQL surface too — this is
    /// just the canonical SELECT, pre-spelled.
    fn render_audit(&self) -> String {
        if !self.db.read().catalog().has_table(AUDIT_TABLE) {
            return "(audit disabled: no sys_audit relation — \
                    enable CoordinatorConfig.audit)"
                .to_string();
        }
        self.execute(
            "SELECT qid, tenant, owner, kind, submitted_at, resolved_at, \
             outcome, latency_micros, shard FROM sys_audit",
        )
    }

    /// Renders one tenant's resolution-latency histogram (the
    /// `latency <tenant>` command): log2 buckets from
    /// `sys_tenant_latency`, bucket `b ≥ 1` covering `[2^(b-1), 2^b)`
    /// microseconds.
    fn render_latency(&self, tenant: &str) -> String {
        if tenant.is_empty() {
            return "usage: latency <tenant>".to_string();
        }
        let buckets = latency_histogram(&self.db, Some(tenant));
        if buckets.is_empty() {
            return format!("(no resolved coordinations for tenant '{tenant}')");
        }
        let mut out = format!("latency histogram for '{tenant}' (micros):\n");
        for b in &buckets {
            let range = match b.bucket {
                0 => "0".to_string(),
                64 => format!("[{}, inf)", 1u64 << 63),
                n => format!("[{}, {})", 1u64 << (n - 1), 1u64 << n),
            };
            out.push_str(&format!("  {:<9} {:>24}  {}\n", b.outcome, range, b.count));
        }
        out
    }

    /// Renders the stored crash-recovery report (the `recovery`
    /// command).
    fn render_recovery(&self) -> String {
        match &*self.recovery.lock() {
            None => "(no recovery this session)".to_string(),
            Some(r) => format!(
                "recovery: events_replayed={} restored_pending={} rematched_groups={} \
                 expired_at_recovery={} triggers_pruned={} sweep_micros={}",
                r.events_replayed,
                r.restored_pending,
                r.rematched_groups,
                r.expired_at_recovery,
                r.triggers_pruned,
                r.sweep_micros,
            ),
        }
    }

    /// Renders the log-surface gauges (the `gauges` command).
    fn render_gauges(&self) -> String {
        let s = self.coordinator.stats();
        format!(
            "gauges: wal_bytes={} wal_bytes_since_checkpoint={} checkpoint_age_millis={} \
             auto_checkpoints={} pending={}",
            s.wal_bytes,
            s.wal_bytes_since_checkpoint,
            s.checkpoint_age_millis,
            s.auto_checkpoints,
            self.coordinator.pending_count(),
        )
    }
}

/// Renders a result set as an aligned ASCII table.
pub fn render_result_set(rs: &ResultSet) -> String {
    let headers = rs.column_names();
    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    let rendered_rows: Vec<Vec<String>> = rs
        .rows
        .iter()
        .map(|row| {
            row.values()
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    let s = v.to_string();
                    if i < widths.len() {
                        widths[i] = widths[i].max(s.len());
                    }
                    s
                })
                .collect()
        })
        .collect();

    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let padded: Vec<String> = cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}", w = *w))
            .collect();
        format!("| {} |", padded.join(" | "))
    };
    let sep: String = format!(
        "+{}+",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+")
    );
    out.push_str(&sep);
    out.push('\n');
    out.push_str(&fmt_row(&headers, &widths));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in &rendered_rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out.push_str(&sep);
    out.push_str(&format!("\n{} row(s)", rs.rows.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::travel::TravelService;

    fn console() -> (TravelService, AdminConsole) {
        let s = TravelService::bootstrap_demo().unwrap();
        let console = AdminConsole::new(s.db().clone(), s.coordinator().clone());
        (s, console)
    }

    #[test]
    fn plain_sql_renders_tables() {
        let (_s, c) = console();
        let out = c.execute("SELECT fno, dest FROM Flights WHERE dest = 'Rome'");
        assert!(out.contains("fno"), "{out}");
        assert!(out.contains("136"), "{out}");
        assert!(out.contains("1 row(s)"), "{out}");
    }

    #[test]
    fn dml_and_ddl_feedback() {
        let (_s, c) = console();
        assert_eq!(c.execute("CREATE TABLE Scratch (a INT)"), "ok");
        assert_eq!(
            c.execute("INSERT INTO Scratch VALUES (1), (2)"),
            "2 row(s) affected"
        );
        assert_eq!(
            c.execute("DELETE FROM Scratch WHERE a = 1"),
            "1 row(s) affected"
        );
        let tables = c.execute("SHOW TABLES");
        assert!(tables.contains("Scratch"));
        assert!(tables.contains("Flights"));
    }

    #[test]
    fn entangled_queries_register_and_show_pending() {
        let (_s, c) = console();
        let out = c.execute_as(
            "kramer",
            "SELECT 'Kramer', fno INTO ANSWER Reservation \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') \
             AND ('Jerry', fno) IN ANSWER Reservation CHOOSE 1",
        );
        assert!(out.contains("registered as q1"), "{out}");
        let pending = c.execute("SHOW PENDING");
        assert!(pending.contains("owner=kramer"), "{pending}");
        assert!(pending.contains("Reservation('Kramer'"), "{pending}");
    }

    #[test]
    fn entangled_completion_reports_the_group() {
        let (_s, c) = console();
        c.execute_as(
            "kramer",
            "SELECT 'Kramer', fno INTO ANSWER Reservation \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') \
             AND ('Jerry', fno) IN ANSWER Reservation CHOOSE 1",
        );
        let out = c.execute_as(
            "jerry",
            "SELECT 'Jerry', fno INTO ANSWER Reservation \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') \
             AND ('Kramer', fno) IN ANSWER Reservation CHOOSE 1",
        );
        assert!(out.contains("answered immediately (group of 2)"), "{out}");
        assert!(out.contains("Reservation('Jerry'"), "{out}");
        assert_eq!(c.execute("SHOW PENDING"), "(no pending entangled queries)");
    }

    #[test]
    fn unsafe_queries_report_the_reason() {
        let (_s, c) = console();
        let out = c.execute("SELECT 'X', v INTO ANSWER R CHOOSE 1");
        assert!(out.contains("unsafe"), "{out}");
        assert!(out.contains("?v"), "{out}");
    }

    #[test]
    fn parse_errors_are_reported_with_position() {
        let (_s, c) = console();
        let out = c.execute("SELEC 1");
        assert!(out.starts_with("error:"), "{out}");
        assert!(out.contains("line 1"), "{out}");
    }

    #[test]
    fn match_graph_renders_edges_and_dangling_constraints() {
        let (_s, c) = console();
        assert!(c.render_match_graph().contains("empty"));
        // Kramer waits for Jerry (who is absent): dangling
        c.execute_as(
            "kramer",
            "SELECT 'Kramer', fno INTO ANSWER Reservation \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') \
             AND ('Jerry', fno) IN ANSWER Reservation CHOOSE 1",
        );
        let g1 = c.render_match_graph();
        assert!(g1.contains("waiting on partners"), "{g1}");
        assert!(g1.contains("Reservation('Jerry'"), "{g1}");

        // Elaine waits for George AND George waits for Elaine — but with
        // contradictory destination domains, so they stay pending while
        // the graph shows the potential edge.
        c.execute_as(
            "elaine",
            "SELECT 'Elaine', fno INTO ANSWER Reservation \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris' AND price > 100000) \
             AND ('George', fno) IN ANSWER Reservation CHOOSE 1",
        );
        c.execute_as(
            "george",
            "SELECT 'George', fno INTO ANSWER Reservation \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest='Rome' AND price > 100000) \
             AND ('Elaine', fno) IN ANSWER Reservation CHOOSE 1",
        );
        let g2 = c.render_match_graph();
        assert!(g2.contains("potential satisfactions"), "{g2}");
        assert!(g2.contains("could be satisfied by"), "{g2}");
        assert!(g2.contains("Reservation('George'"), "{g2}");
    }

    #[test]
    fn stats_render() {
        let (_s, c) = console();
        let out = c.render_stats();
        assert!(out.contains("submitted=0"), "{out}");
        c.execute_as(
            "a",
            "SELECT 'A', fno INTO ANSWER R \
             WHERE fno IN (SELECT fno FROM Flights) CHOOSE 1",
        );
        let out2 = c.render_stats();
        assert!(out2.contains("submitted=1"), "{out2}");
        assert!(out2.contains("groups=1"), "{out2}");
    }

    #[test]
    fn explain_statement_through_the_console() {
        let (_s, c) = console();
        let out = c.execute("EXPLAIN SELECT fno FROM Flights WHERE fno = 122");
        assert!(
            out.contains("IndexProbe Flights via Flights_pk key (122)"),
            "{out}"
        );
        assert!(out.contains("Filter fno = 122"), "{out}");

        let out2 = c.execute(
            "EXPLAIN SELECT 'K', fno INTO ANSWER R \
             WHERE fno IN (SELECT fno FROM Flights) \
             AND ('J', fno) IN ANSWER R CHOOSE 1",
        );
        assert!(out2.contains("ir:"), "{out2}");
        assert!(out2.contains("safety:"), "{out2}");
        // nothing was registered
        assert_eq!(c.execute("SHOW PENDING"), "(no pending entangled queries)");
    }

    #[test]
    fn explain_reports_ir_and_safety() {
        let (_s, c) = console();
        let out = c.explain(
            "SELECT 'K', fno INTO ANSWER R \
             WHERE fno IN (SELECT fno FROM Flights) \
             AND ('J', fno) IN ANSWER R CHOOSE 1",
        );
        assert!(out.contains("R('K', ?fno)"), "{out}");
        assert!(out.contains("variables: ?fno"), "{out}");
        assert!(out.contains("strict = safe"), "{out}");
        assert!(out.contains("relaxed = safe"), "{out}");

        // relaxed-only query
        let out2 = c.explain("SELECT 'K', fno INTO ANSWER R WHERE ('J', fno) IN ANSWER R CHOOSE 1");
        assert!(out2.contains("strict = unsafe"), "{out2}");
        assert!(out2.contains("relaxed = safe"), "{out2}");

        // broken query
        let out3 = c.explain("SELECT 1");
        assert!(out3.starts_with("error:"), "{out3}");
    }

    fn pair_sql(me: &str, friend: &str) -> String {
        format!(
            "SELECT '{me}', fno INTO ANSWER Reservation \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') \
             AND ('{friend}', fno) IN ANSWER Reservation CHOOSE 1"
        )
    }

    /// A console whose coordinator writes the `sys_audit` /
    /// `sys_tenant_latency` relations.
    fn audited_console() -> (TravelService, AdminConsole) {
        use youtopia_core::{AuditConfig, CoordinatorConfig};
        let s = TravelService::bootstrap_demo().unwrap();
        let config = CoordinatorConfig {
            audit: AuditConfig::enabled(),
            ..CoordinatorConfig::default()
        };
        let co = Arc::new(Coordinator::with_config(s.db().clone(), config));
        let console = AdminConsole::new(s.db().clone(), co);
        (s, console)
    }

    #[test]
    fn audit_command_reports_disabled_by_default() {
        let (_s, c) = console();
        let out = c.execute("audit");
        assert!(out.contains("audit disabled"), "{out}");
    }

    #[test]
    fn audit_command_and_sql_surface_render_the_ledger() {
        let (_s, c) = audited_console();
        c.execute_as("kramer", &pair_sql("Kramer", "Jerry"));
        let done = c.execute_as("jerry", &pair_sql("Jerry", "Kramer"));
        assert!(done.contains("answered immediately"), "{done}");

        let audit = c.execute("audit");
        assert!(audit.contains("submit"), "{audit}");
        assert!(audit.contains("answered"), "{audit}");
        assert!(audit.contains("kramer"), "{audit}");

        // zero new query machinery: the ledger is ordinary SQL surface
        let counts = c.execute(
            "SELECT tenant, outcome, COUNT(*) AS n FROM sys_audit \
             GROUP BY tenant, outcome",
        );
        assert!(counts.contains("kramer"), "{counts}");
        assert!(counts.contains("jerry"), "{counts}");
        assert!(counts.contains("pending"), "{counts}");
        assert!(counts.contains("answered"), "{counts}");
        assert!(counts.contains("4 row(s)"), "{counts}");
    }

    #[test]
    fn latency_command_renders_the_histogram() {
        let (_s, c) = audited_console();
        c.execute_as("kramer", &pair_sql("Kramer", "Jerry"));
        c.execute_as("jerry", &pair_sql("Jerry", "Kramer"));
        let out = c.execute("latency kramer");
        assert!(out.contains("latency histogram for 'kramer'"), "{out}");
        assert!(out.contains("answered"), "{out}");
        let empty = c.execute("latency nobody");
        assert!(empty.contains("no resolved coordinations"), "{empty}");
    }

    #[test]
    fn recovery_command_renders_the_stored_report() {
        use youtopia_core::CoordinatorConfig;
        use youtopia_storage::Wal;

        let (_s, c) = console();
        assert_eq!(c.execute("recovery"), "(no recovery this session)");

        // crash a WAL-backed site mid-coordination and recover it
        // through the middle tier
        let db = Database::with_wal(Wal::in_memory());
        crate::model::install_schema(&db).unwrap();
        crate::model::seed_demo_data(&db).unwrap();
        let site = TravelService::over(db.clone()).unwrap();
        site.coordinator()
            .submit_sql("kramer", &pair_sql("Kramer", "Jerry"))
            .unwrap();
        let bytes = db.wal_bytes().unwrap();

        let (recovered, report) =
            TravelService::recover(Wal::from_bytes(bytes), CoordinatorConfig::default()).unwrap();
        assert_eq!(report.restored_pending, 1);
        let console = AdminConsole::new(recovered.db().clone(), recovered.coordinator().clone());
        console.set_recovery_report(report);
        let out = console.execute("recovery");
        assert!(out.contains("restored_pending=1"), "{out}");
        assert!(out.contains("events_replayed="), "{out}");
        assert!(out.contains("sweep_micros="), "{out}");
        assert!(console.execute("SHOW PENDING").contains("owner=kramer"));
    }

    #[test]
    fn gauges_command_renders_log_surface_gauges() {
        let (_s, c) = console();
        let out = c.execute("gauges");
        assert!(out.contains("wal_bytes="), "{out}");
        assert!(out.contains("checkpoint_age_millis="), "{out}");
        assert!(out.contains("pending=0"), "{out}");
    }

    #[test]
    fn result_table_alignment() {
        let (_s, c) = console();
        let out = c.execute("SELECT fno, dest, price FROM Flights ORDER BY fno LIMIT 2");
        let lines: Vec<&str> = out.lines().collect();
        // header + separators + 2 data rows + count
        assert!(lines.len() >= 6);
        let widths: std::collections::HashSet<usize> = lines
            .iter()
            .filter(|l| l.starts_with('|'))
            .map(|l| l.len())
            .collect();
        assert_eq!(widths.len(), 1, "all table lines share one width: {out}");
    }
}
