//! The travel middle tier: the application logic of the paper's demo
//! web site.
//!
//! Every coordination feature of Section 3.1 is implemented by
//! *generating entangled SQL* and submitting it through the full
//! pipeline (parse → compile → safety → register → match → apply), so
//! this service exercises the system exactly the way the demo's
//! three-tier application does. Side effects (seat and room inventory)
//! run inside the match's transaction via the coordinator's apply hook.

use std::sync::Arc;

use parking_lot::Mutex;

use youtopia_core::{
    Coordinator, CoordinatorConfig, GroupMatch, MatchNotification, QueryId, RecoveryReport,
    Submission, Ticket,
};
use youtopia_exec::{run_sql, StatementOutcome};
use youtopia_storage::{Database, StorageError, Tuple, Value, Wal};

use crate::error::{TravelError, TravelResult};
use crate::model::{self, sql_str, Flight, Hotel};
use crate::notify::Notifier;
use crate::social::SocialGraph;

/// Outcome of a booking / coordination request.
#[derive(Debug)]
pub enum BookingOutcome {
    /// The request was satisfied immediately; these are the caller's
    /// answers, one `(answer relation, tuple)` per head.
    Confirmed(Vec<(String, Tuple)>),
    /// The request waits for coordination partners; the id can be used
    /// to cancel.
    Waiting(QueryId),
}

impl BookingOutcome {
    /// True when confirmed.
    pub fn is_confirmed(&self) -> bool {
        matches!(self, BookingOutcome::Confirmed(_))
    }
}

/// Optional constraints for flight requests (the demo UI's date and
/// price fields).
#[derive(Debug, Clone, Copy, Default)]
pub struct FlightPrefs {
    /// Required travel day.
    pub day: Option<i64>,
    /// Maximum acceptable price.
    pub max_price: Option<f64>,
}

/// A user's account view (the demo's "pending or confirmed
/// reservations" page).
#[derive(Debug, Clone, PartialEq)]
pub struct AccountView {
    /// Confirmed flight reservations (flight numbers).
    pub flights: Vec<i64>,
    /// Confirmed hotel reservations (hotel ids).
    pub hotels: Vec<i64>,
    /// Ids of this user's still-pending coordination requests.
    pub pending: Vec<QueryId>,
}

/// The travel web site's middle tier.
pub struct TravelService {
    db: Database,
    coordinator: Arc<Coordinator>,
    social: SocialGraph,
    notifier: Arc<Notifier>,
    /// Tickets of pending submissions, polled by `deliver_ready`.
    tickets: Mutex<Vec<(String, Ticket)>>,
}

impl TravelService {
    /// Builds the full demo stack: fresh database, schema, seed data,
    /// coordinator with inventory hook.
    pub fn bootstrap_demo() -> TravelResult<TravelService> {
        let db = Database::new();
        model::install_schema(&db)?;
        model::seed_demo_data(&db)?;
        Self::over(db)
    }

    /// Wraps an existing database that already has the travel schema.
    pub fn over(db: Database) -> TravelResult<TravelService> {
        let coordinator = Arc::new(Coordinator::new(db.clone()));
        coordinator.set_apply_hook(Box::new(inventory_hook));
        Ok(TravelService {
            social: SocialGraph::new(db.clone()),
            db,
            coordinator,
            notifier: Arc::new(Notifier::new()),
            tickets: Mutex::new(Vec::new()),
        })
    }

    /// Rebuilds the site from a durable WAL after a crash: database and
    /// coordination state replay, the inventory hook is installed before
    /// the recovery matching sweep, and the [`RecoveryReport`] — which
    /// the middle tier used to have no way to surface — is returned to
    /// the caller (hand it to
    /// [`crate::AdminConsole::set_recovery_report`] so the admin
    /// `recovery` command can render it).
    pub fn recover(
        wal: Wal,
        config: CoordinatorConfig,
    ) -> TravelResult<(TravelService, RecoveryReport)> {
        let (coordinator, report) =
            Coordinator::recover_with_hook(wal, config, Some(Box::new(inventory_hook)))?;
        let db = coordinator.db().clone();
        let service = TravelService {
            social: SocialGraph::new(db.clone()),
            db,
            coordinator: Arc::new(coordinator),
            notifier: Arc::new(Notifier::new()),
            tickets: Mutex::new(Vec::new()),
        };
        Ok((service, report))
    }

    /// The social graph (friend import / listing).
    pub fn social(&self) -> &SocialGraph {
        &self.social
    }

    /// The notifier (users' mailboxes).
    pub fn notifier(&self) -> &Notifier {
        &self.notifier
    }

    /// The coordination component (for the admin interface).
    pub fn coordinator(&self) -> &Arc<Coordinator> {
        &self.coordinator
    }

    /// The underlying database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    // ----------------------------------------------------------------- //
    // Search (the non-coordinating features of the site)
    // ----------------------------------------------------------------- //

    /// Flights to `dest`, optionally filtered, sorted by price.
    pub fn search_flights(&self, dest: &str, prefs: FlightPrefs) -> TravelResult<Vec<Flight>> {
        let mut sql = format!("SELECT * FROM Flights WHERE dest = {}", sql_str(dest));
        if let Some(day) = prefs.day {
            sql.push_str(&format!(" AND day = {day}"));
        }
        if let Some(p) = prefs.max_price {
            sql.push_str(&format!(" AND price <= {p}"));
        }
        sql.push_str(" ORDER BY price");
        let StatementOutcome::Rows(rs) = run_sql(&self.db, &sql)? else {
            unreachable!()
        };
        rs.rows.iter().map(Flight::from_tuple).collect()
    }

    /// Hotels in `city`, sorted by price.
    pub fn search_hotels(&self, city: &str) -> TravelResult<Vec<Hotel>> {
        let sql = format!(
            "SELECT * FROM Hotels WHERE city = {} ORDER BY price",
            sql_str(city)
        );
        let StatementOutcome::Rows(rs) = run_sql(&self.db, &sql)? else {
            unreachable!()
        };
        rs.rows.iter().map(Hotel::from_tuple).collect()
    }

    /// The "browse flights and see your friends' bookings" view
    /// (the demo's Figure 4): which friends already hold a reservation
    /// on which flight.
    pub fn browse_friend_bookings(&self, user: &str) -> TravelResult<Vec<(String, i64)>> {
        let sql = format!(
            "SELECT r.traveler, r.fno FROM Reservation r \
             JOIN Friends f ON f.b = r.traveler \
             WHERE f.a = {} ORDER BY r.fno, r.traveler",
            sql_str(user)
        );
        let StatementOutcome::Rows(rs) = run_sql(&self.db, &sql)? else {
            unreachable!()
        };
        Ok(rs
            .rows
            .iter()
            .map(|r| {
                (
                    r.values()[0].as_str().unwrap_or_default().to_string(),
                    r.values()[1].as_int().unwrap_or_default(),
                )
            })
            .collect())
    }

    // ----------------------------------------------------------------- //
    // Bookings
    // ----------------------------------------------------------------- //

    /// Books a specific flight directly (no coordination). Internally a
    /// *self-contained* entangled query, so inventory accounting and the
    /// answer relation stay uniform.
    pub fn book_direct(&self, user: &str, fno: i64) -> TravelResult<Vec<(String, Tuple)>> {
        model::flight_by_fno(&self.db, fno)?; // NoSuchItem if absent
        let sql = format!(
            "SELECT {u}, fno INTO ANSWER Reservation \
             WHERE fno IN (SELECT fno FROM Flights WHERE fno = {fno} AND seats > 0) CHOOSE 1",
            u = sql_str(user)
        );
        match self.submit(user, &sql)? {
            BookingOutcome::Confirmed(answers) => Ok(answers),
            BookingOutcome::Waiting(qid) => {
                // a direct booking that cannot ground means no seats;
                // withdraw it rather than leaving it parked
                self.coordinator.cancel(qid)?;
                Err(TravelError::SoldOut(format!("flight {fno}")))
            }
        }
    }

    /// "Book a flight with a friend" (§3.1, first scenario): same
    /// flight to `dest`, subject to `prefs`.
    pub fn coordinate_flight(
        &self,
        user: &str,
        friend: &str,
        dest: &str,
        prefs: FlightPrefs,
    ) -> TravelResult<BookingOutcome> {
        self.social.require_friends(user, friend)?;
        let sql = format!(
            "SELECT {u}, fno INTO ANSWER Reservation \
             WHERE fno IN ({flights}) \
             AND ({f}, fno) IN ANSWER Reservation CHOOSE 1",
            u = sql_str(user),
            f = sql_str(friend),
            flights = flight_domain(dest, prefs, 2),
        );
        self.submit(user, &sql)
    }

    /// The "adjacent seat" variant of scenario 1 (§3.1: "He can now
    /// specify that he wants to fly in an adjacent seat to Kramer, or
    /// just that he wants to travel on the same flight"). Both queries
    /// range over the free seat map; the adjacency condition is a
    /// residual filter relating *my* seat variable to the *partner's*
    /// seat variable, which flows in through the answer constraint.
    pub fn coordinate_adjacent_seats(
        &self,
        user: &str,
        friend: &str,
        dest: &str,
    ) -> TravelResult<BookingOutcome> {
        self.social.require_friends(user, friend)?;
        let sql = format!(
            "SELECT {u}, fno, seat INTO ANSWER SeatReservation \
             WHERE (fno, seat) IN (SELECT f.fno, s.seatno FROM Flights f \
                 JOIN Seats s ON f.fno = s.fno \
                 WHERE f.dest = {dest_lit} AND s.taken = FALSE) \
             AND ({f}, fno, fseat) IN ANSWER SeatReservation \
             AND (seat = fseat + 1 OR fseat = seat + 1) CHOOSE 1",
            u = sql_str(user),
            f = sql_str(friend),
            dest_lit = sql_str(dest),
        );
        self.submit(user, &sql)
    }

    /// "Book a flight and a hotel with a friend" (§3.1): one entangled
    /// query with constraints on both answer relations — all or
    /// nothing.
    pub fn coordinate_flight_and_hotel(
        &self,
        user: &str,
        friend: &str,
        dest: &str,
        prefs: FlightPrefs,
    ) -> TravelResult<BookingOutcome> {
        self.social.require_friends(user, friend)?;
        let sql = format!(
            "SELECT {u}, fno INTO ANSWER Reservation, {u}, hid INTO ANSWER HotelReservation \
             WHERE fno IN ({flights}) \
             AND hid IN (SELECT hid FROM Hotels WHERE city = {dest_lit} AND rooms >= 2) \
             AND ({f}, fno) IN ANSWER Reservation \
             AND ({f}, hid) IN ANSWER HotelReservation CHOOSE 1",
            u = sql_str(user),
            f = sql_str(friend),
            dest_lit = sql_str(dest),
            flights = flight_domain(dest, prefs, 2),
        );
        self.submit(user, &sql)
    }

    /// Group flight booking (§3.1): `user` plus `others` all on one
    /// flight. Every member must issue this request (with the rest of
    /// the group as `others`) for the group to close.
    pub fn coordinate_group_flight(
        &self,
        user: &str,
        others: &[&str],
        dest: &str,
        prefs: FlightPrefs,
    ) -> TravelResult<BookingOutcome> {
        for other in others {
            self.social.require_friends(user, other)?;
        }
        let group_size = others.len() + 1;
        let mut sql = format!(
            "SELECT {u}, fno INTO ANSWER Reservation WHERE fno IN ({flights})",
            u = sql_str(user),
            flights = flight_domain(dest, prefs, group_size as i64),
        );
        for other in others {
            sql.push_str(&format!(
                " AND ({o}, fno) IN ANSWER Reservation",
                o = sql_str(other)
            ));
        }
        sql.push_str(" CHOOSE 1");
        self.submit(user, &sql)
    }

    /// Group flight + hotel booking (§3.1).
    pub fn coordinate_group_flight_and_hotel(
        &self,
        user: &str,
        others: &[&str],
        dest: &str,
        prefs: FlightPrefs,
    ) -> TravelResult<BookingOutcome> {
        for other in others {
            self.social.require_friends(user, other)?;
        }
        let group_size = (others.len() + 1) as i64;
        let mut sql = format!(
            "SELECT {u}, fno INTO ANSWER Reservation, {u}, hid INTO ANSWER HotelReservation \
             WHERE fno IN ({flights}) \
             AND hid IN (SELECT hid FROM Hotels WHERE city = {dest_lit} AND rooms >= {group_size})",
            u = sql_str(user),
            dest_lit = sql_str(dest),
            flights = flight_domain(dest, prefs, group_size),
        );
        for other in others {
            sql.push_str(&format!(
                " AND ({o}, fno) IN ANSWER Reservation AND ({o}, hid) IN ANSWER HotelReservation",
                o = sql_str(other)
            ));
        }
        sql.push_str(" CHOOSE 1");
        self.submit(user, &sql)
    }

    /// Ad-hoc coordination (§3.1 last scenario): the caller provides
    /// the entangled SQL directly (the demo's SQL command line does the
    /// same).
    pub fn coordinate_custom(&self, user: &str, sql: &str) -> TravelResult<BookingOutcome> {
        self.submit(user, sql)
    }

    /// Cancels a pending request.
    pub fn cancel(&self, user: &str, qid: QueryId) -> TravelResult<()> {
        let _ = user;
        self.coordinator.cancel(qid)?;
        self.tickets.lock().retain(|(_, t)| t.id != qid);
        Ok(())
    }

    /// The user's account view: confirmed reservations plus pending
    /// coordination requests.
    pub fn account_view(&self, user: &str) -> TravelResult<AccountView> {
        let flights = self.reserved_ids(user, "Reservation")?;
        let hotels = self.reserved_ids(user, "HotelReservation")?;
        let pending = self
            .coordinator
            .pending_snapshot()
            .into_iter()
            .filter(|p| p.owner == user)
            .map(|p| p.id)
            .collect();
        Ok(AccountView {
            flights,
            hotels,
            pending,
        })
    }

    /// Confirmed reservation ids for `user` in one answer relation.
    /// Reads by position (column 0 = traveler, column 1 = id) so it
    /// works whether the table was pre-created by the schema or
    /// auto-created by the coordinator.
    fn reserved_ids(&self, user: &str, relation: &str) -> TravelResult<Vec<i64>> {
        let read = self.db.read();
        let table = read.table(relation)?;
        let mut ids: Vec<i64> = table
            .scan()
            .filter(|(_, t)| t.values()[0].as_str() == Some(user))
            .filter_map(|(_, t)| t.values()[1].as_int())
            .collect();
        ids.sort();
        Ok(ids)
    }

    /// Submits entangled SQL, routes notifications, returns the
    /// outcome.
    fn submit(&self, user: &str, sql: &str) -> TravelResult<BookingOutcome> {
        let outcome = match self.coordinator.submit_sql(user, sql)? {
            Submission::Answered(n) => {
                self.notifier.send(user, render_confirmation(&n));
                BookingOutcome::Confirmed(n.answers)
            }
            Submission::Pending(ticket) => {
                let qid = ticket.id;
                self.tickets.lock().push((user.to_string(), ticket));
                BookingOutcome::Waiting(qid)
            }
        };
        // Partners whose tickets just fired get their "Facebook
        // message" now.
        self.deliver_ready();
        Ok(outcome)
    }

    /// Drains completed tickets into user mailboxes. Called after every
    /// submission; callers may also invoke it manually (e.g. after
    /// `retry_all`).
    pub fn deliver_ready(&self) {
        let mut tickets = self.tickets.lock();
        let mut remaining = Vec::with_capacity(tickets.len());
        for (user, ticket) in tickets.drain(..) {
            match ticket.receiver.try_recv() {
                Ok(n) => self.notifier.send(&user, render_confirmation(&n)),
                Err(_) => remaining.push((user, ticket)),
            }
        }
        *tickets = remaining;
    }

    /// Re-runs matching for all pending queries (after inventory
    /// changes) and delivers any resulting notifications.
    pub fn retry_pending(&self) -> TravelResult<usize> {
        let notifications = self.coordinator.retry_all()?;
        let count = notifications.len();
        self.deliver_ready();
        Ok(count)
    }
}

/// The flight-domain subquery shared by all flight requests: seats must
/// cover the whole group.
fn flight_domain(dest: &str, prefs: FlightPrefs, group_size: i64) -> String {
    let mut sql = format!(
        "SELECT fno FROM Flights WHERE dest = {} AND seats >= {group_size}",
        sql_str(dest)
    );
    if let Some(day) = prefs.day {
        sql.push_str(&format!(" AND day = {day}"));
    }
    if let Some(p) = prefs.max_price {
        sql.push_str(&format!(" AND price <= {p}"));
    }
    sql
}

fn render_confirmation(n: &MatchNotification) -> String {
    let parts: Vec<String> = n
        .answers
        .iter()
        .map(|(rel, tuple)| format!("{rel}{tuple}"))
        .collect();
    format!(
        "Coordination complete ({} queries answered jointly): {}",
        n.group.len(),
        parts.join(", ")
    )
}

/// The inventory side effects, applied in the same transaction as the
/// match's answer-relation inserts: one seat per flight reservation,
/// one room per hotel reservation. Fails (rolling the match back) when
/// capacity ran out between matching and application.
fn inventory_hook(
    txn: &mut youtopia_storage::Transaction,
    m: &GroupMatch,
) -> Result<(), StorageError> {
    for (relation, tuple) in m.all_answers() {
        if relation.eq_ignore_ascii_case("Reservation") {
            decrement(txn, "Flights", 0, 5, &tuple.values()[1], "seats")?;
        } else if relation.eq_ignore_ascii_case("HotelReservation") {
            decrement(txn, "Hotels", 0, 4, &tuple.values()[1], "rooms")?;
        } else if relation.eq_ignore_ascii_case("SeatReservation") {
            take_seat(txn, &tuple.values()[1], &tuple.values()[2])?;
            // a numbered seat also consumes flight capacity
            decrement(txn, "Flights", 0, 5, &tuple.values()[1], "seats")?;
        }
    }
    Ok(())
}

/// Marks the seat `(fno, seatno)` taken; fails when it already is
/// (rolling the whole match back).
fn take_seat(
    txn: &mut youtopia_storage::Transaction,
    fno: &Value,
    seatno: &Value,
) -> Result<(), StorageError> {
    let (rid, mut values) = {
        let seats = txn.table("Seats")?;
        let rid = seats
            .rows_where_eq(0, fno)
            .into_iter()
            .find(|rid| {
                seats
                    .get(*rid)
                    .is_some_and(|row| row.values()[1].sql_eq(seatno))
            })
            .ok_or_else(|| {
                StorageError::Internal(format!("seat {seatno} on flight {fno} vanished"))
            })?;
        (rid, seats.get(rid).expect("row exists").values().to_vec())
    };
    if values[2] == Value::Bool(true) {
        return Err(StorageError::Internal(format!(
            "seat {seatno} on flight {fno} is already taken"
        )));
    }
    values[2] = Value::Bool(true);
    txn.update("Seats", rid, Tuple::new(values))?;
    Ok(())
}

/// Decrements `table`'s capacity column (`cap_pos`) for the row whose
/// key column (`key_pos`) equals `key`.
fn decrement(
    txn: &mut youtopia_storage::Transaction,
    table: &str,
    key_pos: usize,
    cap_pos: usize,
    key: &Value,
    what: &str,
) -> Result<(), StorageError> {
    let (rid, mut values) = {
        let t = txn.table(table)?;
        let rid = *t
            .rows_where_eq(key_pos, key)
            .first()
            .ok_or_else(|| StorageError::Internal(format!("{table} row {key} vanished")))?;
        (rid, t.get(rid).expect("row exists").values().to_vec())
    };
    let current = values[cap_pos]
        .as_int()
        .ok_or_else(|| StorageError::Internal(format!("{what} column is not an integer")))?;
    if current <= 0 {
        return Err(StorageError::Internal(format!(
            "no {what} left on {table} {key}"
        )));
    }
    values[cap_pos] = Value::Int(current - 1);
    txn.update(table, rid, Tuple::new(values))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service() -> TravelService {
        let s = TravelService::bootstrap_demo().unwrap();
        s.social()
            .import_friends("jerry", &["kramer", "elaine", "george"])
            .unwrap();
        s.social()
            .import_friends("kramer", &["elaine", "george"])
            .unwrap();
        s.social().import_friends("elaine", &["george"]).unwrap();
        s
    }

    #[test]
    fn search_flights_sorted_by_price() {
        let s = service();
        let flights = s.search_flights("Paris", FlightPrefs::default()).unwrap();
        assert_eq!(flights.len(), 4);
        assert!(flights.windows(2).all(|w| w[0].price <= w[1].price));
        let cheap = s
            .search_flights(
                "Paris",
                FlightPrefs {
                    max_price: Some(500.0),
                    day: None,
                },
            )
            .unwrap();
        assert_eq!(cheap.len(), 3);
        let day2 = s
            .search_flights(
                "Paris",
                FlightPrefs {
                    day: Some(2),
                    max_price: None,
                },
            )
            .unwrap();
        assert_eq!(day2.len(), 1);
        assert_eq!(day2[0].fno, 134);
    }

    #[test]
    fn direct_booking_decrements_seats_and_notifies_answer_relation() {
        let s = service();
        let answers = s.book_direct("jerry", 122).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].0, "Reservation");
        assert_eq!(model::flight_by_fno(s.db(), 122).unwrap().seats, 9);
        assert_eq!(s.account_view("jerry").unwrap().flights, vec![122]);
    }

    #[test]
    fn direct_booking_sells_out() {
        let s = service();
        // flight 134 has 4 seats
        for i in 0..4 {
            s.book_direct(&format!("u{i}"), 134).unwrap();
        }
        assert!(matches!(
            s.book_direct("late", 134),
            Err(TravelError::SoldOut(_))
        ));
        assert!(matches!(
            s.book_direct("x", 999),
            Err(TravelError::NoSuchItem(_))
        ));
    }

    #[test]
    fn pair_coordination_books_same_flight() {
        let s = service();
        let w = s
            .coordinate_flight("jerry", "kramer", "Paris", FlightPrefs::default())
            .unwrap();
        assert!(matches!(w, BookingOutcome::Waiting(_)));
        // jerry shows as pending in his account
        assert_eq!(s.account_view("jerry").unwrap().pending.len(), 1);

        let seats_before: std::collections::HashMap<i64, i64> = s
            .search_flights("Paris", FlightPrefs::default())
            .unwrap()
            .into_iter()
            .map(|f| (f.fno, f.seats))
            .collect();

        let c = s
            .coordinate_flight("kramer", "jerry", "Paris", FlightPrefs::default())
            .unwrap();
        let BookingOutcome::Confirmed(answers) = c else {
            panic!("kramer completes")
        };
        let fno = answers[0].1.values()[1].as_int().unwrap();

        let jerry_view = s.account_view("jerry").unwrap();
        assert_eq!(jerry_view.flights, vec![fno]);
        assert!(jerry_view.pending.is_empty());
        // two seats gone from that flight
        assert_eq!(
            model::flight_by_fno(s.db(), fno).unwrap().seats,
            seats_before[&fno] - 2
        );
        // both users got their "Facebook message"
        assert_eq!(s.notifier().inbox("jerry").len(), 1);
        assert_eq!(s.notifier().inbox("kramer").len(), 1);
    }

    #[test]
    fn coordination_requires_friendship() {
        let s = service();
        s.social().register("newman").unwrap();
        assert!(matches!(
            s.coordinate_flight("jerry", "newman", "Paris", FlightPrefs::default()),
            Err(TravelError::NotFriends { .. })
        ));
    }

    #[test]
    fn price_preferences_constrain_the_choice() {
        let s = service();
        let prefs = FlightPrefs {
            max_price: Some(460.0),
            day: None,
        };
        s.coordinate_flight("jerry", "kramer", "Paris", prefs)
            .unwrap();
        let c = s
            .coordinate_flight("kramer", "jerry", "Paris", prefs)
            .unwrap();
        let BookingOutcome::Confirmed(answers) = c else {
            panic!()
        };
        // only flight 122 (450.0) qualifies
        assert_eq!(answers[0].1.values()[1], Value::Int(122));
    }

    #[test]
    fn incompatible_preferences_never_match() {
        let s = service();
        s.coordinate_flight(
            "jerry",
            "kramer",
            "Paris",
            FlightPrefs {
                day: Some(1),
                max_price: None,
            },
        )
        .unwrap();
        let out = s
            .coordinate_flight(
                "kramer",
                "jerry",
                "Paris",
                FlightPrefs {
                    day: Some(2),
                    max_price: None,
                },
            )
            .unwrap();
        assert!(matches!(out, BookingOutcome::Waiting(_)));
    }

    #[test]
    fn flight_and_hotel_all_or_nothing() {
        let s = service();
        s.coordinate_flight_and_hotel("jerry", "kramer", "Paris", FlightPrefs::default())
            .unwrap();
        let c = s
            .coordinate_flight_and_hotel("kramer", "jerry", "Paris", FlightPrefs::default())
            .unwrap();
        let BookingOutcome::Confirmed(answers) = c else {
            panic!()
        };
        assert_eq!(answers.len(), 2);
        let jerry = s.account_view("jerry").unwrap();
        let kramer = s.account_view("kramer").unwrap();
        assert_eq!(jerry.flights, kramer.flights);
        assert_eq!(jerry.hotels, kramer.hotels);
        // a room was taken twice
        let hid = jerry.hotels[0];
        let hotel = model::hotel_by_hid(s.db(), hid).unwrap();
        assert_eq!(hotel.city, "Paris");
    }

    #[test]
    fn group_of_four_books_one_flight() {
        let s = service();
        let everyone = ["jerry", "kramer", "elaine", "george"];
        let mut last = None;
        for (i, user) in everyone.iter().enumerate() {
            let others: Vec<&str> = everyone.iter().filter(|u| *u != user).copied().collect();
            let out = s
                .coordinate_group_flight(user, &others, "Paris", FlightPrefs::default())
                .unwrap();
            if i < everyone.len() - 1 {
                assert!(
                    matches!(out, BookingOutcome::Waiting(_)),
                    "member {i} waits"
                );
            } else {
                last = Some(out);
            }
        }
        let BookingOutcome::Confirmed(_) = last.unwrap() else {
            panic!("last member completes the group")
        };
        let fnos: std::collections::HashSet<i64> = everyone
            .iter()
            .map(|u| s.account_view(u).unwrap().flights[0])
            .collect();
        assert_eq!(fnos.len(), 1, "all four on the same flight");
        let fno = *fnos.iter().next().unwrap();
        // 4 seats consumed; flight 134 (4 seats) would be exactly empty
        let flight = model::flight_by_fno(s.db(), fno).unwrap();
        assert!(flight.seats >= 0);
        // everyone was notified
        for u in everyone {
            assert_eq!(s.notifier().inbox(u).len(), 1);
        }
    }

    #[test]
    fn group_flight_and_hotel() {
        let s = service();
        let trio = ["jerry", "kramer", "elaine"];
        for user in &trio {
            let others: Vec<&str> = trio.iter().filter(|u| *u != user).copied().collect();
            s.coordinate_group_flight_and_hotel(user, &others, "Paris", FlightPrefs::default())
                .unwrap();
        }
        let hotels: std::collections::HashSet<i64> = trio
            .iter()
            .map(|u| s.account_view(u).unwrap().hotels[0])
            .collect();
        assert_eq!(hotels.len(), 1, "all three in the same hotel");
    }

    #[test]
    fn adhoc_asymmetric_coordination() {
        // Jerry–Kramer coordinate on flights; Kramer–Elaine on flight
        // AND hotel (the paper's ad-hoc example).
        let s = service();
        let jerry = "SELECT 'jerry', fno INTO ANSWER Reservation \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris' AND seats >= 3) \
             AND ('kramer', fno) IN ANSWER Reservation CHOOSE 1";
        let kramer = "SELECT 'kramer', fno INTO ANSWER Reservation, \
             'kramer', hid INTO ANSWER HotelReservation \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris' AND seats >= 3) \
             AND hid IN (SELECT hid FROM Hotels WHERE city = 'Paris' AND rooms >= 2) \
             AND ('jerry', fno) IN ANSWER Reservation \
             AND ('elaine', hid) IN ANSWER HotelReservation CHOOSE 1";
        let elaine = "SELECT 'elaine', fno INTO ANSWER Reservation, \
             'elaine', hid INTO ANSWER HotelReservation \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris' AND seats >= 3) \
             AND hid IN (SELECT hid FROM Hotels WHERE city = 'Paris' AND rooms >= 2) \
             AND ('kramer', fno) IN ANSWER Reservation \
             AND ('kramer', hid) IN ANSWER HotelReservation CHOOSE 1";
        assert!(!s.coordinate_custom("jerry", jerry).unwrap().is_confirmed());
        assert!(!s
            .coordinate_custom("kramer", kramer)
            .unwrap()
            .is_confirmed());
        assert!(s
            .coordinate_custom("elaine", elaine)
            .unwrap()
            .is_confirmed());

        let j = s.account_view("jerry").unwrap();
        let k = s.account_view("kramer").unwrap();
        let e = s.account_view("elaine").unwrap();
        assert_eq!(j.flights, k.flights, "jerry & kramer share the flight");
        assert_eq!(k.hotels, e.hotels, "kramer & elaine share the hotel");
        assert!(j.hotels.is_empty(), "jerry did not book a hotel");
    }

    #[test]
    fn browse_then_join_flow() {
        let s = service();
        // Kramer books directly (Figure 4 path: Jerry can see it).
        s.book_direct("kramer", 123).unwrap();
        let seen = s.browse_friend_bookings("jerry").unwrap();
        assert_eq!(seen, vec![("kramer".to_string(), 123)]);
        // Jerry decides and books the same flight directly.
        s.book_direct("jerry", 123).unwrap();
        assert_eq!(s.account_view("jerry").unwrap().flights, vec![123]);
    }

    #[test]
    fn cancel_withdraws_pending_request() {
        let s = service();
        let BookingOutcome::Waiting(qid) = s
            .coordinate_flight("jerry", "kramer", "Paris", FlightPrefs::default())
            .unwrap()
        else {
            panic!()
        };
        s.cancel("jerry", qid).unwrap();
        assert!(s.account_view("jerry").unwrap().pending.is_empty());
        // kramer's later request now waits (no partner)
        let out = s
            .coordinate_flight("kramer", "jerry", "Paris", FlightPrefs::default())
            .unwrap();
        assert!(matches!(out, BookingOutcome::Waiting(_)));
    }

    #[test]
    fn retry_pending_after_inventory_appears() {
        let s = service();
        s.coordinate_flight(
            "jerry",
            "kramer",
            "Oslo", // no flights yet
            FlightPrefs::default(),
        )
        .unwrap();
        s.coordinate_flight("kramer", "jerry", "Oslo", FlightPrefs::default())
            .unwrap();
        assert_eq!(s.retry_pending().unwrap(), 0);
        run_sql(
            s.db(),
            "INSERT INTO Flights VALUES (500, 'New York', 'Oslo', 1, 350.0, 5)",
        )
        .unwrap();
        assert_eq!(s.retry_pending().unwrap(), 2);
        assert_eq!(s.account_view("jerry").unwrap().flights, vec![500]);
        assert_eq!(s.notifier().inbox("jerry").len(), 1);
        assert_eq!(s.notifier().inbox("kramer").len(), 1);
    }

    #[test]
    fn adjacent_seat_coordination() {
        let s = service();
        let w = s
            .coordinate_adjacent_seats("jerry", "kramer", "Paris")
            .unwrap();
        assert!(matches!(w, BookingOutcome::Waiting(_)));
        let BookingOutcome::Confirmed(answers) = s
            .coordinate_adjacent_seats("kramer", "jerry", "Paris")
            .unwrap()
        else {
            panic!("kramer completes the adjacency pair")
        };
        assert_eq!(answers[0].0, "SeatReservation");

        // read both seat reservations back
        let read = s.db().read();
        let table = read.table("SeatReservation").unwrap();
        let rows: Vec<(String, i64, i64)> = table
            .scan()
            .map(|(_, t)| {
                (
                    t.values()[0].as_str().unwrap().to_string(),
                    t.values()[1].as_int().unwrap(),
                    t.values()[2].as_int().unwrap(),
                )
            })
            .collect();
        assert_eq!(rows.len(), 2);
        let jerry = rows.iter().find(|(who, _, _)| who == "jerry").unwrap();
        let kramer = rows.iter().find(|(who, _, _)| who == "kramer").unwrap();
        assert_eq!(jerry.1, kramer.1, "same flight");
        assert_eq!((jerry.2 - kramer.2).abs(), 1, "adjacent seats");
        drop(read);

        // the seat map was updated atomically with the match
        let free = model::free_seats(s.db(), jerry.1).unwrap();
        assert!(!free.contains(&jerry.2));
        assert!(!free.contains(&kramer.2));
        assert_eq!(free.len(), 4, "6 seats minus the pair");
        // and flight capacity was decremented twice
        let flight = model::flight_by_fno(s.db(), jerry.1).unwrap();
        assert!(flight.seats <= 8);
    }

    #[test]
    fn adjacent_seats_impossible_when_only_scattered_seats_remain() {
        let s = service();
        // occupy seats so that on EVERY Paris flight only seats 1, 3, 5
        // remain free: no adjacent pair exists anywhere
        let read_fnos: Vec<i64> = s
            .search_flights("Paris", FlightPrefs::default())
            .unwrap()
            .iter()
            .map(|f| f.fno)
            .collect();
        s.db()
            .with_txn(|txn| {
                let rids: Vec<_> = {
                    let seats = txn.table("Seats")?;
                    seats
                        .scan()
                        .filter(|(_, t)| {
                            let fno = t.values()[0].as_int().unwrap();
                            let seat = t.values()[1].as_int().unwrap();
                            read_fnos.contains(&fno) && seat % 2 == 0
                        })
                        .map(|(rid, t)| (rid, t.clone()))
                        .collect()
                };
                for (rid, t) in rids {
                    let mut vals = t.into_values();
                    vals[2] = Value::Bool(true);
                    txn.update("Seats", rid, Tuple::new(vals))?;
                }
                Ok(())
            })
            .unwrap();

        s.coordinate_adjacent_seats("jerry", "kramer", "Paris")
            .unwrap();
        let out = s
            .coordinate_adjacent_seats("kramer", "jerry", "Paris")
            .unwrap();
        assert!(
            matches!(out, BookingOutcome::Waiting(_)),
            "no adjacent free seats anywhere: the pair must keep waiting"
        );
    }

    #[test]
    fn capacity_is_respected_under_group_pressure() {
        let s = service();
        // flight 134 has 4 seats; two pairs of two CAN share it, but a
        // pair + a trio cannot all fit if they pick 134. The seats >= k
        // membership keeps groups from oversubscribing: the trio
        // requires seats >= 3 and decrements will never go negative.
        for (a, b) in [("jerry", "kramer"), ("elaine", "george")] {
            s.coordinate_flight(
                a,
                b,
                "Paris",
                FlightPrefs {
                    day: Some(2),
                    max_price: None,
                },
            )
            .unwrap();
            s.coordinate_flight(
                b,
                a,
                "Paris",
                FlightPrefs {
                    day: Some(2),
                    max_price: None,
                },
            )
            .unwrap();
        }
        assert_eq!(model::flight_by_fno(s.db(), 134).unwrap().seats, 0);
    }
}
