//! The travel database schema and demo dataset.
//!
//! Mirrors the paper's Figure 1 flight database, extended with the
//! attributes the demo scenarios need (dates, prices, capacities,
//! hotels, users and the friend graph).

use youtopia_exec::{run_sql, StatementOutcome};
use youtopia_storage::{Database, Tuple, Value};

use crate::error::{TravelError, TravelResult};

/// A flight row.
#[derive(Debug, Clone, PartialEq)]
pub struct Flight {
    /// Flight number.
    pub fno: i64,
    /// Origin city.
    pub origin: String,
    /// Destination city.
    pub dest: String,
    /// Travel day (1-based demo calendar).
    pub day: i64,
    /// Ticket price.
    pub price: f64,
    /// Seats still available.
    pub seats: i64,
}

impl Flight {
    /// Decodes a `Flights` table row.
    pub fn from_tuple(t: &Tuple) -> TravelResult<Flight> {
        let v = t.values();
        let bad = || TravelError::NoSuchItem(format!("malformed flight row {t}"));
        Ok(Flight {
            fno: v[0].as_int().ok_or_else(bad)?,
            origin: v[1].as_str().ok_or_else(bad)?.to_string(),
            dest: v[2].as_str().ok_or_else(bad)?.to_string(),
            day: v[3].as_int().ok_or_else(bad)?,
            price: v[4].as_float().ok_or_else(bad)?,
            seats: v[5].as_int().ok_or_else(bad)?,
        })
    }
}

/// A hotel row.
#[derive(Debug, Clone, PartialEq)]
pub struct Hotel {
    /// Hotel id.
    pub hid: i64,
    /// City.
    pub city: String,
    /// Check-in day.
    pub day: i64,
    /// Nightly price.
    pub price: f64,
    /// Rooms still available.
    pub rooms: i64,
}

impl Hotel {
    /// Decodes a `Hotels` table row.
    pub fn from_tuple(t: &Tuple) -> TravelResult<Hotel> {
        let v = t.values();
        let bad = || TravelError::NoSuchItem(format!("malformed hotel row {t}"));
        Ok(Hotel {
            hid: v[0].as_int().ok_or_else(bad)?,
            city: v[1].as_str().ok_or_else(bad)?.to_string(),
            day: v[2].as_int().ok_or_else(bad)?,
            price: v[3].as_float().ok_or_else(bad)?,
            rooms: v[4].as_int().ok_or_else(bad)?,
        })
    }
}

/// Creates the travel tables, including the two answer relations
/// (`Reservation`, `HotelReservation`) with application-friendly column
/// names — the coordinator inserts matched answers straight into them.
pub fn install_schema(db: &Database) -> TravelResult<()> {
    for sql in [
        "CREATE TABLE Users (name STRING PRIMARY KEY)",
        "CREATE TABLE Friends (a STRING NOT NULL, b STRING NOT NULL)",
        "CREATE TABLE Flights (fno INT PRIMARY KEY, origin STRING NOT NULL, \
         dest STRING NOT NULL, day INT NOT NULL, price FLOAT NOT NULL, seats INT NOT NULL)",
        "CREATE TABLE Hotels (hid INT PRIMARY KEY, city STRING NOT NULL, \
         day INT NOT NULL, price FLOAT NOT NULL, rooms INT NOT NULL)",
        // seat map for the "adjacent seat" scenario (§3.1 first demo:
        // "he wants to fly in an adjacent seat to Kramer")
        "CREATE TABLE Seats (fno INT NOT NULL, seatno INT NOT NULL, taken BOOL NOT NULL)",
        "CREATE TABLE Reservation (traveler STRING NOT NULL, fno INT NOT NULL)",
        "CREATE TABLE HotelReservation (traveler STRING NOT NULL, hid INT NOT NULL)",
        "CREATE TABLE SeatReservation (traveler STRING NOT NULL, fno INT NOT NULL, \
         seatno INT NOT NULL)",
        // secondary indexes the workloads hammer
        "CREATE INDEX flights_by_dest ON Flights (dest)",
        "CREATE INDEX hotels_by_city ON Hotels (city)",
        "CREATE INDEX friends_by_a ON Friends (a)",
        "CREATE INDEX reservation_by_traveler ON Reservation (traveler)",
        "CREATE INDEX seats_by_fno ON Seats (fno)",
    ] {
        run_sql(db, sql)?;
    }
    Ok(())
}

/// Loads the demonstration dataset: the paper's Figure 1 flights
/// (122/123/134 to Paris, 136 to Rome) plus additional inventory for
/// the group and multi-pair scenarios.
pub fn seed_demo_data(db: &Database) -> TravelResult<()> {
    for sql in [
        // Figure 1 flights, given seats/prices for the demo
        "INSERT INTO Flights VALUES \
         (122, 'New York', 'Paris', 1, 450.0, 10), \
         (123, 'New York', 'Paris', 1, 500.0, 10), \
         (134, 'New York', 'Paris', 2, 800.0, 4), \
         (136, 'New York', 'Rome', 1, 300.0, 10), \
         (201, 'New York', 'London', 1, 250.0, 6), \
         (202, 'New York', 'London', 2, 260.0, 6), \
         (301, 'Boston', 'Paris', 1, 480.0, 8)",
        "INSERT INTO Hotels VALUES \
         (7, 'Paris', 1, 120.0, 10), \
         (8, 'Paris', 1, 200.0, 5), \
         (9, 'Rome', 1, 90.0, 10), \
         (10, 'London', 1, 110.0, 8)",
    ] {
        run_sql(db, sql)?;
    }
    // six numbered seats per flight, all free
    let mut seat_rows = Vec::new();
    for fno in [122, 123, 134, 136, 201, 202, 301] {
        for seatno in 1..=6 {
            seat_rows.push(format!("({fno}, {seatno}, FALSE)"));
        }
    }
    run_sql(
        db,
        &format!("INSERT INTO Seats VALUES {}", seat_rows.join(", ")),
    )?;
    Ok(())
}

/// Free seat numbers on one flight, sorted.
pub fn free_seats(db: &Database, fno: i64) -> TravelResult<Vec<i64>> {
    let out = run_sql(
        db,
        &format!("SELECT seatno FROM Seats WHERE fno = {fno} AND taken = FALSE ORDER BY seatno"),
    )?;
    let StatementOutcome::Rows(rs) = out else {
        unreachable!("select query")
    };
    Ok(rs
        .rows
        .iter()
        .filter_map(|r| r.values()[0].as_int())
        .collect())
}

/// Fetches one flight by number.
pub fn flight_by_fno(db: &Database, fno: i64) -> TravelResult<Flight> {
    let out = run_sql(db, &format!("SELECT * FROM Flights WHERE fno = {fno}"))?;
    let StatementOutcome::Rows(rs) = out else {
        return Err(TravelError::NoSuchItem(format!("flight {fno}")));
    };
    match rs.rows.first() {
        Some(row) => Flight::from_tuple(row),
        None => Err(TravelError::NoSuchItem(format!("flight {fno}"))),
    }
}

/// Fetches one hotel by id.
pub fn hotel_by_hid(db: &Database, hid: i64) -> TravelResult<Hotel> {
    let out = run_sql(db, &format!("SELECT * FROM Hotels WHERE hid = {hid}"))?;
    let StatementOutcome::Rows(rs) = out else {
        return Err(TravelError::NoSuchItem(format!("hotel {hid}")));
    };
    match rs.rows.first() {
        Some(row) => Hotel::from_tuple(row),
        None => Err(TravelError::NoSuchItem(format!("hotel {hid}"))),
    }
}

/// Escapes a string for inclusion in a SQL literal.
pub fn sql_str(s: &str) -> String {
    format!("'{}'", s.replace('\'', "''"))
}

/// Renders a `Value` for SQL text generation.
pub fn sql_value(v: &Value) -> String {
    v.sql_literal()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let db = Database::new();
        install_schema(&db).unwrap();
        seed_demo_data(&db).unwrap();
        db
    }

    #[test]
    fn schema_installs_and_seeds() {
        let db = db();
        let read = db.read();
        assert_eq!(read.table("Flights").unwrap().len(), 7);
        assert_eq!(read.table("Hotels").unwrap().len(), 4);
        assert!(read.table("Reservation").unwrap().is_empty());
        assert!(read
            .table("Flights")
            .unwrap()
            .index("flights_by_dest")
            .is_some());
    }

    #[test]
    fn fig1_flights_present() {
        let db = db();
        let f = flight_by_fno(&db, 122).unwrap();
        assert_eq!(f.dest, "Paris");
        assert_eq!(f.price, 450.0);
        assert_eq!(f.seats, 10);
        let rome = flight_by_fno(&db, 136).unwrap();
        assert_eq!(rome.dest, "Rome");
    }

    #[test]
    fn missing_items_error() {
        let db = db();
        assert!(matches!(
            flight_by_fno(&db, 999),
            Err(TravelError::NoSuchItem(_))
        ));
        assert!(matches!(
            hotel_by_hid(&db, 999),
            Err(TravelError::NoSuchItem(_))
        ));
    }

    #[test]
    fn hotel_decoding() {
        let db = db();
        let h = hotel_by_hid(&db, 7).unwrap();
        assert_eq!(h.city, "Paris");
        assert_eq!(h.rooms, 10);
    }

    #[test]
    fn sql_escaping() {
        assert_eq!(sql_str("O'Hare"), "'O''Hare'");
        assert_eq!(sql_value(&Value::Int(4)), "4");
    }
}
