//! In-process notifications — the demo's "Facebook message" substitute.
//!
//! In the paper, "Jerry is notified of the success of his request via a
//! Facebook message". Here each user has a mailbox; the travel service
//! pushes a confirmation message when a coordination completes. The
//! asynchronous shape (submit now, hear back when the partner arrives)
//! is preserved.

use std::collections::HashMap;

use parking_lot::Mutex;

/// One notification message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Recipient user.
    pub to: String,
    /// Message body.
    pub body: String,
    /// Monotonic sequence number (delivery order across all users).
    pub seq: u64,
}

/// A per-user mailbox store. Cloneable handles share the same inboxes.
#[derive(Default)]
pub struct Notifier {
    inner: Mutex<NotifierInner>,
}

#[derive(Default)]
struct NotifierInner {
    boxes: HashMap<String, Vec<Message>>,
    next_seq: u64,
}

impl Notifier {
    /// Creates an empty notifier.
    pub fn new() -> Notifier {
        Notifier::default()
    }

    /// Sends a message to `user`'s mailbox.
    pub fn send(&self, user: &str, body: impl Into<String>) {
        let mut inner = self.inner.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner
            .boxes
            .entry(user.to_string())
            .or_default()
            .push(Message {
                to: user.to_string(),
                body: body.into(),
                seq,
            });
    }

    /// Reads `user`'s mailbox without consuming it.
    pub fn inbox(&self, user: &str) -> Vec<Message> {
        self.inner
            .lock()
            .boxes
            .get(user)
            .cloned()
            .unwrap_or_default()
    }

    /// Drains `user`'s mailbox.
    pub fn drain(&self, user: &str) -> Vec<Message> {
        self.inner.lock().boxes.remove(user).unwrap_or_default()
    }

    /// Total undelivered messages across all users.
    pub fn undelivered(&self) -> usize {
        self.inner.lock().boxes.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_inbox() {
        let n = Notifier::new();
        n.send("jerry", "your flight 122 is booked");
        n.send("jerry", "your hotel 7 is booked");
        n.send("kramer", "your flight 122 is booked");
        let inbox = n.inbox("jerry");
        assert_eq!(inbox.len(), 2);
        assert!(inbox[0].body.contains("flight 122"));
        assert_eq!(n.undelivered(), 3);
        // inbox() does not consume
        assert_eq!(n.inbox("jerry").len(), 2);
    }

    #[test]
    fn drain_consumes() {
        let n = Notifier::new();
        n.send("jerry", "a");
        assert_eq!(n.drain("jerry").len(), 1);
        assert!(n.drain("jerry").is_empty());
        assert_eq!(n.undelivered(), 0);
    }

    #[test]
    fn sequence_numbers_are_global_and_ordered() {
        let n = Notifier::new();
        n.send("a", "1");
        n.send("b", "2");
        n.send("a", "3");
        let a = n.inbox("a");
        assert!(a[0].seq < a[1].seq);
        assert_eq!(n.inbox("b")[0].seq, 1);
    }

    #[test]
    fn empty_inbox_is_empty() {
        let n = Notifier::new();
        assert!(n.inbox("ghost").is_empty());
    }
}
