//! Workload generators for the scalability experiments (§3's "loaded
//! system, where a large number of entangled queries are trying to
//! coordinate simultaneously").
//!
//! All generators are deterministic given a seed, so benchmark runs are
//! reproducible.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use youtopia_exec::run_sql;
use youtopia_storage::Database;

use crate::error::TravelResult;
use crate::model::install_schema;

/// One entangled submission: who submits what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Submitting user.
    pub owner: String,
    /// The entangled SQL.
    pub sql: String,
}

/// Deterministic workload generator.
pub struct WorkloadGen {
    rng: StdRng,
}

impl WorkloadGen {
    /// Creates a generator with a fixed seed.
    pub fn new(seed: u64) -> WorkloadGen {
        WorkloadGen { rng: StdRng::seed_from_u64(seed) }
    }

    /// Builds a database with the travel schema and `n_flights` flights
    /// spread over `cities` (plenty of seats so inventory never blocks
    /// matching experiments).
    pub fn build_database(&mut self, n_flights: usize, cities: &[&str]) -> TravelResult<Database> {
        let db = Database::new();
        install_schema(&db)?;
        let mut rows = Vec::with_capacity(n_flights);
        for i in 0..n_flights {
            let city = cities[i % cities.len()];
            let day = self.rng.random_range(1..=30);
            let price = 100.0 + self.rng.random_range(0..900) as f64;
            rows.push(format!(
                "({fno}, 'New York', '{city}', {day}, {price}, 1000000)",
                fno = 1000 + i as i64
            ));
        }
        for chunk in rows.chunks(500) {
            run_sql(&db, &format!("INSERT INTO Flights VALUES {}", chunk.join(", ")))?;
        }
        let mut hotels = Vec::new();
        for (i, city) in cities.iter().enumerate() {
            hotels.push(format!("({}, '{city}', 1, 100.0, 1000000)", 10_000 + i as i64));
        }
        run_sql(&db, &format!("INSERT INTO Hotels VALUES {}", hotels.join(", ")))?;
        Ok(db)
    }

    /// The pair request of the paper's walkthrough, parameterized.
    pub fn pair_request(me: &str, friend: &str, dest: &str) -> Request {
        Request {
            owner: me.to_string(),
            sql: format!(
                "SELECT '{me}', fno INTO ANSWER Reservation \
                 WHERE fno IN (SELECT fno FROM Flights WHERE dest = '{dest}') \
                 AND ('{friend}', fno) IN ANSWER Reservation CHOOSE 1"
            ),
        }
    }

    /// `pairs` mutually coordinating pairs on `dest`. Returned in
    /// submission order: all first halves, then all second halves, so a
    /// driver can measure "p pending, then p completions".
    pub fn pair_storm(&mut self, pairs: usize, dest: &str) -> Vec<Request> {
        let mut first = Vec::with_capacity(pairs);
        let mut second = Vec::with_capacity(pairs);
        for p in 0..pairs {
            let a = format!("L{p}");
            let b = format!("R{p}");
            first.push(Self::pair_request(&a, &b, dest));
            second.push(Self::pair_request(&b, &a, dest));
        }
        first.shuffle(&mut self.rng);
        second.shuffle(&mut self.rng);
        first.extend(second);
        first
    }

    /// `count` "noise" queries that never match: each waits for a
    /// partner who never arrives. These are the standing load of the
    /// loaded-system experiment.
    pub fn noise(&mut self, count: usize, dest: &str) -> Vec<Request> {
        (0..count)
            .map(|i| Self::pair_request(&format!("noise{i}"), &format!("ghost{i}"), dest))
            .collect()
    }

    /// A group of `size` friends booking one flight: each request names
    /// all other members. Submission order is randomized; only the last
    /// arrival closes the group.
    pub fn group(&mut self, group_id: usize, size: usize, dest: &str) -> Vec<Request> {
        let names: Vec<String> =
            (0..size).map(|i| format!("g{group_id}m{i}")).collect();
        let mut requests = Vec::with_capacity(size);
        for me in &names {
            let mut sql = format!(
                "SELECT '{me}', fno INTO ANSWER Reservation \
                 WHERE fno IN (SELECT fno FROM Flights WHERE dest = '{dest}')"
            );
            for other in names.iter().filter(|n| *n != me) {
                sql.push_str(&format!(" AND ('{other}', fno) IN ANSWER Reservation"));
            }
            sql.push_str(" CHOOSE 1");
            requests.push(Request { owner: me.clone(), sql });
        }
        requests.shuffle(&mut self.rng);
        requests
    }

    /// A flight+hotel pair request (two answer relations per query).
    pub fn pair_flight_hotel(me: &str, friend: &str, dest: &str) -> Request {
        Request {
            owner: me.to_string(),
            sql: format!(
                "SELECT '{me}', fno INTO ANSWER Reservation, \
                 '{me}', hid INTO ANSWER HotelReservation \
                 WHERE fno IN (SELECT fno FROM Flights WHERE dest = '{dest}') \
                 AND hid IN (SELECT hid FROM Hotels WHERE city = '{dest}') \
                 AND ('{friend}', fno) IN ANSWER Reservation \
                 AND ('{friend}', hid) IN ANSWER HotelReservation CHOOSE 1"
            ),
        }
    }

    /// A pair request with `extra_constraints` additional answer
    /// relations per query (E3: constraint-complexity sweep). With
    /// `extra = 0` this is the plain pair.
    pub fn pair_with_constraint_count(
        me: &str,
        friend: &str,
        dest: &str,
        extra_constraints: usize,
    ) -> Request {
        let mut heads = format!("'{me}', fno INTO ANSWER Reservation");
        let mut body = format!(
            " WHERE fno IN (SELECT fno FROM Flights WHERE dest = '{dest}') \
             AND ('{friend}', fno) IN ANSWER Reservation"
        );
        for k in 0..extra_constraints {
            heads.push_str(&format!(", '{me}', fno INTO ANSWER Aux{k}"));
            body.push_str(&format!(" AND ('{friend}', fno) IN ANSWER Aux{k}"));
        }
        Request { owner: me.to_string(), sql: format!("SELECT {heads}{body} CHOOSE 1") }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtopia_core::compile_sql;

    #[test]
    fn database_builder_is_deterministic() {
        let db1 = WorkloadGen::new(1).build_database(100, &["Paris", "Rome"]).unwrap();
        let db2 = WorkloadGen::new(1).build_database(100, &["Paris", "Rome"]).unwrap();
        let count = |db: &Database| db.read().table("Flights").unwrap().len();
        assert_eq!(count(&db1), 100);
        assert_eq!(count(&db1), count(&db2));
    }

    #[test]
    fn pair_storm_shape() {
        let reqs = WorkloadGen::new(2).pair_storm(10, "Paris");
        assert_eq!(reqs.len(), 20);
        // first half are all L*/R* pairs' first members (shuffled)
        for r in &reqs {
            assert!(r.sql.contains("IN ANSWER Reservation"));
            compile_sql(&r.sql).expect("generated SQL compiles");
        }
        // all 20 owners distinct
        let owners: std::collections::HashSet<&str> =
            reqs.iter().map(|r| r.owner.as_str()).collect();
        assert_eq!(owners.len(), 20);
    }

    #[test]
    fn group_requests_reference_every_other_member() {
        let reqs = WorkloadGen::new(3).group(0, 4, "Paris");
        assert_eq!(reqs.len(), 4);
        for r in &reqs {
            let q = compile_sql(&r.sql).unwrap();
            assert_eq!(q.constraints.len(), 3, "each member names 3 others");
        }
    }

    #[test]
    fn noise_queries_compile_and_never_pair_up() {
        let reqs = WorkloadGen::new(4).noise(5, "Paris");
        assert_eq!(reqs.len(), 5);
        for (i, r) in reqs.iter().enumerate() {
            compile_sql(&r.sql).unwrap();
            assert!(r.sql.contains(&format!("ghost{i}")));
        }
    }

    #[test]
    fn constraint_count_sweep() {
        for extra in 0..4 {
            let r = WorkloadGen::pair_with_constraint_count("a", "b", "Paris", extra);
            let q = compile_sql(&r.sql).unwrap();
            assert_eq!(q.constraints.len(), 1 + extra);
            assert_eq!(q.heads.len(), 1 + extra);
        }
    }

    #[test]
    fn flight_hotel_pair_compiles() {
        let r = WorkloadGen::pair_flight_hotel("a", "b", "Paris");
        let q = compile_sql(&r.sql).unwrap();
        assert_eq!(q.heads.len(), 2);
        assert_eq!(q.constraints.len(), 2);
        assert_eq!(q.memberships.len(), 2);
    }
}
