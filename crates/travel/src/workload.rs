//! Workload generators for the scalability experiments (§3's "loaded
//! system, where a large number of entangled queries are trying to
//! coordinate simultaneously").
//!
//! All generators are deterministic given a seed, so benchmark runs are
//! reproducible.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use youtopia_core::{
    CoordinationOutcome, ShardedConfig, ShardedCoordinator, Submission, SubmitOptions, WaiterSet,
};
use youtopia_exec::run_sql;
use youtopia_storage::Database;

use crate::error::{TravelError, TravelResult};
use crate::model::install_schema;

/// One entangled submission: who submits what (and until when).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Submitting user.
    pub owner: String,
    /// The entangled SQL.
    pub sql: String,
    /// Optional absolute deadline (clock milliseconds), passed through
    /// as [`SubmitOptions::deadline`]. `None` for the classic
    /// wait-forever workloads.
    pub deadline: Option<u64>,
}

impl Request {
    /// Attaches an absolute deadline to the request.
    pub fn with_deadline(mut self, deadline_millis: u64) -> Request {
        self.deadline = Some(deadline_millis);
        self
    }

    /// The request's submission options.
    pub fn opts(&self) -> SubmitOptions {
        SubmitOptions {
            deadline: self.deadline,
        }
    }
}

/// Deterministic workload generator.
pub struct WorkloadGen {
    rng: StdRng,
}

impl WorkloadGen {
    /// Creates a generator with a fixed seed.
    pub fn new(seed: u64) -> WorkloadGen {
        WorkloadGen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Builds a database with the travel schema and `n_flights` flights
    /// spread over `cities` (plenty of seats so inventory never blocks
    /// matching experiments).
    pub fn build_database(&mut self, n_flights: usize, cities: &[&str]) -> TravelResult<Database> {
        self.populate(Database::new(), n_flights, cities)
    }

    /// Like [`WorkloadGen::build_database`], but the database logs to
    /// `wal`, so the crash/restart scenarios can kill and recover it.
    /// Generated content is identical to a WAL-less build under the
    /// same seed.
    pub fn build_database_with_wal(
        &mut self,
        n_flights: usize,
        cities: &[&str],
        wal: youtopia_storage::Wal,
    ) -> TravelResult<Database> {
        self.populate(Database::with_wal(wal), n_flights, cities)
    }

    fn populate(
        &mut self,
        db: Database,
        n_flights: usize,
        cities: &[&str],
    ) -> TravelResult<Database> {
        install_schema(&db)?;
        let mut rows = Vec::with_capacity(n_flights);
        for i in 0..n_flights {
            let city = cities[i % cities.len()];
            let day = self.rng.random_range(1..=30);
            let price = 100.0 + self.rng.random_range(0..900) as f64;
            rows.push(format!(
                "({fno}, 'New York', '{city}', {day}, {price}, 1000000)",
                fno = 1000 + i as i64
            ));
        }
        for chunk in rows.chunks(500) {
            run_sql(
                &db,
                &format!("INSERT INTO Flights VALUES {}", chunk.join(", ")),
            )?;
        }
        let mut hotels = Vec::new();
        for (i, city) in cities.iter().enumerate() {
            hotels.push(format!(
                "({}, '{city}', 1, 100.0, 1000000)",
                10_000 + i as i64
            ));
        }
        run_sql(
            &db,
            &format!("INSERT INTO Hotels VALUES {}", hotels.join(", ")),
        )?;
        Ok(db)
    }

    /// The pair request of the paper's walkthrough, parameterized.
    pub fn pair_request(me: &str, friend: &str, dest: &str) -> Request {
        Request {
            owner: me.to_string(),
            sql: format!(
                "SELECT '{me}', fno INTO ANSWER Reservation \
                 WHERE fno IN (SELECT fno FROM Flights WHERE dest = '{dest}') \
                 AND ('{friend}', fno) IN ANSWER Reservation CHOOSE 1"
            ),
            deadline: None,
        }
    }

    /// `pairs` mutually coordinating pairs on `dest`. Returned in
    /// submission order: all first halves, then all second halves, so a
    /// driver can measure "p pending, then p completions".
    pub fn pair_storm(&mut self, pairs: usize, dest: &str) -> Vec<Request> {
        let mut first = Vec::with_capacity(pairs);
        let mut second = Vec::with_capacity(pairs);
        for p in 0..pairs {
            let a = format!("L{p}");
            let b = format!("R{p}");
            first.push(Self::pair_request(&a, &b, dest));
            second.push(Self::pair_request(&b, &a, dest));
        }
        first.shuffle(&mut self.rng);
        second.shuffle(&mut self.rng);
        first.extend(second);
        first
    }

    /// `count` "noise" queries that never match: each waits for a
    /// partner who never arrives. These are the standing load of the
    /// loaded-system experiment.
    pub fn noise(&mut self, count: usize, dest: &str) -> Vec<Request> {
        (0..count)
            .map(|i| Self::pair_request(&format!("noise{i}"), &format!("ghost{i}"), dest))
            .collect()
    }

    /// A group of `size` friends booking one flight: each request names
    /// all other members. Submission order is randomized; only the last
    /// arrival closes the group.
    pub fn group(&mut self, group_id: usize, size: usize, dest: &str) -> Vec<Request> {
        let names: Vec<String> = (0..size).map(|i| format!("g{group_id}m{i}")).collect();
        let mut requests = Vec::with_capacity(size);
        for me in &names {
            let mut sql = format!(
                "SELECT '{me}', fno INTO ANSWER Reservation \
                 WHERE fno IN (SELECT fno FROM Flights WHERE dest = '{dest}')"
            );
            for other in names.iter().filter(|n| *n != me) {
                sql.push_str(&format!(" AND ('{other}', fno) IN ANSWER Reservation"));
            }
            sql.push_str(" CHOOSE 1");
            requests.push(Request {
                owner: me.clone(),
                sql,
                deadline: None,
            });
        }
        requests.shuffle(&mut self.rng);
        requests
    }

    /// The pair request on an explicit answer relation (multi-relation
    /// workloads route different relation families to different shards
    /// of the sharded coordinator).
    pub fn pair_request_on(relation: &str, me: &str, friend: &str, dest: &str) -> Request {
        Request {
            owner: me.to_string(),
            sql: format!(
                "SELECT '{me}', fno INTO ANSWER {relation} \
                 WHERE fno IN (SELECT fno FROM Flights WHERE dest = '{dest}') \
                 AND ('{friend}', fno) IN ANSWER {relation} CHOOSE 1"
            ),
            deadline: None,
        }
    }

    /// `pairs` coordinating pairs spread round-robin over `relations`
    /// distinct answer relations (`Reservation0..`). Independent
    /// relation families form independent coordination components, so
    /// this is the natural workload for the sharded coordinator.
    /// Returned as all first halves (shuffled), then all second halves
    /// (shuffled), like [`WorkloadGen::pair_storm`].
    pub fn pair_storm_multi(&mut self, pairs: usize, dest: &str, relations: usize) -> Vec<Request> {
        let relations = relations.max(1);
        let mut first = Vec::with_capacity(pairs);
        let mut second = Vec::with_capacity(pairs);
        for p in 0..pairs {
            let rel = format!("Reservation{}", p % relations);
            let a = format!("L{p}");
            let b = format!("R{p}");
            first.push(Self::pair_request_on(&rel, &a, &b, dest));
            second.push(Self::pair_request_on(&rel, &b, &a, dest));
        }
        first.shuffle(&mut self.rng);
        second.shuffle(&mut self.rng);
        first.extend(second);
        first
    }

    /// `count` never-matching noise queries spread round-robin over
    /// `relations` answer relations — the standing load of the sharded
    /// loaded-system experiment.
    pub fn noise_multi(&mut self, count: usize, dest: &str, relations: usize) -> Vec<Request> {
        let relations = relations.max(1);
        (0..count)
            .map(|i| {
                let rel = format!("Reservation{}", i % relations);
                Self::pair_request_on(&rel, &format!("noise{i}"), &format!("ghost{i}"), dest)
            })
            .collect()
    }

    /// `pairs` coordinating pairs all owned by one tenant: owners are
    /// `{tenant}/p{i}a` / `{tenant}/p{i}b` (the tenant is the prefix
    /// before the first `/`), spread round-robin over `relations`
    /// answer relations. Returned interleaved — each pair's first half
    /// directly followed by its closer — so a driver can time
    /// per-pair completion latency. The building block of the
    /// multi-tenant fairness and noisy-neighbor scenarios.
    pub fn tenant_pairs(tenant: &str, pairs: usize, dest: &str, relations: usize) -> Vec<Request> {
        let relations = relations.max(1);
        let mut out = Vec::with_capacity(pairs * 2);
        for p in 0..pairs {
            let rel = format!("Reservation{}", p % relations);
            let a = format!("{tenant}/p{p}a");
            let b = format!("{tenant}/p{p}b");
            out.push(Self::pair_request_on(&rel, &a, &b, dest));
            out.push(Self::pair_request_on(&rel, &b, &a, dest));
        }
        out
    }

    /// `count` never-matching queries all owned by one tenant (owners
    /// `{tenant}/s{i}`), spread over `relations` answer relations —
    /// the flood half of the noisy-neighbor test: a tenant hammering
    /// the system with standing load that its quota should throttle.
    pub fn tenant_storm(tenant: &str, count: usize, dest: &str, relations: usize) -> Vec<Request> {
        let relations = relations.max(1);
        (0..count)
            .map(|i| {
                let rel = format!("Reservation{}", i % relations);
                Self::pair_request_on(
                    &rel,
                    &format!("{tenant}/s{i}"),
                    &format!("{tenant}/ghost{i}"),
                    dest,
                )
            })
            .collect()
    }

    /// `count` never-matching queries that each carry an absolute
    /// deadline drawn uniformly from `deadline_range` (clock millis),
    /// spread over `relations` answer relations — the due load of the
    /// `expiry_storm` bench and the deadline soak: they pend until a
    /// sweep retires them.
    pub fn deadline_storm(
        &mut self,
        count: usize,
        dest: &str,
        relations: usize,
        deadline_range: std::ops::Range<u64>,
    ) -> Vec<Request> {
        let relations = relations.max(1);
        (0..count)
            .map(|i| {
                let rel = format!("Reservation{}", i % relations);
                let deadline = self.rng.random_range(deadline_range.clone());
                Self::pair_request_on(&rel, &format!("bounded{i}"), &format!("never{i}"), dest)
                    .with_deadline(deadline)
            })
            .collect()
    }

    /// A flight+hotel pair request (two answer relations per query).
    pub fn pair_flight_hotel(me: &str, friend: &str, dest: &str) -> Request {
        Request {
            owner: me.to_string(),
            sql: format!(
                "SELECT '{me}', fno INTO ANSWER Reservation, \
                 '{me}', hid INTO ANSWER HotelReservation \
                 WHERE fno IN (SELECT fno FROM Flights WHERE dest = '{dest}') \
                 AND hid IN (SELECT hid FROM Hotels WHERE city = '{dest}') \
                 AND ('{friend}', fno) IN ANSWER Reservation \
                 AND ('{friend}', hid) IN ANSWER HotelReservation CHOOSE 1"
            ),
            deadline: None,
        }
    }

    /// A pair request with `extra_constraints` additional answer
    /// relations per query (E3: constraint-complexity sweep). With
    /// `extra = 0` this is the plain pair.
    pub fn pair_with_constraint_count(
        me: &str,
        friend: &str,
        dest: &str,
        extra_constraints: usize,
    ) -> Request {
        let mut heads = format!("'{me}', fno INTO ANSWER Reservation");
        let mut body = format!(
            " WHERE fno IN (SELECT fno FROM Flights WHERE dest = '{dest}') \
             AND ('{friend}', fno) IN ANSWER Reservation"
        );
        for k in 0..extra_constraints {
            heads.push_str(&format!(", '{me}', fno INTO ANSWER Aux{k}"));
            body.push_str(&format!(" AND ('{friend}', fno) IN ANSWER Aux{k}"));
        }
        Request {
            owner: me.to_string(),
            sql: format!("SELECT {heads}{body} CHOOSE 1"),
            deadline: None,
        }
    }
}

/// Configuration of the kill/restart scenario
/// ([`run_crash_restart`]): a deterministic multi-relation pair
/// workload over standing noise, killed after `crash_after`
/// submissions and recovered from the WAL.
#[derive(Debug, Clone, Copy)]
pub struct CrashScenario {
    /// Workload seed (drives flights, shuffles, and comparison run).
    pub seed: u64,
    /// Coordinating pairs (2 requests each).
    pub pairs: usize,
    /// Standing never-matching noise queries submitted first.
    pub noise: usize,
    /// Distinct answer relations the workload spreads over.
    pub relations: usize,
    /// Flights in the generated database.
    pub flights: usize,
    /// Batch size of the driver.
    pub batch_size: usize,
    /// Requests submitted before the kill (clamped to the total).
    pub crash_after: usize,
    /// Coordinator configuration. `randomize` must stay off for the
    /// crashed and uncrashed runs to be comparable.
    pub config: ShardedConfig,
}

impl Default for CrashScenario {
    fn default() -> Self {
        let mut config = ShardedConfig::default();
        config.base.match_config.randomize = false;
        CrashScenario {
            seed: 0x00C0_FFEE,
            pairs: 24,
            noise: 60,
            relations: 6,
            flights: 80,
            batch_size: 16,
            crash_after: 90,
            config,
        }
    }
}

/// What [`run_crash_restart`] observed.
#[derive(Debug, Clone)]
pub struct CrashReport {
    /// Driver outcomes before the kill.
    pub before: DriveReport,
    /// Size of the WAL salvaged at the kill point, in bytes.
    pub wal_bytes: usize,
    /// What recovery replayed and rebuilt.
    pub recovery: youtopia_core::RecoveryReport,
    /// Tickets re-issued to reconnecting owners after recovery.
    pub reattached: usize,
    /// Driver outcomes for the remainder, after recovery.
    pub after: DriveReport,
    /// Pending queries at the end of the crashed run.
    pub pending_after: usize,
    /// Whether the crashed-and-recovered run ended in exactly the
    /// uncrashed run's state: same pending set (id, owner, SQL, seq),
    /// same answer relations, and routing invariants intact.
    pub equivalent: bool,
}

/// Runs the kill/restart scenario: drives a prefix of the workload
/// into a WAL-backed sharded coordinator, "kills" it (drops every
/// in-memory structure, keeping only the salvaged WAL bytes), recovers
/// with [`ShardedCoordinator::recover`], re-attaches every owner with
/// pending queries, finishes the workload, and compares the final
/// state against an uncrashed control run under the same seed.
pub fn run_crash_restart(scenario: &CrashScenario) -> TravelResult<CrashReport> {
    use youtopia_storage::Wal;

    let cities = ["Paris", "Rome"];
    let build_requests = |generator: &mut WorkloadGen| {
        let mut requests = generator.noise_multi(scenario.noise, "Paris", scenario.relations);
        requests.extend(generator.pair_storm_multi(scenario.pairs, "Paris", scenario.relations));
        requests
    };

    // ---- control: the same workload, never killed ------------------ //
    let mut generator = WorkloadGen::new(scenario.seed);
    let control_db = generator.build_database(scenario.flights, &cities)?;
    let control = ShardedCoordinator::with_config(control_db, scenario.config);
    let control_requests = build_requests(&mut generator);
    drive_batched(&control, &control_requests, scenario.batch_size);

    // ---- crashed run ----------------------------------------------- //
    let mut generator = WorkloadGen::new(scenario.seed);
    let db = generator.build_database_with_wal(scenario.flights, &cities, Wal::in_memory())?;
    let coordinator = ShardedCoordinator::with_config(db.clone(), scenario.config);
    let requests = build_requests(&mut generator);
    let cut = scenario.crash_after.min(requests.len());
    let before = drive_batched(&coordinator, &requests[..cut], scenario.batch_size);

    // the kill: drop the coordinator and database; only the bytes that
    // reached the log survive
    let wal_bytes = db.wal_bytes().expect("scenario database is WAL-backed");
    drop(coordinator);
    drop(db);

    // the restart
    let (recovered, recovery) =
        ShardedCoordinator::recover(Wal::from_bytes(wal_bytes.clone()), scenario.config)
            .map_err(TravelError::Core)?;
    recovered
        .check_routing_invariants()
        .map_err(youtopia_core::CoreError::Internal)
        .map_err(TravelError::Core)?;
    let owners: std::collections::BTreeSet<String> = recovered
        .pending_snapshot()
        .into_iter()
        .map(|p| p.owner)
        .collect();
    let reattached: usize = owners
        .iter()
        .map(|owner| recovered.reattach(owner).len())
        .sum();
    let after = drive_batched(&recovered, &requests[cut..], scenario.batch_size);

    // ---- comparison ------------------------------------------------ //
    let snapshot = |co: &ShardedCoordinator| {
        co.pending_snapshot()
            .into_iter()
            .map(|p| (p.id, p.owner, p.sql, p.seq))
            .collect::<Vec<_>>()
    };
    let answers = |co: &ShardedCoordinator| {
        (0..scenario.relations)
            .map(|k| {
                let mut rows: Vec<Vec<u8>> = co
                    .answers(&format!("Reservation{k}"))
                    .iter()
                    .map(|t| t.encode().to_vec())
                    .collect();
                rows.sort();
                rows
            })
            .collect::<Vec<_>>()
    };
    let equivalent = snapshot(&recovered) == snapshot(&control)
        && answers(&recovered) == answers(&control)
        && recovered.check_routing_invariants().is_ok();

    Ok(CrashReport {
        before,
        wal_bytes: wal_bytes.len(),
        recovery,
        reattached,
        after,
        pending_after: recovered.pending_count(),
        equivalent,
    })
}

/// Outcome counts of a driven submission run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriveReport {
    /// Requests answered on arrival (or within their batch).
    pub answered: usize,
    /// Requests left pending.
    pub pending: usize,
    /// Requests rejected (compile or safety failure).
    pub rejected: usize,
}

impl DriveReport {
    fn absorb(&mut self, outcome: &youtopia_core::shard::BatchOutcome) {
        match outcome {
            Ok(Submission::Answered(_)) => self.answered += 1,
            Ok(Submission::Pending(_)) => self.pending += 1,
            Err(_) => self.rejected += 1,
        }
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: DriveReport) {
        self.answered += other.answered;
        self.pending += other.pending;
        self.rejected += other.rejected;
    }
}

/// Submits `requests` to the sharded coordinator in batches of
/// `batch_size`, draining matching per shard per batch (the batched
/// submission mode of the workload driver).
pub fn drive_batched(
    coordinator: &ShardedCoordinator,
    requests: &[Request],
    batch_size: usize,
) -> DriveReport {
    let batch_size = batch_size.max(1);
    let mut report = DriveReport::default();
    for chunk in requests.chunks(batch_size) {
        for outcome in coordinator.submit_batch_with(compile_batch(chunk)) {
            report.absorb(&outcome);
        }
    }
    report
}

/// Compiles a request chunk into the sharded coordinator's
/// options-carrying batch form (deadlines ride along per entry).
fn compile_batch(
    chunk: &[Request],
) -> Vec<(
    String,
    youtopia_core::CoreResult<youtopia_core::EntangledQuery>,
    SubmitOptions,
)> {
    chunk
        .iter()
        .map(|r| {
            (
                r.owner.clone(),
                youtopia_core::compile_sql(&r.sql),
                r.opts(),
            )
        })
        .collect()
}

/// What [`drive_async`] observed: the per-request outcome counts, the
/// completions harvested so far, the set still holding the in-flight
/// futures, and the high-water mark of futures held at once.
pub struct AsyncDriveReport {
    /// Outcome counts, comparable to [`drive_batched`]'s report:
    /// `answered` counts harvested [`CoordinationOutcome::Answered`]
    /// completions, `pending` the futures still in flight.
    pub drive: DriveReport,
    /// Every completion harvested during the drive, in harvest order.
    pub completed: Vec<(youtopia_core::QueryId, CoordinationOutcome)>,
    /// The in-flight futures (drive them further, cancel them, or drop
    /// them to simulate a dying front-end).
    pub waiters: WaiterSet,
    /// Most futures held in flight at any point during the drive — the
    /// quantity the async API exists to scale (thousands per thread,
    /// where the sync API needs a thread per waiter).
    pub max_in_flight: usize,
}

/// Submits `requests` asynchronously in batches of `batch_size`,
/// holding every pending coordination as a [`CoordinationFuture`] in
/// one [`WaiterSet`] — no thread ever blocks per waiter, so one driver
/// thread sustains thousands of in-flight coordinations. Completions
/// are harvested (non-blocking) between batches and once more at the
/// end; futures still in flight ride along in the returned report.
pub fn drive_async(
    coordinator: &ShardedCoordinator,
    requests: &[Request],
    batch_size: usize,
) -> AsyncDriveReport {
    let batch_size = batch_size.max(1);
    let mut report = DriveReport::default();
    let mut waiters = WaiterSet::new();
    let mut completed = Vec::new();
    let mut max_in_flight = 0usize;
    for chunk in requests.chunks(batch_size) {
        for outcome in coordinator.submit_batch_async_with(compile_batch(chunk)) {
            match outcome {
                Ok(future) => {
                    waiters.insert(future);
                }
                Err(_) => report.rejected += 1,
            }
        }
        max_in_flight = max_in_flight.max(waiters.len());
        completed.extend(waiters.poll_ready());
    }
    completed.extend(waiters.poll_ready());
    report.answered = completed
        .iter()
        .filter(|(_, o)| matches!(o, CoordinationOutcome::Answered(_)))
        .count();
    report.pending = waiters.len();
    AsyncDriveReport {
        drive: report,
        completed,
        waiters,
        max_in_flight,
    }
}

/// Splits `requests` across `threads` submitter threads, each driving
/// its slice through [`drive_batched`] concurrently (the concurrent
/// submission mode of the workload driver). Interleaving across
/// threads is nondeterministic, as real traffic is.
pub fn drive_concurrent(
    coordinator: &ShardedCoordinator,
    requests: &[Request],
    threads: usize,
    batch_size: usize,
) -> DriveReport {
    let threads = threads.max(1);
    let chunk = requests.len().div_ceil(threads).max(1);
    let reports = std::thread::scope(|scope| {
        let handles: Vec<_> = requests
            .chunks(chunk)
            .map(|slice| scope.spawn(move || drive_batched(coordinator, slice, batch_size)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("submitter thread panicked"))
            .collect::<Vec<_>>()
    });
    let mut total = DriveReport::default();
    for r in reports {
        total.merge(r);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtopia_core::compile_sql;

    #[test]
    fn database_builder_is_deterministic() {
        let db1 = WorkloadGen::new(1)
            .build_database(100, &["Paris", "Rome"])
            .unwrap();
        let db2 = WorkloadGen::new(1)
            .build_database(100, &["Paris", "Rome"])
            .unwrap();
        let count = |db: &Database| db.read().table("Flights").unwrap().len();
        assert_eq!(count(&db1), 100);
        assert_eq!(count(&db1), count(&db2));
    }

    #[test]
    fn pair_storm_shape() {
        let reqs = WorkloadGen::new(2).pair_storm(10, "Paris");
        assert_eq!(reqs.len(), 20);
        // first half are all L*/R* pairs' first members (shuffled)
        for r in &reqs {
            assert!(r.sql.contains("IN ANSWER Reservation"));
            compile_sql(&r.sql).expect("generated SQL compiles");
        }
        // all 20 owners distinct
        let owners: std::collections::HashSet<&str> =
            reqs.iter().map(|r| r.owner.as_str()).collect();
        assert_eq!(owners.len(), 20);
    }

    #[test]
    fn group_requests_reference_every_other_member() {
        let reqs = WorkloadGen::new(3).group(0, 4, "Paris");
        assert_eq!(reqs.len(), 4);
        for r in &reqs {
            let q = compile_sql(&r.sql).unwrap();
            assert_eq!(q.constraints.len(), 3, "each member names 3 others");
        }
    }

    #[test]
    fn noise_queries_compile_and_never_pair_up() {
        let reqs = WorkloadGen::new(4).noise(5, "Paris");
        assert_eq!(reqs.len(), 5);
        for (i, r) in reqs.iter().enumerate() {
            compile_sql(&r.sql).unwrap();
            assert!(r.sql.contains(&format!("ghost{i}")));
        }
    }

    #[test]
    fn constraint_count_sweep() {
        for extra in 0..4 {
            let r = WorkloadGen::pair_with_constraint_count("a", "b", "Paris", extra);
            let q = compile_sql(&r.sql).unwrap();
            assert_eq!(q.constraints.len(), 1 + extra);
            assert_eq!(q.heads.len(), 1 + extra);
        }
    }

    #[test]
    fn multi_relation_storm_spreads_relations() {
        let reqs = WorkloadGen::new(5).pair_storm_multi(8, "Paris", 4);
        assert_eq!(reqs.len(), 16);
        for k in 0..4 {
            let rel = format!("Reservation{k}");
            assert_eq!(
                reqs.iter().filter(|r| r.sql.contains(&rel)).count(),
                4,
                "each relation family hosts 2 pairs = 4 requests"
            );
        }
        for r in &reqs {
            compile_sql(&r.sql).expect("generated SQL compiles");
        }
    }

    #[test]
    fn batched_driver_matches_pairs() {
        let mut generator = WorkloadGen::new(6);
        let db = generator.build_database(50, &["Paris"]).unwrap();
        let co = ShardedCoordinator::new(db);
        let reqs = generator.pair_storm_multi(6, "Paris", 3);
        let report = drive_batched(&co, &reqs, 4);
        assert_eq!(report.answered, 6);
        assert_eq!(report.pending, 6);
        assert_eq!(report.rejected, 0);
        assert_eq!(co.pending_count(), 0);
        co.check_routing_invariants().unwrap();
    }

    #[test]
    fn async_driver_matches_pairs_and_tracks_in_flight() {
        let mut generator = WorkloadGen::new(6);
        let db = generator.build_database(50, &["Paris"]).unwrap();
        let co = ShardedCoordinator::new(db);
        let reqs = generator.pair_storm_multi(6, "Paris", 3);
        let report = drive_async(&co, &reqs, 4);
        assert_eq!(report.drive.answered, 12, "all 6 pairs close");
        assert_eq!(report.drive.pending, 0);
        assert_eq!(report.drive.rejected, 0);
        assert!(report.waiters.is_empty());
        assert!(
            report.max_in_flight >= 6,
            "all first halves were in flight at once (saw {})",
            report.max_in_flight
        );
        // same end state as the sync driver under the same seed; the
        // async report's `answered` also harvests the first halves the
        // sync report counts as `pending` (their tickets fired later)
        let mut generator = WorkloadGen::new(6);
        let db = generator.build_database(50, &["Paris"]).unwrap();
        let sync_co = ShardedCoordinator::new(db);
        let sync = drive_batched(&sync_co, &generator.pair_storm_multi(6, "Paris", 3), 4);
        assert_eq!(report.drive.answered, sync.answered + sync.pending);
        assert_eq!(co.pending_count(), sync_co.pending_count());
        co.check_routing_invariants().unwrap();
    }

    #[test]
    fn concurrent_driver_reports_all_requests() {
        let mut generator = WorkloadGen::new(7);
        let db = generator.build_database(50, &["Paris"]).unwrap();
        let co = ShardedCoordinator::new(db);
        let reqs = generator.noise_multi(40, "Paris", 4);
        let report = drive_concurrent(&co, &reqs, 4, 5);
        assert_eq!(report.pending, 40);
        assert_eq!(report.answered + report.rejected, 0);
        assert_eq!(co.pending_count(), 40);
        co.check_routing_invariants().unwrap();
    }

    #[test]
    fn crash_restart_scenario_is_equivalent_to_uncrashed() {
        let scenario = CrashScenario {
            pairs: 8,
            noise: 12,
            relations: 3,
            flights: 30,
            batch_size: 5,
            crash_after: 17,
            ..CrashScenario::default()
        };
        let report = run_crash_restart(&scenario).unwrap();
        assert!(report.wal_bytes > 0);
        assert!(report.recovery.restored_pending > 0, "crash mid-workload");
        assert_eq!(
            report.reattached, report.recovery.restored_pending,
            "every surviving owner reattaches one ticket per pending query"
        );
        assert!(report.equivalent, "recovered state == uncrashed state");
        // every pair eventually closed; only noise is left pending
        assert_eq!(report.pending_after, scenario.noise);
    }

    #[test]
    fn crash_at_boundaries_still_equivalent() {
        for crash_after in [0, 1, 40] {
            let scenario = CrashScenario {
                pairs: 4,
                noise: 4,
                relations: 2,
                flights: 20,
                batch_size: 3,
                crash_after,
                ..CrashScenario::default()
            };
            let report = run_crash_restart(&scenario).unwrap();
            assert!(report.equivalent, "crash_after={crash_after}");
        }
    }

    #[test]
    fn flight_hotel_pair_compiles() {
        let r = WorkloadGen::pair_flight_hotel("a", "b", "Paris");
        let q = compile_sql(&r.sql).unwrap();
        assert_eq!(q.heads.len(), 2);
        assert_eq!(q.constraints.len(), 2);
        assert_eq!(q.memberships.len(), 2);
    }
}
