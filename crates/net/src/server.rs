//! The TCP front-end server: a single-threaded readiness reactor.
//!
//! One thread owns everything: the listening socket, every connection,
//! the [`WaiterSet`] driving every in-flight session future, and the
//! timer heap that reaps idle connections. Sockets are nonblocking and
//! epoll-registered (via the [`crate::poller`] wrapper over the
//! vendored syscall shim); the reactor sleeps in `epoll_wait` until a
//! socket is ready, a timer is due, or a completion lands — the
//! coordinator's completion signal is bridged into the epoll wait
//! through [`WaiterSet::set_wake_hook`] and an eventfd, so a deadline
//! expiry on the sweeper thread wakes the reactor immediately.
//!
//! This replaces the thread-per-connection design: at 2048 sessions
//! the old front-end carried ~31 KiB of handler-thread stack per
//! session and a 5 ms accept sleep-poll; the reactor carries a few
//! hundred bytes of state per connection, accepts on readiness, and
//! scales past 8192 sessions on one thread.
//!
//! ## Write backpressure
//!
//! Responses are never written under a lock and never block. Each
//! connection owns a bounded outbound queue: a response is written
//! straight to the socket while the kernel accepts it, the remainder
//! is queued, and `EPOLLOUT` interest is armed **only while the queue
//! is non-empty**. A peer that stops reading while completions keep
//! arriving fills its queue to [`ServerConfig::max_outbound_bytes`]
//! and is shed — a best-effort [`ErrorCode::Backpressure`] frame, then
//! disconnect — so one slow reader can no longer stall every session
//! behind a shared writer lock. Shed sessions lose nothing durable:
//! their pending queries stay registered and a `Resume` recovers them.
//!
//! ## Tenancy and session tokens
//!
//! Unchanged from the threaded front-end: the server installs its
//! [`TenantRegistry`] into the coordinator so quota checks happen
//! inside `submit`, and session tokens rotate on every handshake —
//! `Resume` must present the owner's current token, and a successful
//! resume re-arms pending queries via
//! [`ShardedCoordinator::reattach_async`] (stale handles resolve
//! [`CoordinationOutcome::Superseded`]).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use youtopia_core::{
    tenant_of, Clock, CoordinationOutcome, CoreError, DeadlineHost, DeadlineSweeper, QueryId,
    ShardedCoordinator, SubmitOptions, TenantRegistry, TenantStats, WaiterSet,
};

use crate::error::NetResult;
use crate::poller::{set_send_buffer, Interest, PollEvent, PollWaker, Poller};
use crate::protocol::{
    encode_frame, ErrorCode, FrameBuf, Outcome, Request, Response, TenantSummary,
    MAX_AUDIT_REPLY_ROWS, PROTOCOL_VERSION,
};

/// Epoll token for the listening socket (connection slots count up
/// from 0 and can never reach it).
const LISTENER_TOKEN: u64 = u64::MAX - 1;

/// How long a closing connection may take to drain its final frames
/// before the reactor force-closes it.
const CLOSE_LINGER_MILLIS: u64 = 5_000;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`NetServer::local_addr`]).
    pub addr: String,
    /// Default lifetime of a submission in milliseconds: a `Submit`
    /// without an explicit deadline gets `now + connection_timeout`,
    /// so queries stranded by a vanished client always expire.
    pub connection_timeout_millis: u64,
    /// A connection with no traffic in either direction for this long
    /// is reaped (its pending queries stay registered for `Resume`).
    /// Applies from accept, so a socket that never completes the
    /// handshake is bounded too.
    pub idle_timeout: Duration,
    /// Upper bound on the reactor's epoll sleep while any timer is
    /// armed and the clock cannot translate deadlines into wall time
    /// (mock clocks): mock-time advances are observed within one tick.
    /// With no timers armed the reactor sleeps indefinitely.
    pub tick: Duration,
    /// Per-connection outbound queue cap in bytes. A connection whose
    /// queued responses exceed this is shed as a slow peer
    /// ([`ErrorCode::Backpressure`]) rather than buffered without
    /// bound.
    pub max_outbound_bytes: usize,
    /// When set, shrink each accepted socket's kernel send buffer
    /// (`SO_SNDBUF`) to this many bytes. Tests use it to make
    /// backpressure reproducible without pushing hundreds of KiB
    /// through the default kernel buffer first.
    pub send_buffer_bytes: Option<u32>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            connection_timeout_millis: 30_000,
            idle_timeout: Duration::from_secs(300),
            tick: Duration::from_millis(25),
            max_outbound_bytes: 256 * 1024,
            send_buffer_bytes: None,
        }
    }
}

/// Shared counters the reactor updates and [`NetServer::stats`]
/// snapshots.
#[derive(Debug, Default)]
struct StatsInner {
    accepted: AtomicU64,
    active: AtomicU64,
    queued_bytes: AtomicU64,
    slow_peer_disconnects: AtomicU64,
    idle_reaped: AtomicU64,
}

/// A point-in-time snapshot of the server's connection counters (see
/// [`NetServer::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted since the server started.
    pub accepted: u64,
    /// Connections currently open.
    pub active: u64,
    /// Bytes currently queued for write across all connections (the
    /// backpressure depth; ~0 when every peer keeps up).
    pub queued_bytes: u64,
    /// Connections shed because their outbound queue overflowed
    /// [`ServerConfig::max_outbound_bytes`].
    pub slow_peer_disconnects: u64,
    /// Connections reaped by the idle timer.
    pub idle_reaped: u64,
}

/// The running server. Dropping it (or calling
/// [`NetServer::shutdown`]) wakes and joins the reactor thread.
pub struct NetServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    waker: Arc<PollWaker>,
    reactor: Option<std::thread::JoinHandle<()>>,
    stats: Arc<StatsInner>,
    _sweeper: DeadlineSweeper,
}

impl NetServer {
    /// Binds, installs `tenants` into the coordinator, spawns the
    /// deadline sweeper (timed by `clock`) and the reactor thread.
    pub fn spawn(
        co: Arc<ShardedCoordinator>,
        tenants: Arc<TenantRegistry>,
        config: ServerConfig,
        clock: Arc<dyn Clock>,
    ) -> NetResult<NetServer> {
        co.set_tenant_registry(Arc::clone(&tenants));
        let sweeper =
            DeadlineSweeper::spawn(Arc::clone(&co) as Arc<dyn DeadlineHost>, Arc::clone(&clock));

        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let poller = Poller::new()?;
        poller.add(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)?;
        let waker = poller.waker();

        let mut set = WaiterSet::new();
        {
            // bridge completion signals (including the sweeper thread's
            // deadline expiries) into the epoll wait
            let waker = poller.waker();
            set.set_wake_hook(move || waker.wake());
        }

        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(StatsInner::default());

        let mut reactor = Reactor {
            co,
            tenants,
            clock,
            config,
            listener,
            poller,
            set,
            directory: Directory::default(),
            conns: Vec::new(),
            free: Vec::new(),
            pending_free: Vec::new(),
            next_gen: 0,
            route: HashMap::new(),
            session_conn: HashMap::new(),
            timers: BinaryHeap::new(),
            events: Vec::new(),
            stats: Arc::clone(&stats),
            shutdown: Arc::clone(&shutdown),
        };
        let handle = std::thread::Builder::new()
            .name("net-reactor".into())
            .spawn(move || reactor.run())
            .expect("spawn reactor");

        Ok(NetServer {
            local_addr,
            shutdown,
            waker,
            reactor: Some(handle),
            stats,
            _sweeper: sweeper,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A snapshot of the connection counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            accepted: self.stats.accepted.load(Ordering::Relaxed),
            active: self.stats.active.load(Ordering::Relaxed),
            queued_bytes: self.stats.queued_bytes.load(Ordering::Relaxed),
            slow_peer_disconnects: self.stats.slow_peer_disconnects.load(Ordering::Relaxed),
            idle_reaped: self.stats.idle_reaped.load(Ordering::Relaxed),
        }
    }

    /// Wakes and joins the reactor, closing every connection.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        self.waker.wake();
        if let Some(h) = self.reactor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ------------------------------------------------------------------ //
// Reactor internals
// ------------------------------------------------------------------ //

/// Owner → current session token. Single-threaded now (only the
/// reactor touches it); tokens still rotate on every handshake.
#[derive(Default)]
struct Directory {
    next_session: u64,
    current: HashMap<String, u64>,
}

impl Directory {
    fn open(&mut self, owner: &str) -> u64 {
        self.next_session += 1;
        self.current.insert(owner.to_string(), self.next_session);
        self.next_session
    }

    fn resume(&mut self, owner: &str, token: u64) -> Option<u64> {
        match self.current.get(owner) {
            Some(&t) if t == token => {
                self.next_session += 1;
                self.current.insert(owner.to_string(), self.next_session);
                Some(self.next_session)
            }
            _ => None,
        }
    }
}

enum ConnState {
    /// Waiting for `Hello` or `Resume`.
    Handshake,
    /// Session established; `session` is the token in `session_conn`.
    Established { owner: String, session: u64 },
}

/// One connection's reactor-side state: a few hundred bytes plus
/// whatever is actually buffered, replacing a handler thread's stack.
struct Conn {
    stream: TcpStream,
    /// Generation stamp: timer-heap entries carry it so an entry from
    /// a previous occupant of this slot is recognised as stale.
    gen: u64,
    inbuf: FrameBuf,
    /// Encoded frames waiting for the socket; `front_off` is how much
    /// of the front frame has already been written.
    out: VecDeque<Vec<u8>>,
    front_off: usize,
    out_bytes: usize,
    /// Whether `EPOLLOUT` interest is currently registered.
    writable_armed: bool,
    state: ConnState,
    /// Draining final frames; no further input is processed and the
    /// connection closes when the queue empties (or the linger timer
    /// fires).
    closing: bool,
    /// Clock millis of the last traffic in either direction.
    last_activity: u64,
    /// Force-close deadline once `closing` (see `CLOSE_LINGER_MILLIS`).
    linger_due: u64,
    /// The due value of this connection's current timer-heap entry;
    /// entries whose due no longer matches are stale and dropped on
    /// pop.
    next_timer_due: u64,
}

struct Reactor {
    co: Arc<ShardedCoordinator>,
    tenants: Arc<TenantRegistry>,
    clock: Arc<dyn Clock>,
    config: ServerConfig,
    listener: TcpListener,
    poller: Poller,
    set: WaiterSet,
    directory: Directory,
    /// Slab of connections; the slot index is the epoll token.
    conns: Vec<Option<Conn>>,
    /// Slots free for reuse.
    free: Vec<usize>,
    /// Slots closed during the current event batch; moved to `free`
    /// only after the batch so a stale event cannot hit a reused slot.
    pending_free: Vec<usize>,
    next_gen: u64,
    /// Pending query → owning session token.
    route: HashMap<QueryId, u64>,
    /// Live session token → connection slot.
    session_conn: HashMap<u64, usize>,
    /// `(due_millis, slot, gen)` min-heap; entries are validated
    /// lazily against the connection's `next_timer_due` on pop.
    timers: BinaryHeap<Reverse<(u64, usize, u64)>>,
    events: Vec<PollEvent>,
    stats: Arc<StatsInner>,
    shutdown: Arc<AtomicBool>,
}

impl Reactor {
    fn run(&mut self) {
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            for (qid, outcome) in self.set.poll_ready() {
                self.deliver(qid, outcome);
            }
            self.process_timers();
            let timeout = self.next_timeout();
            let mut events = std::mem::take(&mut self.events);
            if self.poller.wait(&mut events, timeout).is_err() {
                return; // epoll itself failed: nothing to serve with
            }
            for ev in &events {
                if ev.token == LISTENER_TOKEN {
                    self.accept_ready();
                    continue;
                }
                let slot = ev.token as usize;
                if ev.readable {
                    self.read_ready(slot);
                }
                if ev.writable {
                    self.write_ready(slot);
                }
            }
            self.events = events;
            self.free.append(&mut self.pending_free);
        }
    }

    // ---- completions ------------------------------------------------

    /// Pushes a terminal outcome to whichever live session owns the
    /// query; sessions that disconnected without resuming miss the
    /// push (their queries expired under the sweeper to get here).
    fn deliver(&mut self, qid: QueryId, outcome: CoordinationOutcome) {
        if let Some(session) = self.route.remove(&qid) {
            self.push_to_session(session, qid, outcome);
        }
    }

    fn push_to_session(&mut self, session: u64, qid: QueryId, outcome: CoordinationOutcome) {
        if let Some(&slot) = self.session_conn.get(&session) {
            self.enqueue(
                slot,
                &Response::Done {
                    corr: 0,
                    qid: qid.0,
                    outcome: convert_outcome(outcome),
                },
            );
        }
    }

    // ---- timers -----------------------------------------------------

    fn idle_millis(&self) -> u64 {
        (self.config.idle_timeout.as_millis() as u64).max(1)
    }

    /// The deadline currently governing a connection.
    fn conn_due(conn: &Conn, idle_millis: u64) -> u64 {
        if conn.closing {
            conn.linger_due
        } else {
            conn.last_activity.saturating_add(idle_millis)
        }
    }

    /// Pops due timer entries: stale ones are dropped, refreshed ones
    /// re-pushed at their real deadline, and genuinely expired
    /// connections reaped.
    fn process_timers(&mut self) {
        let now = self.clock.now_millis();
        let idle = self.idle_millis();
        while let Some(&Reverse((due, slot, gen))) = self.timers.peek() {
            if due > now {
                break;
            }
            self.timers.pop();
            let Some(conn) = self.conns.get(slot).and_then(Option::as_ref) else {
                continue;
            };
            if conn.gen != gen || conn.next_timer_due != due {
                continue; // stale entry from a refresh or a prior occupant
            }
            let actual = Reactor::conn_due(conn, idle);
            if actual <= now {
                if !conn.closing {
                    self.stats.idle_reaped.fetch_add(1, Ordering::Relaxed);
                }
                self.close(slot);
            } else {
                // inbound activity moved the deadline since the entry
                // was pushed: re-arm at the real one
                self.arm_timer(slot, actual);
            }
        }
    }

    fn arm_timer(&mut self, slot: usize, due: u64) {
        if let Some(conn) = self.conns[slot].as_mut() {
            conn.next_timer_due = due;
            self.timers.push(Reverse((due, slot, conn.gen)));
        }
    }

    /// How long the epoll wait may sleep: until the earliest live
    /// timer, one `tick` when the clock cannot map deadlines to wall
    /// time (mock clocks), or indefinitely with no timers armed.
    fn next_timeout(&mut self) -> Option<Duration> {
        loop {
            let &Reverse((due, slot, gen)) = self.timers.peek()?;
            match self.conns.get(slot).and_then(Option::as_ref) {
                Some(c) if c.gen == gen && c.next_timer_due == due => {
                    return Some(self.clock.timeout_until(due).unwrap_or(self.config.tick));
                }
                _ => {
                    self.timers.pop(); // prune stale entries eagerly
                }
            }
        }
    }

    // ---- accept -----------------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => self.register_conn(stream),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // transient per-connection failure (e.g. aborted before
                // accept); the listener stays registered
                Err(_) => return,
            }
        }
    }

    fn register_conn(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        if let Some(bytes) = self.config.send_buffer_bytes {
            let _ = set_send_buffer(stream.as_raw_fd(), bytes);
        }
        let slot = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.conns.len() - 1
        });
        if self
            .poller
            .add(stream.as_raw_fd(), slot as u64, Interest::READ)
            .is_err()
        {
            self.free.push(slot);
            return;
        }
        self.next_gen += 1;
        let now = self.clock.now_millis();
        self.conns[slot] = Some(Conn {
            stream,
            gen: self.next_gen,
            inbuf: FrameBuf::new(),
            out: VecDeque::new(),
            front_off: 0,
            out_bytes: 0,
            writable_armed: false,
            state: ConnState::Handshake,
            closing: false,
            last_activity: now,
            linger_due: 0,
            next_timer_due: 0,
        });
        self.stats.accepted.fetch_add(1, Ordering::Relaxed);
        self.stats.active.fetch_add(1, Ordering::Relaxed);
        let due = now.saturating_add(self.idle_millis());
        self.arm_timer(slot, due);
    }

    // ---- reads ------------------------------------------------------

    fn read_ready(&mut self, slot: usize) {
        let mut payloads = Vec::new();
        let mut eof = false;
        let mut frame_error: Option<String> = None;
        {
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            let now = self.clock.now_millis();
            let mut chunk = [0u8; 16 * 1024];
            loop {
                match (&conn.stream).read(&mut chunk) {
                    Ok(0) => {
                        eof = true;
                        break;
                    }
                    Ok(n) => {
                        conn.last_activity = now;
                        if conn.closing {
                            continue; // discard input while draining
                        }
                        conn.inbuf.push(&chunk[..n]);
                        loop {
                            match conn.inbuf.next_frame() {
                                Ok(Some(payload)) => payloads.push(payload),
                                Ok(None) => break,
                                Err(e) => {
                                    frame_error = Some(e.to_string());
                                    break;
                                }
                            }
                        }
                        if frame_error.is_some() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        eof = true; // connection-level failure: treat as gone
                        break;
                    }
                }
            }
        }
        // complete frames first — a peer may send Bye and close in one
        // burst, and the frames precede the EOF
        for payload in payloads {
            if self.conns.get(slot).and_then(Option::as_ref).is_none() {
                return; // a frame closed the connection (Bye, shed, ...)
            }
            self.handle_frame(slot, &payload);
        }
        if let Some(msg) = frame_error {
            self.protocol_error(slot, 0, msg);
            return;
        }
        if eof {
            self.close(slot);
        }
    }

    // ---- writes -----------------------------------------------------

    fn write_ready(&mut self, slot: usize) {
        self.flush(slot);
    }

    /// Frames and queues a response, writing as much as the socket
    /// will take right now. Overflowing the queue sheds the peer.
    fn enqueue(&mut self, slot: usize, resp: &Response) {
        let frame = encode_frame(&resp.encode());
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        if conn.closing {
            return; // final frames already queued; nothing new after
        }
        if conn.out_bytes + frame.len() > self.config.max_outbound_bytes {
            // slow peer: it stopped reading while completions kept
            // arriving. Shed it — never buffer without bound, never
            // block the reactor. Best-effort close notice; the peer's
            // pending queries stay registered for a Resume.
            let notice = encode_frame(
                &Response::Error {
                    corr: 0,
                    code: ErrorCode::Backpressure,
                    message: format!(
                        "outbound queue overflow ({} bytes queued); resume to recover",
                        conn.out_bytes
                    ),
                }
                .encode(),
            );
            let _ = (&conn.stream).write(&notice);
            self.stats
                .slow_peer_disconnects
                .fetch_add(1, Ordering::Relaxed);
            self.close(slot);
            return;
        }
        conn.last_activity = self.clock.now_millis();
        conn.out_bytes += frame.len();
        self.stats
            .queued_bytes
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        conn.out.push_back(frame);
        self.flush(slot);
    }

    /// Writes queued frames until the socket stops accepting, then
    /// reconciles `EPOLLOUT` interest with whether anything is left.
    fn flush(&mut self, slot: usize) {
        let mut failed = false;
        let mut close_now = false;
        {
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            while let Some(front) = conn.out.front() {
                match (&conn.stream).write(&front[conn.front_off..]) {
                    Ok(0) => {
                        failed = true;
                        break;
                    }
                    Ok(n) => {
                        conn.front_off += n;
                        conn.out_bytes -= n;
                        self.stats
                            .queued_bytes
                            .fetch_sub(n as u64, Ordering::Relaxed);
                        if conn.front_off == front.len() {
                            conn.out.pop_front();
                            conn.front_off = 0;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
            if !failed {
                let want_writable = !conn.out.is_empty();
                if want_writable != conn.writable_armed
                    && self
                        .poller
                        .modify(
                            conn.stream.as_raw_fd(),
                            slot as u64,
                            Interest {
                                readable: true,
                                writable: want_writable,
                            },
                        )
                        .is_ok()
                {
                    conn.writable_armed = want_writable;
                }
                close_now = conn.closing && conn.out.is_empty();
            }
        }
        if failed || close_now {
            self.close(slot);
        }
    }

    // ---- lifecycle --------------------------------------------------

    /// Queues a final frame and lets the connection drain before
    /// closing (bounded by the linger timer).
    fn finish(&mut self, slot: usize, resp: &Response) {
        self.enqueue(slot, resp);
        let now = self.clock.now_millis();
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return; // enqueue shed it
        };
        if conn.out.is_empty() {
            self.close(slot);
            return;
        }
        conn.closing = true;
        conn.linger_due = now.saturating_add(CLOSE_LINGER_MILLIS);
        let due = conn.linger_due;
        self.arm_timer(slot, due);
    }

    fn protocol_error(&mut self, slot: usize, corr: u64, message: String) {
        self.finish(
            slot,
            &Response::Error {
                corr,
                code: ErrorCode::Protocol,
                message,
            },
        );
    }

    /// Tears a connection down immediately: deregisters, drops the
    /// socket and any queued bytes, and parks the slot for reuse after
    /// the current event batch.
    fn close(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].take() else {
            return;
        };
        let _ = self.poller.delete(conn.stream.as_raw_fd());
        self.stats.active.fetch_sub(1, Ordering::Relaxed);
        self.stats
            .queued_bytes
            .fetch_sub(conn.out_bytes as u64, Ordering::Relaxed);
        if let ConnState::Established { session, .. } = conn.state {
            if self.session_conn.get(&session) == Some(&slot) {
                self.session_conn.remove(&session);
            }
        }
        self.pending_free.push(slot);
    }

    // ---- frame dispatch ---------------------------------------------

    fn handle_frame(&mut self, slot: usize, payload: &[u8]) {
        let request = match Request::decode(payload) {
            Ok(request) => request,
            Err(e) => {
                self.protocol_error(slot, 0, e.to_string());
                return;
            }
        };
        let established = {
            let Some(conn) = self.conns.get(slot).and_then(Option::as_ref) else {
                return;
            };
            match &conn.state {
                ConnState::Handshake => None,
                ConnState::Established { owner, session } => Some((owner.clone(), *session)),
            }
        };
        match established {
            None => self.handle_handshake(slot, request),
            Some((owner, session)) => self.handle_established(slot, &owner, session, request),
        }
    }

    fn handle_handshake(&mut self, slot: usize, request: Request) {
        match request {
            Request::Hello { version, owner } if version == PROTOCOL_VERSION => {
                let session = self.directory.open(&owner);
                self.session_conn.insert(session, slot);
                if let Some(conn) = self.conns[slot].as_mut() {
                    conn.state = ConnState::Established { owner, session };
                }
                self.enqueue(
                    slot,
                    &Response::Welcome {
                        session,
                        reattached: 0,
                    },
                );
            }
            Request::Resume {
                version,
                owner,
                session: token,
            } if version == PROTOCOL_VERSION => {
                let Some(session) = self.directory.resume(&owner, token) else {
                    self.finish(
                        slot,
                        &Response::Error {
                            corr: 0,
                            code: ErrorCode::BadSession,
                            message: format!("stale or unknown session token {token}"),
                        },
                    );
                    return;
                };
                self.session_conn.insert(session, slot);
                if let Some(conn) = self.conns[slot].as_mut() {
                    conn.state = ConnState::Established {
                        owner: owner.clone(),
                        session,
                    };
                }
                let futures = self.co.reattach_async(&owner);
                let reattached = futures.len() as u32;
                for future in futures {
                    self.register_future(session, future);
                }
                self.enqueue(
                    slot,
                    &Response::Welcome {
                        session,
                        reattached,
                    },
                );
            }
            Request::Hello { .. } | Request::Resume { .. } => {
                self.protocol_error(
                    slot,
                    0,
                    format!("unsupported protocol version (want {PROTOCOL_VERSION})"),
                );
            }
            _ => {
                self.protocol_error(
                    slot,
                    0,
                    "handshake required: send Hello or Resume first".into(),
                );
            }
        }
    }

    fn handle_established(&mut self, slot: usize, owner: &str, session: u64, request: Request) {
        match request {
            Request::Submit {
                corr,
                deadline,
                sql,
            } => {
                let deadline = deadline.unwrap_or_else(|| {
                    self.clock.now_millis() + self.config.connection_timeout_millis
                });
                let opts = SubmitOptions::with_deadline(deadline);
                match self.co.submit_sql_async_with(owner, &sql, opts) {
                    Ok(mut future) => {
                        let qid = future.id();
                        if let Some(outcome) = future.try_take() {
                            // answered on arrival: reply directly, no
                            // waiter-set round trip
                            self.enqueue(
                                slot,
                                &Response::Done {
                                    corr,
                                    qid: qid.0,
                                    outcome: convert_outcome(outcome),
                                },
                            );
                        } else {
                            self.register_future(session, future);
                            self.enqueue(slot, &Response::Accepted { corr, qid: qid.0 });
                        }
                    }
                    Err(e) => self.enqueue(slot, &error_reply(corr, &e)),
                }
            }
            Request::Cancel { corr, qid } => {
                let resp = match self.co.cancel(QueryId(qid)) {
                    Ok(()) => Response::CancelOk { corr },
                    Err(e) => error_reply(corr, &e),
                };
                self.enqueue(slot, &resp);
            }
            Request::Stats { corr } => {
                let stats = self.tenants.tenant_stats(tenant_of(owner));
                self.enqueue(
                    slot,
                    &Response::StatsReply {
                        corr,
                        found: stats.is_some(),
                        tenant: stats.as_ref().map(summarize).unwrap_or_default(),
                    },
                );
            }
            Request::AuditQuery {
                corr,
                tenant,
                limit,
            } => {
                // tenant scoping: a session reads only its own ledger
                let resp = if tenant != tenant_of(owner) {
                    Response::Error {
                        corr,
                        code: ErrorCode::Forbidden,
                        message: format!(
                            "tenant '{tenant}' is not this session's tenant \
                             ('{}')",
                            tenant_of(owner)
                        ),
                    }
                } else {
                    let limit = limit.min(MAX_AUDIT_REPLY_ROWS) as usize;
                    let rows = youtopia_core::tenant_audit(self.co.db(), &tenant, limit);
                    Response::AuditReply { corr, rows }
                };
                self.enqueue(slot, &resp);
            }
            Request::Bye { corr } => {
                self.finish(slot, &Response::ByeOk { corr });
            }
            Request::Hello { .. } | Request::Resume { .. } => {
                self.protocol_error(slot, 0, "session already established".into());
            }
        }
    }

    /// Routes a pending future to `session` in the waiter set. If a
    /// newer handle displaces an old one (owner reattached), the stale
    /// handle is already terminal — its `Superseded` outcome is pushed
    /// to the session that used to own the query.
    fn register_future(&mut self, session: u64, future: youtopia_core::CoordinationFuture) {
        let qid = future.id();
        let prev = self.route.insert(qid, session);
        if let Some(mut old) = self.set.insert(future) {
            if let (Some(outcome), Some(prev_session)) = (old.try_take(), prev) {
                if prev_session != session {
                    self.push_to_session(prev_session, qid, outcome);
                }
            }
        }
    }
}

fn convert_outcome(outcome: CoordinationOutcome) -> Outcome {
    match outcome {
        CoordinationOutcome::Answered(n) => Outcome::Answered { answers: n.answers },
        CoordinationOutcome::Cancelled => Outcome::Cancelled,
        CoordinationOutcome::Expired => Outcome::Expired,
        CoordinationOutcome::Superseded => Outcome::Superseded,
    }
}

fn summarize(stats: &TenantStats) -> TenantSummary {
    TenantSummary {
        submitted: stats.submitted,
        answered: stats.answered,
        cancelled: stats.cancelled,
        expired: stats.expired,
        aborted: stats.aborted,
        rejected: stats.rejected,
        in_flight: stats.in_flight as u64,
        standing: stats.standing as u64,
    }
}

fn error_reply(corr: u64, e: &CoreError) -> Response {
    let code = match e {
        CoreError::QuotaExceeded { .. } => ErrorCode::Quota,
        CoreError::UnknownQuery(_) => ErrorCode::UnknownQuery,
        CoreError::Parse(_)
        | CoreError::NotEntangled
        | CoreError::Compile(_)
        | CoreError::Unsafe(_) => ErrorCode::Rejected,
        _ => ErrorCode::Internal,
    };
    Response::Error {
        corr,
        code,
        message: e.to_string(),
    }
}
