//! The TCP front-end server.
//!
//! One handler thread per connection parses frames and calls the
//! coordinator's async submission API; **every** in-flight future from
//! **every** session is driven by a single event-loop thread owning
//! one [`WaiterSet`] — the session-scale discipline the async PR
//! established, now behind a socket. Completions are pushed to
//! whichever live session currently owns the query (`Done` frames with
//! `corr = 0`); sessions that disconnected without resuming simply
//! miss the push, and their queries expire under the deadline sweeper
//! the server spawns.
//!
//! ## Tenancy
//!
//! The server installs its [`TenantRegistry`] into the coordinator, so
//! quota checks (max in-flight, standing cap, submit-rate bucket)
//! happen inside `submit` — before a query id is even allocated — and
//! surface here as [`ErrorCode::Quota`] replies.
//!
//! ## Session tokens
//!
//! `Hello` issues a fresh session token per owner; `Resume` must
//! present the owner's **current** token and is answered with a new
//! one (tokens rotate on every reconnect, so a stale client cannot
//! hijack a session that already resumed elsewhere). A successful
//! resume re-arms the owner's pending queries via
//! [`ShardedCoordinator::reattach_async`]; handles held by the
//! superseded session resolve [`CoordinationOutcome::Superseded`].

use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use parking_lot::Mutex;

use youtopia_core::{
    tenant_of, Clock, CoordinationFuture, CoordinationOutcome, CoreError, DeadlineHost,
    DeadlineSweeper, QueryId, ShardedCoordinator, SubmitOptions, TenantRegistry, TenantStats,
    WaiterSet,
};

use crate::error::{NetError, NetResult};
use crate::protocol::{
    write_frame, ErrorCode, FrameReader, Outcome, ReadEvent, Request, Response, TenantSummary,
    PROTOCOL_VERSION,
};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`NetServer::local_addr`]).
    pub addr: String,
    /// Default lifetime of a submission in milliseconds: a `Submit`
    /// without an explicit deadline gets `now + connection_timeout`,
    /// so queries stranded by a vanished client always expire.
    pub connection_timeout_millis: u64,
    /// Socket read timeout for handler threads (drives how quickly
    /// they notice shutdown); the default is fine outside tests.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            connection_timeout_millis: 30_000,
            read_timeout: Duration::from_millis(25),
        }
    }
}

/// The per-session half shared between its handler thread and the
/// event loop: a serialized writer plus a liveness flag flipped on
/// disconnect or write failure.
struct SessionShared {
    writer: Mutex<TcpStream>,
    alive: AtomicBool,
}

impl SessionShared {
    /// Frames and writes a response; marks the session dead on error.
    fn send(&self, resp: &Response) {
        if !self.alive.load(Ordering::Acquire) {
            return;
        }
        let mut writer = self.writer.lock();
        if write_frame(&mut *writer, &resp.encode()).is_err() {
            self.alive.store(false, Ordering::Release);
        }
    }
}

/// Messages from handler threads to the event loop.
enum LoopMsg {
    /// A session opened (fresh or resumed).
    Open {
        session: u64,
        shared: Arc<SessionShared>,
    },
    /// A pending future now owned by `session`.
    Register {
        session: u64,
        future: CoordinationFuture,
    },
    /// The session's connection ended (its queries stay registered).
    Close { session: u64 },
}

/// Owner → current session token. Tokens rotate on every handshake;
/// `Resume` must present the latest.
#[derive(Default)]
struct Directory {
    next_session: AtomicU64,
    current: Mutex<HashMap<String, u64>>,
}

impl Directory {
    fn open(&self, owner: &str) -> u64 {
        let session = self.next_session.fetch_add(1, Ordering::Relaxed) + 1;
        self.current.lock().insert(owner.to_string(), session);
        session
    }

    fn resume(&self, owner: &str, token: u64) -> Option<u64> {
        let mut current = self.current.lock();
        match current.get(owner) {
            Some(&t) if t == token => {
                let session = self.next_session.fetch_add(1, Ordering::Relaxed) + 1;
                current.insert(owner.to_string(), session);
                Some(session)
            }
            _ => None,
        }
    }
}

/// The running server. Dropping it (or calling
/// [`NetServer::shutdown`]) stops the accept loop, the event loop, and
/// every handler thread.
pub struct NetServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    loop_handle: Option<std::thread::JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    _sweeper: DeadlineSweeper,
}

impl NetServer {
    /// Binds, installs `tenants` into the coordinator, spawns the
    /// deadline sweeper (timed by `clock`), the event loop, and the
    /// accept loop.
    pub fn spawn(
        co: Arc<ShardedCoordinator>,
        tenants: Arc<TenantRegistry>,
        config: ServerConfig,
        clock: Arc<dyn Clock>,
    ) -> NetResult<NetServer> {
        co.set_tenant_registry(Arc::clone(&tenants));
        let sweeper =
            DeadlineSweeper::spawn(Arc::clone(&co) as Arc<dyn DeadlineHost>, Arc::clone(&clock));

        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let directory = Arc::new(Directory::default());
        let (tx, rx) = mpsc::channel::<LoopMsg>();
        let handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));

        let loop_handle = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("net-event-loop".into())
                .spawn(move || event_loop(rx, shutdown))
                .expect("spawn event loop")
        };

        let accept_handle = {
            let shutdown = Arc::clone(&shutdown);
            let handlers = Arc::clone(&handlers);
            let config = config.clone();
            std::thread::Builder::new()
                .name("net-accept".into())
                .spawn(move || {
                    while !shutdown.load(Ordering::Acquire) {
                        match listener.accept() {
                            Ok((stream, _)) => {
                                let ctx = HandlerCtx {
                                    co: Arc::clone(&co),
                                    tenants: Arc::clone(&tenants),
                                    clock: Arc::clone(&clock),
                                    directory: Arc::clone(&directory),
                                    tx: tx.clone(),
                                    shutdown: Arc::clone(&shutdown),
                                    config: config.clone(),
                                };
                                let handle = std::thread::Builder::new()
                                    .name("net-session".into())
                                    .spawn(move || handle_connection(stream, ctx))
                                    .expect("spawn session handler");
                                handlers.lock().push(handle);
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(5));
                            }
                            Err(_) => std::thread::sleep(Duration::from_millis(5)),
                        }
                    }
                })
                .expect("spawn accept loop")
        };

        Ok(NetServer {
            local_addr,
            shutdown,
            accept_handle: Some(accept_handle),
            loop_handle: Some(loop_handle),
            handlers,
            _sweeper: sweeper,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, disconnects the event loop, and joins every
    /// thread the server spawned. Idempotent.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        for h in std::mem::take(&mut *self.handlers.lock()) {
            let _ = h.join();
        }
        if let Some(h) = self.loop_handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The single-threaded event loop: owns the one [`WaiterSet`] driving
/// every in-flight session future, routes completions to the owning
/// live session, and drops completions whose session is gone.
fn event_loop(rx: mpsc::Receiver<LoopMsg>, shutdown: Arc<AtomicBool>) {
    let mut set = WaiterSet::new();
    let mut sessions: HashMap<u64, Arc<SessionShared>> = HashMap::new();
    let mut route: HashMap<QueryId, u64> = HashMap::new();

    let deliver = |sessions: &HashMap<u64, Arc<SessionShared>>,
                   session: u64,
                   qid: QueryId,
                   outcome: CoordinationOutcome| {
        if let Some(shared) = sessions.get(&session) {
            shared.send(&Response::Done {
                corr: 0,
                qid: qid.0,
                outcome: convert_outcome(outcome),
            });
        }
    };

    loop {
        // drain control messages first so registrations race ahead of
        // the harvest
        loop {
            match rx.try_recv() {
                Ok(LoopMsg::Open { session, shared }) => {
                    sessions.insert(session, shared);
                }
                Ok(LoopMsg::Register { session, future }) => {
                    let qid = future.id();
                    let prev = route.insert(qid, session);
                    if let Some(mut old) = set.insert(future) {
                        // a newer handle displaced the old one (owner
                        // reattached): the stale handle is already
                        // terminal — push its outcome (Superseded) to
                        // the session that used to own the query
                        if let (Some(outcome), Some(prev_session)) = (old.try_take(), prev) {
                            if prev_session != session {
                                deliver(&sessions, prev_session, qid, outcome);
                            }
                        }
                    }
                }
                Ok(LoopMsg::Close { session }) => {
                    sessions.remove(&session);
                }
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => return,
            }
        }

        for (qid, outcome) in set.wait_timeout(Duration::from_millis(10)) {
            if let Some(session) = route.remove(&qid) {
                deliver(&sessions, session, qid, outcome);
            }
        }

        if shutdown.load(Ordering::Acquire) {
            return;
        }
    }
}

fn convert_outcome(outcome: CoordinationOutcome) -> Outcome {
    match outcome {
        CoordinationOutcome::Answered(n) => Outcome::Answered { answers: n.answers },
        CoordinationOutcome::Cancelled => Outcome::Cancelled,
        CoordinationOutcome::Expired => Outcome::Expired,
        CoordinationOutcome::Superseded => Outcome::Superseded,
    }
}

fn summarize(stats: &TenantStats) -> TenantSummary {
    TenantSummary {
        submitted: stats.submitted,
        answered: stats.answered,
        cancelled: stats.cancelled,
        expired: stats.expired,
        aborted: stats.aborted,
        rejected: stats.rejected,
        in_flight: stats.in_flight as u64,
        standing: stats.standing as u64,
    }
}

fn error_reply(corr: u64, e: &CoreError) -> Response {
    let code = match e {
        CoreError::QuotaExceeded { .. } => ErrorCode::Quota,
        CoreError::UnknownQuery(_) => ErrorCode::UnknownQuery,
        CoreError::Parse(_)
        | CoreError::NotEntangled
        | CoreError::Compile(_)
        | CoreError::Unsafe(_) => ErrorCode::Rejected,
        _ => ErrorCode::Internal,
    };
    Response::Error {
        corr,
        code,
        message: e.to_string(),
    }
}

/// Everything a handler thread needs, bundled to keep the spawn tidy.
struct HandlerCtx {
    co: Arc<ShardedCoordinator>,
    tenants: Arc<TenantRegistry>,
    clock: Arc<dyn Clock>,
    directory: Arc<Directory>,
    tx: mpsc::Sender<LoopMsg>,
    shutdown: Arc<AtomicBool>,
    config: ServerConfig,
}

fn handle_connection(stream: TcpStream, ctx: HandlerCtx) {
    let _ = stream.set_read_timeout(Some(ctx.config.read_timeout));
    let Ok(writer) = stream.try_clone() else {
        return;
    };
    let shared = Arc::new(SessionShared {
        writer: Mutex::new(writer),
        alive: AtomicBool::new(true),
    });
    let mut reader = FrameReader::new(stream);

    // ---- handshake: Hello or Resume ---------------------------------
    let (owner, session) = loop {
        if ctx.shutdown.load(Ordering::Acquire) {
            return;
        }
        match reader.read_event() {
            Ok(ReadEvent::Frame(payload)) => match Request::decode(&payload) {
                Ok(Request::Hello { version, owner }) if version == PROTOCOL_VERSION => {
                    let session = ctx.directory.open(&owner);
                    let _ = ctx.tx.send(LoopMsg::Open {
                        session,
                        shared: Arc::clone(&shared),
                    });
                    shared.send(&Response::Welcome {
                        session,
                        reattached: 0,
                    });
                    break (owner, session);
                }
                Ok(Request::Resume {
                    version,
                    owner,
                    session: token,
                }) if version == PROTOCOL_VERSION => {
                    let Some(session) = ctx.directory.resume(&owner, token) else {
                        shared.send(&Response::Error {
                            corr: 0,
                            code: ErrorCode::BadSession,
                            message: format!("stale or unknown session token {token}"),
                        });
                        return;
                    };
                    let _ = ctx.tx.send(LoopMsg::Open {
                        session,
                        shared: Arc::clone(&shared),
                    });
                    let futures = ctx.co.reattach_async(&owner);
                    let reattached = futures.len() as u32;
                    for future in futures {
                        let _ = ctx.tx.send(LoopMsg::Register { session, future });
                    }
                    shared.send(&Response::Welcome {
                        session,
                        reattached,
                    });
                    break (owner, session);
                }
                Ok(Request::Hello { .. }) | Ok(Request::Resume { .. }) => {
                    shared.send(&Response::Error {
                        corr: 0,
                        code: ErrorCode::Protocol,
                        message: format!("unsupported protocol version (want {PROTOCOL_VERSION})"),
                    });
                    return;
                }
                Ok(_) => {
                    shared.send(&Response::Error {
                        corr: 0,
                        code: ErrorCode::Protocol,
                        message: "handshake required: send Hello or Resume first".into(),
                    });
                    return;
                }
                Err(e) => {
                    shared.send(&Response::Error {
                        corr: 0,
                        code: ErrorCode::Protocol,
                        message: e.to_string(),
                    });
                    return;
                }
            },
            Ok(ReadEvent::Timeout) => continue,
            Ok(ReadEvent::Eof) | Err(_) => return,
        }
    };

    // ---- steady state ------------------------------------------------
    loop {
        if ctx.shutdown.load(Ordering::Acquire) || !shared.alive.load(Ordering::Acquire) {
            break;
        }
        let payload = match reader.read_event() {
            Ok(ReadEvent::Frame(payload)) => payload,
            Ok(ReadEvent::Timeout) => continue,
            Ok(ReadEvent::Eof) => break,
            Err(NetError::Frame(msg)) => {
                shared.send(&Response::Error {
                    corr: 0,
                    code: ErrorCode::Protocol,
                    message: msg,
                });
                break;
            }
            Err(_) => break,
        };
        let request = match Request::decode(&payload) {
            Ok(request) => request,
            Err(e) => {
                shared.send(&Response::Error {
                    corr: 0,
                    code: ErrorCode::Protocol,
                    message: e.to_string(),
                });
                break;
            }
        };
        match request {
            Request::Submit {
                corr,
                deadline,
                sql,
            } => {
                let deadline = deadline.unwrap_or_else(|| {
                    ctx.clock.now_millis() + ctx.config.connection_timeout_millis
                });
                let opts = SubmitOptions::with_deadline(deadline);
                match ctx.co.submit_sql_async_with(&owner, &sql, opts) {
                    Ok(mut future) => {
                        let qid = future.id();
                        if let Some(outcome) = future.try_take() {
                            // answered on arrival: reply directly, no
                            // event-loop round trip
                            shared.send(&Response::Done {
                                corr,
                                qid: qid.0,
                                outcome: convert_outcome(outcome),
                            });
                        } else {
                            let _ = ctx.tx.send(LoopMsg::Register { session, future });
                            shared.send(&Response::Accepted { corr, qid: qid.0 });
                        }
                    }
                    Err(e) => shared.send(&error_reply(corr, &e)),
                }
            }
            Request::Cancel { corr, qid } => match ctx.co.cancel(QueryId(qid)) {
                Ok(()) => shared.send(&Response::CancelOk { corr }),
                Err(e) => shared.send(&error_reply(corr, &e)),
            },
            Request::Stats { corr } => {
                let stats = ctx.tenants.tenant_stats(tenant_of(&owner));
                shared.send(&Response::StatsReply {
                    corr,
                    found: stats.is_some(),
                    tenant: stats.as_ref().map(summarize).unwrap_or_default(),
                });
            }
            Request::Bye { corr } => {
                shared.send(&Response::ByeOk { corr });
                break;
            }
            Request::Hello { .. } | Request::Resume { .. } => {
                shared.send(&Response::Error {
                    corr: 0,
                    code: ErrorCode::Protocol,
                    message: "session already established".into(),
                });
                break;
            }
        }
    }

    let _ = shared.writer.lock().flush();
    shared.alive.store(false, Ordering::Release);
    let _ = ctx.tx.send(LoopMsg::Close { session });
}
