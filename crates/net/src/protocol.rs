//! The wire protocol: length-prefixed, checksummed frames carrying
//! versioned request/response payloads.
//!
//! ## Frame format
//!
//! Every frame mirrors the WAL's framing discipline byte for byte:
//!
//! ```text
//! [ u32 payload length | u32 FNV-1a(len_be ∥ payload) | payload ]
//! ```
//!
//! The checksum covers the big-endian length prefix *and* the payload
//! (same construction as `youtopia_storage`'s WAL frames), so a frame
//! whose length field was corrupted in flight fails the checksum even
//! when the corrupted length happens to describe a readable span.
//!
//! ## Robustness discipline
//!
//! Attacker-controlled lengths never drive allocations (the PR 1
//! `Tuple::decode` rule, applied to the whole surface):
//!
//! * a length prefix above [`MAX_FRAME_BYTES`] is rejected on sight —
//!   the reader buffers only bytes actually received, so a `0xFFFFFFFF`
//!   prefix costs the attacker bandwidth, not the server memory;
//! * every count or string length inside a payload is validated
//!   against the bytes remaining before any `Vec` reserve;
//! * payloads must be consumed exactly: trailing bytes are an error,
//!   as is an unknown message tag or protocol version.

use bytes::{Buf, BufMut, BytesMut};

use youtopia_core::AuditRecord;
use youtopia_storage::codec::{get_str, get_u64, put_str};
use youtopia_storage::Tuple;

use crate::error::NetError;

/// Protocol version carried by `Hello`/`Resume`; the server rejects
/// anything else.
pub const PROTOCOL_VERSION: u16 = 1;

/// Upper bound on a frame payload. A length prefix above this is a
/// protocol error, rejected before any allocation.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// FNV-1a over the big-endian length prefix followed by the payload —
/// the WAL's frame checksum, reimplemented here so the two framing
/// layers stay bit-identical (the WAL's own copy is private to it).
pub fn frame_checksum(len: u32, payload: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for b in len.to_be_bytes().iter().chain(payload) {
        hash ^= *b as u32;
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// Wraps a payload in a frame: `len | checksum | payload`.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    debug_assert!(payload.len() <= MAX_FRAME_BYTES);
    let mut out = Vec::with_capacity(8 + payload.len());
    out.put_u32(payload.len() as u32);
    out.put_u32(frame_checksum(payload.len() as u32, payload));
    out.extend_from_slice(payload);
    out
}

/// Frames a payload and writes it to the transport in one call.
pub fn write_frame<W: std::io::Write>(w: &mut W, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&encode_frame(payload))
}

/// Tries to split one complete frame off the front of `buf`.
///
/// Returns `Ok(Some((payload, consumed)))` when a full, checksummed
/// frame is buffered, `Ok(None)` when more bytes are needed, and an
/// error for an oversized length prefix, an empty frame, or a checksum
/// mismatch. Never allocates from the length prefix alone.
pub fn split_frame(buf: &[u8]) -> Result<Option<(Vec<u8>, usize)>, NetError> {
    if buf.len() < 8 {
        return Ok(None);
    }
    let mut header = buf;
    let len = header.get_u32() as usize;
    let checksum = header.get_u32();
    if len == 0 {
        return Err(NetError::Frame("empty frame payload".into()));
    }
    if len > MAX_FRAME_BYTES {
        return Err(NetError::Frame(format!(
            "frame length {len} exceeds the {MAX_FRAME_BYTES}-byte limit"
        )));
    }
    if buf.len() < 8 + len {
        return Ok(None);
    }
    let payload = &buf[8..8 + len];
    if frame_checksum(len as u32, payload) != checksum {
        return Err(NetError::Frame("frame checksum mismatch".into()));
    }
    Ok(Some((payload.to_vec(), 8 + len)))
}

// ------------------------------------------------------------------ //
// Messages
// ------------------------------------------------------------------ //

/// Client → server messages. Every variant except the handshakes
/// carries a client-chosen correlation id echoed in the reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Opens a fresh session for `owner` (the coordinator owner
    /// string; its tenant is the prefix before the first `/`).
    Hello {
        /// Must equal [`PROTOCOL_VERSION`].
        version: u16,
        /// Owner this session submits as.
        owner: String,
    },
    /// Reconnects: presents the session token issued by the previous
    /// `Welcome` for `owner`; the server supersedes the stranded
    /// session's futures via `reattach_async`.
    Resume {
        /// Must equal [`PROTOCOL_VERSION`].
        version: u16,
        /// Owner whose pending queries to reattach.
        owner: String,
        /// Token from the last `Welcome` for this owner.
        session: u64,
    },
    /// Submits one entangled query.
    Submit {
        /// Correlation id echoed in the reply.
        corr: u64,
        /// Absolute deadline in coordinator-clock millis; `None` lets
        /// the server apply its connection-timeout default.
        deadline: Option<u64>,
        /// The entangled SQL text.
        sql: String,
    },
    /// Cancels a pending query by id.
    Cancel {
        /// Correlation id echoed in the reply.
        corr: u64,
        /// The query to cancel.
        qid: u64,
    },
    /// Requests this session's tenant counters.
    Stats {
        /// Correlation id echoed in the reply.
        corr: u64,
    },
    /// Ends the session cleanly (pending queries stay registered for a
    /// later `Resume` until their deadlines reap them).
    Bye {
        /// Correlation id echoed in the reply.
        corr: u64,
    },
    /// Requests the most recent `sys_audit` rows for `tenant`. The
    /// server enforces tenant scoping: a session may only read its own
    /// tenant's ledger ([`ErrorCode::Forbidden`] otherwise).
    AuditQuery {
        /// Correlation id echoed in the reply.
        corr: u64,
        /// Tenant whose audit rows to read (must be the session
        /// owner's tenant).
        tenant: String,
        /// Maximum rows returned (most recent last); the server caps
        /// this at [`MAX_AUDIT_REPLY_ROWS`].
        limit: u32,
    },
}

/// Server-side cap on [`Request::AuditQuery`] row counts, keeping the
/// reply comfortably inside [`MAX_FRAME_BYTES`].
pub const MAX_AUDIT_REPLY_ROWS: u32 = 4096;

/// Terminal outcome of a submitted query, as delivered in
/// [`Response::Done`].
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// The query's group matched; these are its answers.
    Answered {
        /// `(answer relation, tuple)` per head.
        answers: Vec<(String, Tuple)>,
    },
    /// Cancelled before matching.
    Cancelled,
    /// Reaped by the deadline sweeper.
    Expired,
    /// A newer session reattached this owner's queries; this handle's
    /// session no longer owns the query.
    Superseded,
}

/// Machine-readable error class in [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed or out-of-order message (e.g. `Submit` before
    /// `Hello`, wrong protocol version).
    Protocol,
    /// The tenant's quota rejected the submission.
    Quota,
    /// The coordinator rejected the statement (parse, safety, ...).
    Rejected,
    /// `Cancel` named a query that is not pending.
    UnknownQuery,
    /// `Resume` presented a token that does not match the owner's
    /// current session.
    BadSession,
    /// Server-side failure (storage, internal invariant).
    Internal,
    /// The session's outbound queue overflowed: the client stopped
    /// reading while completions kept arriving, so the server shed it
    /// rather than buffer without bound (pending queries stay
    /// registered — `Resume` recovers them).
    Backpressure,
    /// The request named a resource outside the session's tenant (e.g.
    /// an `AuditQuery` for another tenant's ledger).
    Forbidden,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::Protocol => 1,
            ErrorCode::Quota => 2,
            ErrorCode::Rejected => 3,
            ErrorCode::UnknownQuery => 4,
            ErrorCode::BadSession => 5,
            ErrorCode::Internal => 6,
            ErrorCode::Backpressure => 7,
            ErrorCode::Forbidden => 8,
        }
    }

    fn from_u8(v: u8) -> Result<ErrorCode, NetError> {
        Ok(match v {
            1 => ErrorCode::Protocol,
            2 => ErrorCode::Quota,
            3 => ErrorCode::Rejected,
            4 => ErrorCode::UnknownQuery,
            5 => ErrorCode::BadSession,
            6 => ErrorCode::Internal,
            7 => ErrorCode::Backpressure,
            8 => ErrorCode::Forbidden,
            other => return Err(NetError::Frame(format!("unknown error code {other}"))),
        })
    }
}

/// One tenant's counters as carried by [`Response::StatsReply`]
/// (mirrors `youtopia_core::TenantStats`, flattened to wire scalars).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TenantSummary {
    /// Submissions admitted.
    pub submitted: u64,
    /// Admitted queries answered.
    pub answered: u64,
    /// Admitted queries cancelled.
    pub cancelled: u64,
    /// Admitted queries expired.
    pub expired: u64,
    /// Admissions rolled back on log failure.
    pub aborted: u64,
    /// Submissions rejected by quota.
    pub rejected: u64,
    /// Currently pending.
    pub in_flight: u64,
    /// Currently pending without a deadline.
    pub standing: u64,
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Handshake accepted; `session` is the token a later `Resume`
    /// must present.
    Welcome {
        /// The session token.
        session: u64,
        /// Pending queries reattached to this session (0 for `Hello`).
        reattached: u32,
    },
    /// The submission registered as pending; a `Done` push follows
    /// when it terminates.
    Accepted {
        /// Correlation id of the `Submit`.
        corr: u64,
        /// The registered query id.
        qid: u64,
    },
    /// A query terminated. `corr` is the originating `Submit`'s id
    /// when the query was answered on arrival, `0` for an asynchronous
    /// push from the event loop.
    Done {
        /// Correlation id, or `0` for a push.
        corr: u64,
        /// The terminated query.
        qid: u64,
        /// How it terminated.
        outcome: Outcome,
    },
    /// `Cancel` succeeded (the `Done` push carries the outcome).
    CancelOk {
        /// Correlation id of the `Cancel`.
        corr: u64,
    },
    /// This session's tenant counters; `found` is false when the
    /// server has no tenant registry entry yet.
    StatsReply {
        /// Correlation id of the `Stats`.
        corr: u64,
        /// Whether the tenant has a ledger entry.
        found: bool,
        /// The counters (zeroed when `found` is false).
        tenant: TenantSummary,
    },
    /// Clean shutdown acknowledgement.
    ByeOk {
        /// Correlation id of the `Bye`.
        corr: u64,
    },
    /// The request failed.
    Error {
        /// Correlation id of the failing request (0 for handshakes).
        corr: u64,
        /// Error class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The tenant's `sys_audit` rows, oldest first (already
    /// tenant-filtered and capped by the server).
    AuditReply {
        /// Correlation id of the `AuditQuery`.
        corr: u64,
        /// The ledger rows.
        rows: Vec<AuditRecord>,
    },
}

// ------------------------------------------------------------------ //
// Encode / decode
// ------------------------------------------------------------------ //

fn get_u8(buf: &mut &[u8]) -> Result<u8, NetError> {
    if buf.remaining() < 1 {
        return Err(NetError::Frame("truncated payload: missing u8".into()));
    }
    Ok(buf.get_u8())
}

fn get_u16(buf: &mut &[u8]) -> Result<u16, NetError> {
    if buf.remaining() < 2 {
        return Err(NetError::Frame("truncated payload: missing u16".into()));
    }
    Ok(buf.get_u16())
}

fn get_u32_checked(buf: &mut &[u8]) -> Result<u32, NetError> {
    if buf.remaining() < 4 {
        return Err(NetError::Frame("truncated payload: missing u32".into()));
    }
    Ok(buf.get_u32())
}

fn get_u64_checked(buf: &mut &[u8]) -> Result<u64, NetError> {
    get_u64(buf).map_err(|e| NetError::Frame(e.to_string()))
}

fn get_str_checked(buf: &mut &[u8]) -> Result<String, NetError> {
    get_str(buf).map_err(|e| NetError::Frame(e.to_string()))
}

fn finish(buf: &[u8]) -> Result<(), NetError> {
    if buf.is_empty() {
        Ok(())
    } else {
        Err(NetError::Frame(format!(
            "{} trailing byte(s) after payload",
            buf.len()
        )))
    }
}

fn put_deadline(out: &mut BytesMut, deadline: Option<u64>) {
    match deadline {
        Some(d) => {
            out.put_u8(1);
            out.put_u64(d);
        }
        None => out.put_u8(0),
    }
}

fn get_deadline(buf: &mut &[u8]) -> Result<Option<u64>, NetError> {
    match get_u8(buf)? {
        0 => Ok(None),
        1 => Ok(Some(get_u64_checked(buf)?)),
        other => Err(NetError::Frame(format!("bad deadline flag {other}"))),
    }
}

fn put_opt_u64(out: &mut BytesMut, v: Option<u64>) {
    match v {
        Some(v) => {
            out.put_u8(1);
            out.put_u64(v);
        }
        None => out.put_u8(0),
    }
}

fn get_opt_u64(buf: &mut &[u8]) -> Result<Option<u64>, NetError> {
    match get_u8(buf)? {
        0 => Ok(None),
        1 => Ok(Some(get_u64_checked(buf)?)),
        other => Err(NetError::Frame(format!("bad option flag {other}"))),
    }
}

fn put_audit_row(out: &mut BytesMut, row: &AuditRecord) {
    out.put_u64(row.qid);
    put_str(out, &row.tenant);
    put_str(out, &row.owner);
    put_str(out, &row.kind);
    out.put_u64(row.submitted_at);
    put_opt_u64(out, row.resolved_at);
    put_str(out, &row.outcome);
    put_opt_u64(out, row.latency_micros);
    out.put_u32(row.shard);
}

fn get_audit_row(buf: &mut &[u8]) -> Result<AuditRecord, NetError> {
    Ok(AuditRecord {
        qid: get_u64_checked(buf)?,
        tenant: get_str_checked(buf)?,
        owner: get_str_checked(buf)?,
        kind: get_str_checked(buf)?,
        submitted_at: get_u64_checked(buf)?,
        resolved_at: get_opt_u64(buf)?,
        outcome: get_str_checked(buf)?,
        latency_micros: get_opt_u64(buf)?,
        shard: get_u32_checked(buf)?,
    })
}

impl Request {
    /// Encodes the request payload (tag byte first; frame it with
    /// [`encode_frame`] before writing to a socket).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = BytesMut::new();
        match self {
            Request::Hello { version, owner } => {
                out.put_u8(1);
                out.put_u16(*version);
                put_str(&mut out, owner);
            }
            Request::Resume {
                version,
                owner,
                session,
            } => {
                out.put_u8(2);
                out.put_u16(*version);
                put_str(&mut out, owner);
                out.put_u64(*session);
            }
            Request::Submit {
                corr,
                deadline,
                sql,
            } => {
                out.put_u8(3);
                out.put_u64(*corr);
                put_deadline(&mut out, *deadline);
                put_str(&mut out, sql);
            }
            Request::Cancel { corr, qid } => {
                out.put_u8(4);
                out.put_u64(*corr);
                out.put_u64(*qid);
            }
            Request::Stats { corr } => {
                out.put_u8(5);
                out.put_u64(*corr);
            }
            Request::Bye { corr } => {
                out.put_u8(6);
                out.put_u64(*corr);
            }
            Request::AuditQuery {
                corr,
                tenant,
                limit,
            } => {
                out.put_u8(7);
                out.put_u64(*corr);
                put_str(&mut out, tenant);
                out.put_u32(*limit);
            }
        }
        out.to_vec()
    }

    /// Decodes a request payload; the whole slice must be consumed.
    pub fn decode(mut buf: &[u8]) -> Result<Request, NetError> {
        let tag = get_u8(&mut buf)?;
        let req = match tag {
            1 => Request::Hello {
                version: get_u16(&mut buf)?,
                owner: get_str_checked(&mut buf)?,
            },
            2 => Request::Resume {
                version: get_u16(&mut buf)?,
                owner: get_str_checked(&mut buf)?,
                session: get_u64_checked(&mut buf)?,
            },
            3 => Request::Submit {
                corr: get_u64_checked(&mut buf)?,
                deadline: get_deadline(&mut buf)?,
                sql: get_str_checked(&mut buf)?,
            },
            4 => Request::Cancel {
                corr: get_u64_checked(&mut buf)?,
                qid: get_u64_checked(&mut buf)?,
            },
            5 => Request::Stats {
                corr: get_u64_checked(&mut buf)?,
            },
            6 => Request::Bye {
                corr: get_u64_checked(&mut buf)?,
            },
            7 => Request::AuditQuery {
                corr: get_u64_checked(&mut buf)?,
                tenant: get_str_checked(&mut buf)?,
                limit: get_u32_checked(&mut buf)?,
            },
            other => return Err(NetError::Frame(format!("unknown request tag {other}"))),
        };
        finish(buf)?;
        Ok(req)
    }
}

fn put_outcome(out: &mut BytesMut, outcome: &Outcome) {
    match outcome {
        Outcome::Answered { answers } => {
            out.put_u8(0);
            out.put_u32(answers.len() as u32);
            for (relation, tuple) in answers {
                put_str(out, relation);
                let encoded = tuple.encode();
                out.put_u32(encoded.len() as u32);
                out.extend_from_slice(&encoded);
            }
        }
        Outcome::Cancelled => out.put_u8(1),
        Outcome::Expired => out.put_u8(2),
        Outcome::Superseded => out.put_u8(3),
    }
}

fn get_outcome(buf: &mut &[u8]) -> Result<Outcome, NetError> {
    match get_u8(buf)? {
        0 => {
            let count = get_u32_checked(buf)? as usize;
            // each answer needs ≥ 8 bytes of prefix alone; cap the
            // reserve by what was actually received
            let mut answers = Vec::with_capacity(count.min(buf.remaining() / 8 + 1));
            for _ in 0..count {
                let relation = get_str_checked(buf)?;
                let len = get_u32_checked(buf)? as usize;
                if buf.remaining() < len {
                    return Err(NetError::Frame("truncated answer tuple".into()));
                }
                let tuple = Tuple::decode(&buf[..len])
                    .map_err(|e| NetError::Frame(format!("bad answer tuple: {e}")))?;
                buf.advance(len);
                answers.push((relation, tuple));
            }
            Ok(Outcome::Answered { answers })
        }
        1 => Ok(Outcome::Cancelled),
        2 => Ok(Outcome::Expired),
        3 => Ok(Outcome::Superseded),
        other => Err(NetError::Frame(format!("unknown outcome tag {other}"))),
    }
}

impl TenantSummary {
    fn put(&self, out: &mut BytesMut) {
        for v in [
            self.submitted,
            self.answered,
            self.cancelled,
            self.expired,
            self.aborted,
            self.rejected,
            self.in_flight,
            self.standing,
        ] {
            out.put_u64(v);
        }
    }

    fn get(buf: &mut &[u8]) -> Result<TenantSummary, NetError> {
        Ok(TenantSummary {
            submitted: get_u64_checked(buf)?,
            answered: get_u64_checked(buf)?,
            cancelled: get_u64_checked(buf)?,
            expired: get_u64_checked(buf)?,
            aborted: get_u64_checked(buf)?,
            rejected: get_u64_checked(buf)?,
            in_flight: get_u64_checked(buf)?,
            standing: get_u64_checked(buf)?,
        })
    }
}

impl Response {
    /// Encodes the response payload (tag byte first; frame it with
    /// [`encode_frame`] before writing to a socket).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = BytesMut::new();
        match self {
            Response::Welcome {
                session,
                reattached,
            } => {
                out.put_u8(1);
                out.put_u64(*session);
                out.put_u32(*reattached);
            }
            Response::Accepted { corr, qid } => {
                out.put_u8(2);
                out.put_u64(*corr);
                out.put_u64(*qid);
            }
            Response::Done { corr, qid, outcome } => {
                out.put_u8(3);
                out.put_u64(*corr);
                out.put_u64(*qid);
                put_outcome(&mut out, outcome);
            }
            Response::CancelOk { corr } => {
                out.put_u8(4);
                out.put_u64(*corr);
            }
            Response::StatsReply {
                corr,
                found,
                tenant,
            } => {
                out.put_u8(5);
                out.put_u64(*corr);
                out.put_u8(u8::from(*found));
                tenant.put(&mut out);
            }
            Response::ByeOk { corr } => {
                out.put_u8(6);
                out.put_u64(*corr);
            }
            Response::Error {
                corr,
                code,
                message,
            } => {
                out.put_u8(7);
                out.put_u64(*corr);
                out.put_u8(code.to_u8());
                put_str(&mut out, message);
            }
            Response::AuditReply { corr, rows } => {
                out.put_u8(8);
                out.put_u64(*corr);
                out.put_u32(rows.len() as u32);
                for row in rows {
                    put_audit_row(&mut out, row);
                }
            }
        }
        out.to_vec()
    }

    /// Decodes a response payload; the whole slice must be consumed.
    pub fn decode(mut buf: &[u8]) -> Result<Response, NetError> {
        let tag = get_u8(&mut buf)?;
        let resp = match tag {
            1 => Response::Welcome {
                session: get_u64_checked(&mut buf)?,
                reattached: get_u32_checked(&mut buf)?,
            },
            2 => Response::Accepted {
                corr: get_u64_checked(&mut buf)?,
                qid: get_u64_checked(&mut buf)?,
            },
            3 => Response::Done {
                corr: get_u64_checked(&mut buf)?,
                qid: get_u64_checked(&mut buf)?,
                outcome: get_outcome(&mut buf)?,
            },
            4 => Response::CancelOk {
                corr: get_u64_checked(&mut buf)?,
            },
            5 => Response::StatsReply {
                corr: get_u64_checked(&mut buf)?,
                found: match get_u8(&mut buf)? {
                    0 => false,
                    1 => true,
                    other => {
                        return Err(NetError::Frame(format!("bad found flag {other}")));
                    }
                },
                tenant: TenantSummary::get(&mut buf)?,
            },
            6 => Response::ByeOk {
                corr: get_u64_checked(&mut buf)?,
            },
            7 => Response::Error {
                corr: get_u64_checked(&mut buf)?,
                code: ErrorCode::from_u8(get_u8(&mut buf)?)?,
                message: get_str_checked(&mut buf)?,
            },
            8 => {
                let corr = get_u64_checked(&mut buf)?;
                let count = get_u32_checked(&mut buf)? as usize;
                // each row needs ≥ 30 bytes of fixed fields alone; cap
                // the reserve by what was actually received
                let mut rows = Vec::with_capacity(count.min(buf.remaining() / 30 + 1));
                for _ in 0..count {
                    rows.push(get_audit_row(&mut buf)?);
                }
                Response::AuditReply { corr, rows }
            }
            other => return Err(NetError::Frame(format!("unknown response tag {other}"))),
        };
        finish(buf)?;
        Ok(resp)
    }
}

// ------------------------------------------------------------------ //
// Streaming frame assembly
// ------------------------------------------------------------------ //

/// Push-driven frame accumulator: the readiness-loop counterpart of
/// [`FrameReader`]. The reactor feeds it whatever a nonblocking read
/// returned ([`FrameBuf::push`]) and then drains complete frames
/// ([`FrameBuf::next_frame`]); partial frames persist across readiness
/// events. The buffer only ever grows by bytes actually received, so a
/// hostile length prefix cannot drive an allocation, and the cursor is
/// compacted lazily so a trickle of tiny reads does not shift the
/// whole buffer per byte.
#[derive(Debug, Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
    /// Bytes before `start` belong to already-yielded frames.
    start: usize,
}

impl FrameBuf {
    /// An empty accumulator.
    pub fn new() -> FrameBuf {
        FrameBuf::default()
    }

    /// Appends bytes received from the transport.
    pub fn push(&mut self, bytes: &[u8]) {
        // compact before growing once the dead prefix dominates
        if self.start > 0 && self.start >= self.buf.len() / 2 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Splits the next complete, checksum-verified frame payload off
    /// the buffered bytes, or `Ok(None)` if none is complete yet.
    /// Errors (oversized prefix, checksum mismatch) are sticky in
    /// practice: the connection is unrecoverable past a framing error.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, NetError> {
        match split_frame(&self.buf[self.start..])? {
            Some((payload, consumed)) => {
                self.start += consumed;
                if self.start == self.buf.len() {
                    self.buf.clear();
                    self.start = 0;
                }
                Ok(Some(payload))
            }
            None => Ok(None),
        }
    }

    /// Whether any partial frame bytes are buffered (true means EOF
    /// here is a mid-frame truncation, not a clean close).
    pub fn has_partial(&self) -> bool {
        self.start < self.buf.len()
    }
}

/// What [`FrameReader::read_event`] observed.
#[derive(Debug)]
pub enum ReadEvent {
    /// One complete, checksum-verified frame payload.
    Frame(Vec<u8>),
    /// The read timed out (`WouldBlock`/`TimedOut`) with no complete
    /// frame buffered; buffered partial bytes are kept for next time.
    Timeout,
    /// Clean end of stream at a frame boundary.
    Eof,
}

/// Incremental frame reader over any [`std::io::Read`]: accumulates
/// whatever the transport delivers (partial frames survive read
/// timeouts) and yields complete frames. The buffer only ever grows by
/// bytes actually received, so a hostile length prefix cannot drive an
/// allocation.
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
    buf: FrameBuf,
}

impl<R: std::io::Read> FrameReader<R> {
    /// Wraps a transport.
    pub fn new(inner: R) -> FrameReader<R> {
        FrameReader {
            inner,
            buf: FrameBuf::new(),
        }
    }

    /// The underlying transport (e.g. to adjust socket timeouts).
    pub fn get_ref(&self) -> &R {
        &self.inner
    }

    /// Reads until one complete frame, a timeout, or EOF.
    pub fn read_event(&mut self) -> Result<ReadEvent, NetError> {
        loop {
            if let Some(payload) = self.buf.next_frame()? {
                return Ok(ReadEvent::Frame(payload));
            }
            let mut chunk = [0u8; 16 * 1024];
            match self.inner.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.has_partial() {
                        Err(NetError::Frame("connection closed mid-frame".into()))
                    } else {
                        Ok(ReadEvent::Eof)
                    };
                }
                Ok(n) => self.buf.push(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(ReadEvent::Timeout);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(NetError::Io(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtopia_storage::Value;

    fn frame_roundtrip(req: &Request) -> Request {
        let framed = encode_frame(&req.encode());
        let (payload, consumed) = split_frame(&framed).unwrap().unwrap();
        assert_eq!(consumed, framed.len());
        Request::decode(&payload).unwrap()
    }

    #[test]
    fn request_roundtrips() {
        for req in [
            Request::Hello {
                version: PROTOCOL_VERSION,
                owner: "acme/alice".into(),
            },
            Request::Resume {
                version: PROTOCOL_VERSION,
                owner: "acme/alice".into(),
                session: 42,
            },
            Request::Submit {
                corr: 7,
                deadline: Some(123_456),
                sql: "SELECT 'a', fno INTO ANSWER R ...".into(),
            },
            Request::Submit {
                corr: 8,
                deadline: None,
                sql: String::new(),
            },
            Request::Cancel { corr: 9, qid: 3 },
            Request::Stats { corr: 10 },
            Request::Bye { corr: 11 },
            Request::AuditQuery {
                corr: 12,
                tenant: "acme".into(),
                limit: 100,
            },
        ] {
            assert_eq!(frame_roundtrip(&req), req);
        }
    }

    #[test]
    fn response_roundtrips() {
        let tuple = Tuple::new(vec![Value::from("Kramer"), Value::Int(122)]);
        for resp in [
            Response::Welcome {
                session: 5,
                reattached: 3,
            },
            Response::Accepted { corr: 1, qid: 17 },
            Response::Done {
                corr: 0,
                qid: 17,
                outcome: Outcome::Answered {
                    answers: vec![("Reservation".into(), tuple)],
                },
            },
            Response::Done {
                corr: 2,
                qid: 18,
                outcome: Outcome::Superseded,
            },
            Response::CancelOk { corr: 3 },
            Response::StatsReply {
                corr: 4,
                found: true,
                tenant: TenantSummary {
                    submitted: 10,
                    answered: 6,
                    in_flight: 4,
                    ..TenantSummary::default()
                },
            },
            Response::ByeOk { corr: 5 },
            Response::Error {
                corr: 6,
                code: ErrorCode::Quota,
                message: "tenant 'acme' quota exceeded".into(),
            },
            Response::Error {
                corr: 7,
                code: ErrorCode::Forbidden,
                message: "tenant 'rival' is not this session's tenant".into(),
            },
            Response::AuditReply {
                corr: 8,
                rows: vec![
                    AuditRecord {
                        qid: 1,
                        tenant: "acme".into(),
                        owner: "acme/alice".into(),
                        kind: "submit".into(),
                        submitted_at: 1_000,
                        resolved_at: None,
                        outcome: "pending".into(),
                        latency_micros: None,
                        shard: 2,
                    },
                    AuditRecord {
                        qid: 1,
                        tenant: "acme".into(),
                        owner: "acme/alice".into(),
                        kind: "match".into(),
                        submitted_at: 1_000,
                        resolved_at: Some(1_250),
                        outcome: "answered".into(),
                        latency_micros: Some(250_000),
                        shard: 2,
                    },
                ],
            },
            Response::AuditReply {
                corr: 9,
                rows: Vec::new(),
            },
        ] {
            let bytes = resp.encode();
            assert_eq!(Response::decode(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn split_rejects_oversized_and_corrupt() {
        // oversized length prefix: rejected before any allocation
        let mut huge = Vec::new();
        huge.put_u32((MAX_FRAME_BYTES + 1) as u32);
        huge.put_u32(0);
        assert!(split_frame(&huge).is_err());

        // bad checksum
        let mut framed = encode_frame(&Request::Stats { corr: 1 }.encode());
        let last = framed.len() - 1;
        framed[last] ^= 0xFF;
        assert!(split_frame(&framed).is_err());

        // truncation is "need more", not an error
        let framed = encode_frame(&Request::Stats { corr: 1 }.encode());
        assert!(matches!(split_frame(&framed[..framed.len() - 1]), Ok(None)));
    }

    #[test]
    fn decode_rejects_trailing_and_unknown() {
        let mut bytes = Request::Bye { corr: 1 }.encode();
        bytes.push(0);
        assert!(Request::decode(&bytes).is_err());
        assert!(Request::decode(&[99]).is_err());
        assert!(Response::decode(&[42]).is_err());
    }
}
