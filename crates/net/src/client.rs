//! A blocking protocol client — the driver used by the tests, the
//! benches, and the traffic generators.
//!
//! One TCP connection is one session. Requests are correlated by a
//! client-chosen id; asynchronous `Done` pushes from the server's
//! event loop (`corr = 0`) arrive interleaved with replies and are
//! buffered for [`NetClient::next_event`], so callers never have to
//! reason about interleaving themselves.

use std::collections::VecDeque;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::error::{NetError, NetResult};
use crate::protocol::{
    write_frame, ErrorCode, FrameReader, Outcome, ReadEvent, Request, Response, TenantSummary,
    PROTOCOL_VERSION,
};

/// How a `Submit` resolved at the server.
#[derive(Debug)]
pub enum SubmitOutcome {
    /// Registered as pending; a push delivered via
    /// [`NetClient::next_event`] follows on termination.
    Pending(u64),
    /// Terminated on arrival (usually answered by completing a group).
    Done(u64, Outcome),
}

impl SubmitOutcome {
    /// The query id in either case.
    pub fn qid(&self) -> u64 {
        match self {
            SubmitOutcome::Pending(qid) | SubmitOutcome::Done(qid, _) => *qid,
        }
    }
}

/// A blocking session over one TCP connection.
///
/// Reads and writes share the one socket fd (a `&TcpStream` is both
/// `Read` and `Write`), so a client costs exactly one descriptor — at
/// the bench's 8k-session scale the difference between one and two
/// fds per session is the difference between fitting the process fd
/// budget and not.
pub struct NetClient {
    reader: FrameReader<TcpStream>,
    events: VecDeque<(u64, Outcome)>,
    next_corr: u64,
    session: u64,
    reply_timeout: Duration,
}

impl NetClient {
    /// Connects (no handshake yet — follow with [`NetClient::hello`]
    /// or [`NetClient::resume`]).
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> NetResult<NetClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(NetClient {
            reader: FrameReader::new(stream),
            events: VecDeque::new(),
            next_corr: 0,
            session: 0,
            reply_timeout: Duration::from_secs(10),
        })
    }

    /// The session token from the last `Welcome` (0 before handshake).
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Opens a fresh session for `owner`; returns the session token a
    /// later [`NetClient::resume`] must present.
    pub fn hello(&mut self, owner: &str) -> NetResult<u64> {
        let resp = self.call(&Request::Hello {
            version: PROTOCOL_VERSION,
            owner: owner.to_string(),
        })?;
        match resp {
            Response::Welcome { session, .. } => {
                self.session = session;
                Ok(session)
            }
            other => Err(unexpected(other)),
        }
    }

    /// Resumes `owner`'s session using a previously issued token;
    /// returns the rotated token and how many pending queries were
    /// reattached to this connection.
    pub fn resume(&mut self, owner: &str, token: u64) -> NetResult<(u64, u32)> {
        let resp = self.call(&Request::Resume {
            version: PROTOCOL_VERSION,
            owner: owner.to_string(),
            session: token,
        })?;
        match resp {
            Response::Welcome {
                session,
                reattached,
            } => {
                self.session = session;
                Ok((session, reattached))
            }
            other => Err(unexpected(other)),
        }
    }

    /// Submits entangled SQL. `deadline` is absolute milliseconds in
    /// the server clock's domain; `None` takes the server's
    /// connection-timeout default.
    pub fn submit(&mut self, sql: &str, deadline: Option<u64>) -> NetResult<SubmitOutcome> {
        let corr = self.corr();
        let resp = self.call(&Request::Submit {
            corr,
            deadline,
            sql: sql.to_string(),
        })?;
        match resp {
            Response::Accepted { qid, .. } => Ok(SubmitOutcome::Pending(qid)),
            Response::Done { qid, outcome, .. } => Ok(SubmitOutcome::Done(qid, outcome)),
            other => Err(unexpected(other)),
        }
    }

    /// Cancels a pending query (the terminal `Cancelled` push still
    /// arrives via [`NetClient::next_event`]).
    pub fn cancel(&mut self, qid: u64) -> NetResult<()> {
        let corr = self.corr();
        match self.call(&Request::Cancel { corr, qid })? {
            Response::CancelOk { .. } => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// This session's tenant counters (`None` if the server has no
    /// ledger entry for the tenant yet).
    pub fn stats(&mut self) -> NetResult<Option<TenantSummary>> {
        let corr = self.corr();
        match self.call(&Request::Stats { corr })? {
            Response::StatsReply { found, tenant, .. } => Ok(found.then_some(tenant)),
            other => Err(unexpected(other)),
        }
    }

    /// Reads this session's tenant `sys_audit` rows (most recent
    /// `limit`, oldest first). The server refuses other tenants'
    /// ledgers with [`ErrorCode::Forbidden`].
    pub fn audit(
        &mut self,
        tenant: &str,
        limit: u32,
    ) -> NetResult<Vec<youtopia_core::AuditRecord>> {
        let corr = self.corr();
        match self.call(&Request::AuditQuery {
            corr,
            tenant: tenant.to_string(),
            limit,
        })? {
            Response::AuditReply { rows, .. } => Ok(rows),
            other => Err(unexpected(other)),
        }
    }

    /// Ends the session cleanly; pending queries stay registered for a
    /// later [`NetClient::resume`].
    pub fn bye(&mut self) -> NetResult<()> {
        let corr = self.corr();
        match self.call(&Request::Bye { corr })? {
            Response::ByeOk { .. } => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Waits up to `timeout` for the next asynchronous completion push
    /// (buffered pushes are returned immediately).
    pub fn next_event(&mut self, timeout: Duration) -> NetResult<Option<(u64, Outcome)>> {
        if let Some(event) = self.events.pop_front() {
            return Ok(Some(event));
        }
        let started = Instant::now();
        self.reader
            .get_ref()
            .set_read_timeout(Some(timeout.max(Duration::from_millis(1))))?;
        loop {
            match self.reader.read_event()? {
                ReadEvent::Frame(payload) => match Response::decode(&payload)? {
                    Response::Done { qid, outcome, .. } => return Ok(Some((qid, outcome))),
                    // a reply should never arrive here (calls are
                    // strictly request/response), but don't wedge on it
                    _ => continue,
                },
                ReadEvent::Timeout => {
                    if started.elapsed() >= timeout {
                        return Ok(None);
                    }
                }
                ReadEvent::Eof => return Err(NetError::Closed),
            }
        }
    }

    fn corr(&mut self) -> u64 {
        self.next_corr += 1;
        self.next_corr
    }

    /// Sends one request and reads frames until its reply, buffering
    /// any `corr = 0` completion pushes encountered on the way. A
    /// remote `Error` response becomes [`NetError::Remote`].
    fn call(&mut self, request: &Request) -> NetResult<Response> {
        write_frame(&mut self.reader.get_ref(), &request.encode())?;
        let started = Instant::now();
        self.reader
            .get_ref()
            .set_read_timeout(Some(Duration::from_millis(50)))?;
        loop {
            match self.reader.read_event()? {
                ReadEvent::Frame(payload) => {
                    let resp = Response::decode(&payload)?;
                    if let Response::Done {
                        corr: 0,
                        qid,
                        outcome,
                    } = resp
                    {
                        self.events.push_back((qid, outcome));
                        continue;
                    }
                    if let Response::Error { code, message, .. } = resp {
                        return Err(NetError::Remote { code, message });
                    }
                    return Ok(resp);
                }
                ReadEvent::Timeout => {
                    if started.elapsed() >= self.reply_timeout {
                        return Err(NetError::Frame("timed out waiting for reply".into()));
                    }
                }
                ReadEvent::Eof => return Err(NetError::Closed),
            }
        }
    }
}

fn unexpected(resp: Response) -> NetError {
    NetError::Remote {
        code: ErrorCode::Protocol,
        message: format!("unexpected response {resp:?}"),
    }
}
