//! # youtopia-net
//!
//! The multi-tenant TCP front-end: remote clients speak a framed,
//! checksummed binary protocol to a [`NetServer`] that drives the
//! async coordinator API. The paper's users "pose entangled queries"
//! against a shared system; this crate is the network boundary that
//! makes the coordinator an actual server rather than a library.
//!
//! Three layers:
//!
//! * [`protocol`] — the wire format: length-prefixed frames whose
//!   checksum discipline mirrors the WAL's (`len | fnv1a | payload`),
//!   carrying versioned [`Request`]/[`Response`] enums. Decoding never
//!   allocates from attacker-controlled lengths.
//! * [`server`] — the [`NetServer`]: a **single reactor thread** owns
//!   the listener, every (nonblocking) connection, and the one
//!   [`youtopia_core::WaiterSet`] driving every in-flight session's
//!   futures, sleeping in `epoll_wait` between readiness events
//!   (see `docs/networking.md` for the loop anatomy). Responses flow
//!   through bounded per-connection outbound queues — a peer that
//!   stops reading is shed with [`ErrorCode::Backpressure`] instead of
//!   stalling anyone else. Owners are tenants: submissions pass the
//!   [`youtopia_core::TenantRegistry`] quota gate, and a reconnecting
//!   client presents its session token to reattach (superseding the
//!   stranded session's handles).
//! * [`client`] — [`NetClient`], the blocking driver used by the
//!   tests, benches, and the traffic generators in `youtopia-travel`.
//!
//! ## Session lifecycle
//!
//! ```text
//! Hello{owner} ──► Welcome{session}                (fresh session)
//! Submit{sql}  ──► Accepted{qid} ... Done{qid}     (async completion)
//!              └─► Done{qid}                       (answered on arrival)
//!              └─► Error{Quota}                    (tenant over quota)
//! <disconnect>      pending queries stay registered
//! Resume{owner, session} ──► Welcome{reattached:n} (futures re-armed;
//!                                                   old handles resolve
//!                                                   Superseded)
//! ```
//!
//! A session that disconnects and never resumes is reaped by the
//! deadline sweeper: every submission carries a deadline (explicit or
//! the server's connection-timeout default), so stranded queries
//! expire rather than leak. See `docs/networking.md` for the full
//! protocol and fairness story.

#![warn(missing_docs)]

pub mod client;
pub mod error;
pub(crate) mod poller;
pub mod protocol;
pub mod server;

pub use client::{NetClient, SubmitOutcome};
pub use error::{NetError, NetResult};
pub use poller::raise_nofile_limit;
pub use protocol::{
    encode_frame, frame_checksum, split_frame, write_frame, ErrorCode, FrameBuf, FrameReader,
    Outcome, ReadEvent, Request, Response, TenantSummary, MAX_AUDIT_REPLY_ROWS, MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
};
pub use server::{NetServer, ServerConfig, ServerStats};
