//! Error type shared by the protocol codec, server, and client.

use std::fmt;

use crate::protocol::ErrorCode;

/// Anything that can go wrong on the wire or at the remote end.
#[derive(Debug)]
pub enum NetError {
    /// Transport-level I/O failure.
    Io(std::io::Error),
    /// Malformed frame or payload (bad checksum, oversized length,
    /// unknown tag, truncation, trailing bytes, ...).
    Frame(String),
    /// The server answered with a protocol-level `Error` response.
    Remote {
        /// Machine-readable error class.
        code: ErrorCode,
        /// Human-readable detail from the server.
        message: String,
    },
    /// The peer closed the connection.
    Closed,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::Frame(msg) => write!(f, "protocol error: {msg}"),
            NetError::Remote { code, message } => {
                write!(f, "remote error ({code:?}): {message}")
            }
            NetError::Closed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> NetError {
        NetError::Io(e)
    }
}

/// Convenience alias used across the crate.
pub type NetResult<T> = Result<T, NetError>;
