//! The readiness poller: a small safe wrapper over raw `epoll`, plus
//! the eventfd-based cross-thread waker the reactor sleeps against.
//!
//! This is deliberately *not* a general-purpose event library (see
//! `docs/async.md` for why no runtime is linked): it wraps exactly the
//! syscall surface the single-threaded reactor in [`crate::server`]
//! needs — level-triggered registration keyed by a caller-chosen
//! `u64` token, a blocking wait with millisecond timeout, and a
//! [`PollWaker`] any thread can poke to interrupt the wait (the
//! coordinator's completion wakers use it through
//! [`youtopia_core::WaiterSet::set_wake_hook`]). The raw syscalls come
//! from the vendored `libc` shim (`vendor/libc`), which declares only
//! this surface against the system C library `std` already links.
//!
//! Level-triggered (no `EPOLLET`) is a deliberate choice: the reactor
//! always reads to `WouldBlock` and only arms write interest while a
//! connection's outbound queue is non-empty, so level semantics cost
//! nothing extra and remove the whole class of forgotten-re-arm bugs
//! that edge-triggered loops grow.

use std::io;
use std::os::unix::io::RawFd;
use std::sync::Arc;
use std::time::Duration;

/// Token reserved for the poller's internal wake eventfd; user
/// registrations must stay below it.
pub(crate) const WAKE_TOKEN: u64 = u64::MAX;

/// What a registration wants to be told about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Read interest only — every connection's steady state.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };

    fn bits(self) -> u32 {
        let mut bits = libc::EPOLLRDHUP;
        if self.readable {
            bits |= libc::EPOLLIN;
        }
        if self.writable {
            bits |= libc::EPOLLOUT;
        }
        bits
    }
}

/// One readiness record handed back by [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct PollEvent {
    /// The token the fd was registered with.
    pub token: u64,
    /// Readable — includes error and hang-up conditions, so the next
    /// `read` surfaces them as `Ok(0)`/`Err` instead of being missed.
    pub readable: bool,
    /// Writable.
    pub writable: bool,
}

/// A cross-thread wake handle: writing the eventfd makes the owning
/// [`Poller::wait`] return with the [`WAKE_TOKEN`] event. Cheap to
/// clone (`Arc`), safe to call from any thread, coalesces naturally
/// (the eventfd is a counter).
#[derive(Debug)]
pub(crate) struct PollWaker {
    eventfd: RawFd,
}

impl PollWaker {
    /// Interrupts the poller's current (or next) wait.
    pub fn wake(&self) {
        let one: u64 = 1;
        // A full eventfd counter (EAGAIN) already guarantees a pending
        // wake; any other failure mode leaves the reactor's tick-capped
        // timeout as the fallback. Nothing useful to do with the error.
        let _ = unsafe { libc::write(self.eventfd, (&one as *const u64).cast(), 8) };
    }
}

impl Drop for PollWaker {
    fn drop(&mut self) {
        unsafe { libc::close(self.eventfd) };
    }
}

/// The epoll instance. Owned by the reactor thread; registrations and
/// waits take `&self`/`&mut self` on that thread, while [`PollWaker`]
/// clones may be poked from anywhere.
pub(crate) struct Poller {
    epfd: RawFd,
    waker: Arc<PollWaker>,
    /// Reused readiness buffer for `epoll_wait`.
    buf: Vec<libc::epoll_event>,
}

impl Poller {
    /// Creates the epoll instance and its wake eventfd (registered
    /// under [`WAKE_TOKEN`]).
    pub fn new() -> io::Result<Poller> {
        let epfd = check_fd(unsafe { libc::epoll_create1(libc::EPOLL_CLOEXEC) })?;
        let eventfd =
            match check_fd(unsafe { libc::eventfd(0, libc::EFD_CLOEXEC | libc::EFD_NONBLOCK) }) {
                Ok(fd) => fd,
                Err(e) => {
                    unsafe { libc::close(epfd) };
                    return Err(e);
                }
            };
        let poller = Poller {
            epfd,
            waker: Arc::new(PollWaker { eventfd }),
            buf: vec![libc::epoll_event { events: 0, u64: 0 }; 1024],
        };
        poller.ctl(libc::EPOLL_CTL_ADD, eventfd, libc::EPOLLIN, WAKE_TOKEN)?;
        Ok(poller)
    }

    /// A cloneable cross-thread wake handle.
    pub fn waker(&self) -> Arc<PollWaker> {
        Arc::clone(&self.waker)
    }

    /// Registers `fd` under `token`.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        debug_assert!(token < WAKE_TOKEN);
        self.ctl(libc::EPOLL_CTL_ADD, fd, interest.bits(), token)
    }

    /// Changes the interest of an already-registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(libc::EPOLL_CTL_MOD, fd, interest.bits(), token)
    }

    /// Removes `fd` from the interest set. Closing the fd would drop
    /// the registration anyway; explicit removal keeps the kernel set
    /// in lockstep with the reactor's slab.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(libc::EPOLL_CTL_DEL, fd, 0, 0)
    }

    fn ctl(&self, op: libc::c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = libc::epoll_event { events, u64: token };
        check(unsafe { libc::epoll_ctl(self.epfd, op, fd, &mut ev) })
    }

    /// Blocks until readiness, a [`PollWaker::wake`], or `timeout`
    /// (`None` = wait indefinitely), appending events to `out`
    /// (cleared first). Wake events are absorbed here — the eventfd is
    /// drained and no [`WAKE_TOKEN`] record is surfaced; a wake simply
    /// makes the wait return so the caller re-runs its loop body.
    pub fn wait(&mut self, out: &mut Vec<PollEvent>, timeout: Option<Duration>) -> io::Result<()> {
        out.clear();
        let timeout_ms: libc::c_int = match timeout {
            None => -1,
            // round up so a 100µs timeout doesn't busy-spin at 0ms
            Some(d) => d.as_millis().clamp(
                u128::from(d.as_secs() > 0 || d.subsec_nanos() > 0),
                libc::c_int::MAX as u128,
            ) as libc::c_int,
        };
        let n = unsafe {
            libc::epoll_wait(
                self.epfd,
                self.buf.as_mut_ptr(),
                self.buf.len() as libc::c_int,
                timeout_ms,
            )
        };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(()); // EINTR: surface an empty round
            }
            return Err(e);
        }
        for ev in &self.buf[..n as usize] {
            let token = ev.u64;
            if token == WAKE_TOKEN {
                let mut count: u64 = 0;
                let _ =
                    unsafe { libc::read(self.waker.eventfd, (&mut count as *mut u64).cast(), 8) };
                continue;
            }
            let bits = ev.events;
            out.push(PollEvent {
                token,
                readable: bits
                    & (libc::EPOLLIN | libc::EPOLLERR | libc::EPOLLHUP | libc::EPOLLRDHUP)
                    != 0,
                writable: bits & libc::EPOLLOUT != 0,
            });
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe { libc::close(self.epfd) };
    }
}

/// Shrinks a socket's kernel send buffer (`SO_SNDBUF`). Used by tests
/// and stress setups to make backpressure reproducible without
/// megabytes of kernel buffering in the way; the kernel clamps and
/// doubles the value as it sees fit.
pub(crate) fn set_send_buffer(fd: RawFd, bytes: u32) -> io::Result<()> {
    let val: libc::c_int = bytes.min(libc::c_int::MAX as u32) as libc::c_int;
    check(unsafe {
        libc::setsockopt(
            fd,
            libc::SOL_SOCKET,
            libc::SO_SNDBUF,
            (&val as *const libc::c_int).cast(),
            std::mem::size_of::<libc::c_int>() as libc::socklen_t,
        )
    })
}

/// Raises the soft `RLIMIT_NOFILE` toward the hard limit until it
/// covers `want` descriptors (saturating at the hard cap). Returns the
/// resulting soft limit. Used by the session-scale bench so ≥8k
/// sockets fit on stock distro soft limits.
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    let mut lim = libc::rlimit::default();
    check(unsafe { libc::getrlimit(libc::RLIMIT_NOFILE, &mut lim) })?;
    if lim.rlim_cur >= want {
        return Ok(lim.rlim_cur);
    }
    lim.rlim_cur = want.min(lim.rlim_max);
    check(unsafe { libc::setrlimit(libc::RLIMIT_NOFILE, &lim) })?;
    Ok(lim.rlim_cur)
}

fn check(ret: libc::c_int) -> io::Result<()> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(())
    }
}

fn check_fd(ret: libc::c_int) -> io::Result<RawFd> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn wake_interrupts_an_indefinite_wait() {
        let mut poller = Poller::new().unwrap();
        let waker = poller.waker();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            waker.wake();
        });
        let mut events = Vec::new();
        let started = std::time::Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(events.is_empty(), "wake is absorbed, not surfaced");
        assert!(started.elapsed() < Duration::from_secs(5), "woke early");
        handle.join().unwrap();
    }

    #[test]
    fn readiness_reports_the_registered_token() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.add(listener.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(events.is_empty(), "quiet listener: timeout, no events");

        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        client.write_all(b"x").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(
            events.iter().any(|e| e.token == 7 && e.readable),
            "pending accept surfaces as readable on the listener token"
        );
        poller.delete(listener.as_raw_fd()).unwrap();
    }

    #[test]
    fn write_interest_fires_only_when_registered() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        client.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.add(client.as_raw_fd(), 3, Interest::READ).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(25)))
            .unwrap();
        assert!(events.is_empty(), "read-only interest on an idle socket");

        poller
            .modify(
                client.as_raw_fd(),
                3,
                Interest {
                    readable: true,
                    writable: true,
                },
            )
            .unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(
            events.iter().any(|e| e.token == 3 && e.writable),
            "an idle socket is writable once EPOLLOUT interest is armed"
        );
    }
}
