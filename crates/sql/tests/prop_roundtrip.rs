//! Property-based round-trip tests: a generated AST printed and
//! reparsed yields an equal AST. This is the invariant the admin
//! interface relies on when it shows registered queries.

use proptest::prelude::*;

use youtopia_sql::{
    parse_statement, BinaryOp, EntangledHead, EntangledSelect, Expr, Insert, Select, SelectItem,
    Statement, TableAtom, TableWithJoins,
};
use youtopia_storage::Value;

fn ident() -> impl Strategy<Value = String> {
    // identifiers that are not keywords: prefix letter + digits
    "[a-z][a-z0-9]{0,5}".prop_filter("avoid keywords", |s| {
        youtopia_sql::Keyword::parse(s).is_none()
    })
}

fn literal() -> impl Strategy<Value = Expr> {
    prop_oneof![
        // i64::MIN is excluded: its absolute value does not lex as a
        // positive integer literal before negation folds in.
        (i64::MIN + 1..=i64::MAX).prop_map(|i| Expr::Literal(Value::Int(i))),
        (-1_000_000i64..1_000_000).prop_map(|i| Expr::Literal(Value::Float(i as f64 / 64.0))),
        "[a-zA-Z '%_]{0,10}".prop_map(|s| Expr::Literal(Value::Str(s))),
        Just(Expr::Literal(Value::Null)),
        any::<bool>().prop_map(|b| Expr::Literal(Value::Bool(b))),
    ]
}

fn leaf_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![literal(), ident().prop_map(Expr::col)]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    leaf_expr().prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), arb_binop()).prop_map(|(l, r, op)| Expr::Binary {
                left: Box::new(l),
                op,
                right: Box::new(r),
            }),
            (inner.clone(), any::<bool>()).prop_map(|(e, negated)| Expr::IsNull {
                expr: Box::new(e),
                negated,
            }),
            (
                inner.clone(),
                proptest::collection::vec(inner.clone(), 1..4),
                any::<bool>()
            )
                .prop_map(|(e, list, negated)| Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated
                }),
            (inner.clone(), inner.clone(), inner.clone(), any::<bool>()).prop_map(
                |(e, lo, hi, negated)| Expr::Between {
                    expr: Box::new(e),
                    low: Box::new(lo),
                    high: Box::new(hi),
                    negated,
                }
            ),
        ]
    })
}

fn arb_binop() -> impl Strategy<Value = BinaryOp> {
    prop_oneof![
        Just(BinaryOp::Or),
        Just(BinaryOp::And),
        Just(BinaryOp::Eq),
        Just(BinaryOp::NotEq),
        Just(BinaryOp::Lt),
        Just(BinaryOp::LtEq),
        Just(BinaryOp::Gt),
        Just(BinaryOp::GtEq),
        Just(BinaryOp::Add),
        Just(BinaryOp::Sub),
        Just(BinaryOp::Mul),
        Just(BinaryOp::Div),
        Just(BinaryOp::Mod),
    ]
}

fn arb_select() -> impl Strategy<Value = Select> {
    (
        proptest::collection::vec((arb_expr(), proptest::option::of(ident())), 1..4),
        proptest::collection::vec(ident(), 0..3),
        proptest::option::of(arb_expr()),
        proptest::option::of(0u64..100),
    )
        .prop_map(|(items, tables, where_clause, limit)| Select {
            items: items
                .into_iter()
                .map(|(expr, alias)| SelectItem::Expr { expr, alias })
                .collect(),
            from: tables
                .into_iter()
                .map(|name| TableWithJoins {
                    base: TableAtom { name, alias: None },
                    joins: vec![],
                })
                .collect(),
            where_clause,
            limit,
            ..Select::empty()
        })
}

fn arb_entangled() -> impl Strategy<Value = EntangledSelect> {
    (
        proptest::collection::vec(
            (
                proptest::collection::vec(leaf_expr(), 1..4),
                proptest::collection::vec(ident(), 1..3),
            ),
            1..3,
        ),
        proptest::option::of(arb_expr()),
    )
        .prop_map(|(heads, where_clause)| EntangledSelect {
            heads: heads
                .into_iter()
                .map(|(exprs, relations)| EntangledHead { exprs, relations })
                .collect(),
            where_clause,
            choose: 1,
        })
}

fn arb_insert() -> impl Strategy<Value = Insert> {
    (
        ident(),
        proptest::option::of(proptest::collection::vec(ident(), 1..4)),
        proptest::collection::vec(proptest::collection::vec(literal(), 1..4), 1..3),
    )
        .prop_map(|(table, columns, rows)| Insert {
            table,
            columns,
            rows,
        })
}

fn roundtrip(stmt: &Statement) -> Result<(), TestCaseError> {
    let printed = stmt.to_string();
    let reparsed = parse_statement(&printed)
        .map_err(|e| TestCaseError::fail(format!("'{printed}' failed to reparse: {e}")))?;
    prop_assert_eq!(
        stmt.clone(),
        reparsed,
        "round-trip mismatch through '{}'",
        printed
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn select_statements_roundtrip(sel in arb_select()) {
        roundtrip(&Statement::Select(sel))?;
    }

    #[test]
    fn entangled_statements_roundtrip(ent in arb_entangled()) {
        roundtrip(&Statement::Entangled(ent))?;
    }

    #[test]
    fn insert_statements_roundtrip(ins in arb_insert()) {
        roundtrip(&Statement::Insert(ins))?;
    }

    #[test]
    fn expressions_roundtrip(e in arb_expr()) {
        let printed = e.to_string();
        let reparsed = youtopia_sql::parse_expr(&printed)
            .map_err(|err| TestCaseError::fail(format!("'{printed}': {err}")))?;
        prop_assert_eq!(e, reparsed, "through '{}'", printed);
    }

    #[test]
    fn lexer_never_panics(input in "\\PC{0,60}") {
        let _ = youtopia_sql::lex(&input);
    }

    #[test]
    fn parser_never_panics(input in "\\PC{0,60}") {
        let _ = parse_statement(&input);
    }
}
