//! The lexer: turns SQL text into a token stream.
//!
//! Supports `--` line comments and `/* ... */` block comments, single
//! quoted strings with `''` escapes, double-quoted identifiers, and the
//! usual numeric literal forms.

use crate::error::{SqlError, SqlResult};
use crate::token::{Keyword, Span, Token, TokenKind};

/// Lexes `input` to a vector of tokens ending in [`TokenKind::Eof`].
pub fn lex(input: &str) -> SqlResult<Vec<Token>> {
    Lexer::new(input).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    input: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Lexer<'a> {
        Lexer {
            chars: input.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            input,
        }
    }

    fn span(&self) -> Span {
        Span::new(self.line, self.col)
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn run(mut self) -> SqlResult<Vec<Token>> {
        let mut tokens = Vec::new();
        loop {
            self.skip_trivia()?;
            let span = self.span();
            let Some(c) = self.peek() else {
                tokens.push(Token::new(TokenKind::Eof, span));
                return Ok(tokens);
            };
            let kind = match c {
                '(' => {
                    self.bump();
                    TokenKind::LParen
                }
                ')' => {
                    self.bump();
                    TokenKind::RParen
                }
                ',' => {
                    self.bump();
                    TokenKind::Comma
                }
                ';' => {
                    self.bump();
                    TokenKind::Semicolon
                }
                '.' => {
                    self.bump();
                    TokenKind::Dot
                }
                '*' => {
                    self.bump();
                    TokenKind::Star
                }
                '+' => {
                    self.bump();
                    TokenKind::Plus
                }
                '-' => {
                    self.bump();
                    TokenKind::Minus
                }
                '/' => {
                    self.bump();
                    TokenKind::Slash
                }
                '%' => {
                    self.bump();
                    TokenKind::Percent
                }
                '=' => {
                    self.bump();
                    TokenKind::Eq
                }
                '!' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        TokenKind::NotEq
                    } else {
                        return Err(SqlError::new("expected '=' after '!'", span));
                    }
                }
                '<' => {
                    self.bump();
                    match self.peek() {
                        Some('=') => {
                            self.bump();
                            TokenKind::LtEq
                        }
                        Some('>') => {
                            self.bump();
                            TokenKind::NotEq
                        }
                        _ => TokenKind::Lt,
                    }
                }
                '>' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        TokenKind::GtEq
                    } else {
                        TokenKind::Gt
                    }
                }
                '\'' => self.lex_string(span)?,
                '"' => self.lex_quoted_ident(span)?,
                c if c.is_ascii_digit() => self.lex_number(span)?,
                c if c.is_alphabetic() || c == '_' => self.lex_word(),
                other => {
                    return Err(SqlError::new(
                        format!("unexpected character '{other}'"),
                        span,
                    ));
                }
            };
            tokens.push(Token::new(kind, span));
        }
    }

    fn skip_trivia(&mut self) -> SqlResult<()> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('-') if self.peek2() == Some('-') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') if self.peek2() == Some('*') => {
                    let start = self.span();
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some('*'), Some('/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(SqlError::new("unterminated block comment", start));
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_string(&mut self, span: Span) -> SqlResult<TokenKind> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                Some('\'') => {
                    if self.peek() == Some('\'') {
                        self.bump();
                        s.push('\'');
                    } else {
                        return Ok(TokenKind::Str(s));
                    }
                }
                Some(c) => s.push(c),
                None => return Err(SqlError::new("unterminated string literal", span)),
            }
        }
    }

    fn lex_quoted_ident(&mut self, span: Span) -> SqlResult<TokenKind> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(TokenKind::Ident(s)),
                Some(c) => s.push(c),
                None => return Err(SqlError::new("unterminated quoted identifier", span)),
            }
        }
    }

    fn lex_number(&mut self, span: Span) -> SqlResult<TokenKind> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        let mut is_float = false;
        if self.peek() == Some('.') && matches!(self.peek2(), Some(c) if c.is_ascii_digit()) {
            is_float = true;
            self.bump();
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some('e' | 'E')) {
            let mut look = self.pos + 1;
            if matches!(self.chars.get(look), Some('+' | '-')) {
                look += 1;
            }
            if matches!(self.chars.get(look), Some(c) if c.is_ascii_digit()) {
                is_float = true;
                self.bump(); // e
                if matches!(self.peek(), Some('+' | '-')) {
                    self.bump();
                }
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.bump();
                }
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        if is_float {
            text.parse::<f64>()
                .map(TokenKind::Float)
                .map_err(|e| SqlError::new(format!("bad float literal '{text}': {e}"), span))
        } else {
            text.parse::<i64>()
                .map(TokenKind::Int)
                .map_err(|e| SqlError::new(format!("bad integer literal '{text}': {e}"), span))
        }
    }

    fn lex_word(&mut self) -> TokenKind {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_') {
            self.bump();
        }
        let word: String = self.chars[start..self.pos].iter().collect();
        match Keyword::parse(&word) {
            Some(kw) => TokenKind::Keyword(kw),
            None => TokenKind::Ident(word),
        }
    }
}

// Silence an unused-field warning: `input` is retained for future
// snippet-quoting in error messages.
impl std::fmt::Debug for Lexer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lexer")
            .field("pos", &self.pos)
            .field("input_len", &self.input.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        lex(input).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_the_papers_kramer_query() {
        let sql = "SELECT 'Kramer', fno INTO ANSWER Reservation \
                   WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') \
                   AND ('Jerry', fno) IN ANSWER Reservation \
                   CHOOSE 1";
        let toks = kinds(sql);
        assert_eq!(toks[0], TokenKind::Keyword(Keyword::Select));
        assert_eq!(toks[1], TokenKind::Str("Kramer".into()));
        assert_eq!(toks[2], TokenKind::Comma);
        assert_eq!(toks[3], TokenKind::Ident("fno".into()));
        assert_eq!(toks[4], TokenKind::Keyword(Keyword::Into));
        assert_eq!(toks[5], TokenKind::Keyword(Keyword::Answer));
        assert!(toks.contains(&TokenKind::Keyword(Keyword::Choose)));
        assert_eq!(toks.last(), Some(&TokenKind::Eof));
    }

    #[test]
    fn operators_and_punctuation() {
        assert_eq!(
            kinds("= != <> < <= > >= + - * / % ( ) , ; ."),
            vec![
                TokenKind::Eq,
                TokenKind::NotEq,
                TokenKind::NotEq,
                TokenKind::Lt,
                TokenKind::LtEq,
                TokenKind::Gt,
                TokenKind::GtEq,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::Percent,
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::Comma,
                TokenKind::Semicolon,
                TokenKind::Dot,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42")[0], TokenKind::Int(42));
        assert_eq!(kinds("4.25")[0], TokenKind::Float(4.25));
        assert_eq!(kinds("1e3")[0], TokenKind::Float(1000.0));
        assert_eq!(kinds("2.5E-1")[0], TokenKind::Float(0.25));
        // dot not followed by digit is a separate token (qualified name)
        assert_eq!(
            kinds("t.1")[..2],
            [TokenKind::Ident("t".into()), TokenKind::Dot]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(kinds("'O''Hare'")[0], TokenKind::Str("O'Hare".into()));
        assert_eq!(kinds("''")[0], TokenKind::Str(String::new()));
    }

    #[test]
    fn unterminated_string_is_error() {
        let err = lex("'oops").unwrap_err();
        assert!(err.message.contains("unterminated string"));
        assert_eq!(err.span, Span::new(1, 1));
    }

    #[test]
    fn quoted_identifiers() {
        assert_eq!(kinds("\"Select\"")[0], TokenKind::Ident("Select".into()));
    }

    #[test]
    fn comments_are_skipped() {
        let toks = kinds("SELECT -- the head\n 1 /* inline\nblock */ , 2");
        assert_eq!(
            toks,
            vec![
                TokenKind::Keyword(Keyword::Select),
                TokenKind::Int(1),
                TokenKind::Comma,
                TokenKind::Int(2),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn unterminated_block_comment_is_error() {
        assert!(lex("/* nope").is_err());
    }

    #[test]
    fn spans_track_lines_and_columns() {
        let toks = lex("SELECT\n  fno").unwrap();
        assert_eq!(toks[0].span, Span::new(1, 1));
        assert_eq!(toks[1].span, Span::new(2, 3));
    }

    #[test]
    fn keywords_are_case_insensitive_identifiers_preserved() {
        let toks = kinds("select Fno FROM Flights");
        assert_eq!(toks[0], TokenKind::Keyword(Keyword::Select));
        assert_eq!(toks[1], TokenKind::Ident("Fno".into()));
        assert_eq!(toks[3], TokenKind::Ident("Flights".into()));
    }

    #[test]
    fn bang_without_eq_is_error() {
        assert!(lex("!x").is_err());
    }

    #[test]
    fn unexpected_character_is_error() {
        let err = lex("SELECT @").unwrap_err();
        assert!(err.message.contains('@'));
        assert_eq!(err.span, Span::new(1, 8));
    }

    #[test]
    fn underscore_identifiers() {
        assert_eq!(kinds("_tmp_1")[0], TokenKind::Ident("_tmp_1".into()));
    }
}
