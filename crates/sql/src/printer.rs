//! Pretty printer: `Display` impls that render the AST back to SQL.
//!
//! The output parses back to an equal AST (property-tested), so the admin
//! interface can show registered entangled queries exactly as the system
//! understands them.

use std::fmt;

use crate::ast::*;

fn comma_sep<T: fmt::Display>(f: &mut fmt::Formatter<'_>, items: &[T]) -> fmt::Result {
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{item}")?;
    }
    Ok(())
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::CreateTable(ct) => write!(f, "{ct}"),
            Statement::DropTable { name } => write!(f, "DROP TABLE {name}"),
            Statement::CreateIndex(ci) => write!(f, "{ci}"),
            Statement::Insert(ins) => write!(f, "{ins}"),
            Statement::Update(up) => write!(f, "{up}"),
            Statement::Delete(del) => write!(f, "{del}"),
            Statement::Select(sel) => write!(f, "{sel}"),
            Statement::Entangled(ent) => write!(f, "{ent}"),
            Statement::ShowTables => write!(f, "SHOW TABLES"),
            Statement::ShowPending => write!(f, "SHOW PENDING"),
            Statement::Explain(inner) => write!(f, "EXPLAIN {inner}"),
        }
    }
}

impl fmt::Display for CreateTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CREATE TABLE {} (", self.name)?;
        for (i, col) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", col.name, col.ty)?;
            if !col.nullable && !self.primary_key.iter().any(|k| k == &col.name) {
                write!(f, " NOT NULL")?;
            }
        }
        if !self.primary_key.is_empty() {
            write!(f, ", PRIMARY KEY (")?;
            comma_sep(f, &self.primary_key)?;
            write!(f, ")")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for CreateIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CREATE ")?;
        if self.unique {
            write!(f, "UNIQUE ")?;
        }
        write!(f, "INDEX {} ON {} (", self.name, self.table)?;
        comma_sep(f, &self.columns)?;
        write!(f, ")")
    }
}

impl fmt::Display for Insert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "INSERT INTO {}", self.table)?;
        if let Some(cols) = &self.columns {
            write!(f, " (")?;
            comma_sep(f, cols)?;
            write!(f, ")")?;
        }
        write!(f, " VALUES ")?;
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "(")?;
            comma_sep(f, row)?;
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl fmt::Display for Update {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UPDATE {} SET ", self.table)?;
        for (i, (col, expr)) in self.sets.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{col} = {expr}")?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Delete {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DELETE FROM {}", self.table)?;
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        comma_sep(f, &self.items)?;
        if !self.from.is_empty() {
            write!(f, " FROM ")?;
            comma_sep(f, &self.from)?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            comma_sep(f, &self.group_by)?;
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            comma_sep(f, &self.order_by)?;
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        if let Some(o) = self.offset {
            write!(f, " OFFSET {o}")?;
        }
        Ok(())
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => write!(f, "*"),
            SelectItem::Expr { expr, alias } => {
                write!(f, "{expr}")?;
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for TableWithJoins {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.base)?;
        for join in &self.joins {
            write!(f, "{join}")?;
        }
        Ok(())
    }
}

impl fmt::Display for TableAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if let Some(a) = &self.alias {
            write!(f, " AS {a}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Join {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            JoinKind::Inner => write!(f, " JOIN {} ON {}", self.table, self.on),
            JoinKind::Left => write!(f, " LEFT JOIN {} ON {}", self.table, self.on),
        }
    }
}

impl fmt::Display for OrderByItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.expr)?;
        if self.desc {
            write!(f, " DESC")?;
        }
        Ok(())
    }
}

impl fmt::Display for EntangledSelect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        for (i, head) in self.heads.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            comma_sep(f, &head.exprs)?;
            write!(f, " INTO ")?;
            for (j, rel) in head.relations.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "ANSWER {rel}")?;
            }
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        write!(f, " CHOOSE {}", self.choose)
    }
}

/// Precedence of the expression for parenthesization purposes.
/// Mirrors the parser's binding powers; postfix predicates (IN, BETWEEN,
/// LIKE, IS NULL) sit at comparison level.
fn expr_prec(e: &Expr) -> u8 {
    match e {
        Expr::Binary { op, .. } => op.precedence(),
        Expr::Unary {
            op: UnaryOp::Not, ..
        } => 3,
        Expr::InList { .. }
        | Expr::InSubquery { .. }
        | Expr::InAnswer { .. }
        | Expr::Between { .. }
        | Expr::Like { .. }
        | Expr::IsNull { .. } => 4,
        Expr::Unary {
            op: UnaryOp::Neg, ..
        } => 7,
        _ => 10,
    }
}

fn write_child(f: &mut fmt::Formatter<'_>, child: &Expr, min_prec: u8) -> fmt::Result {
    if expr_prec(child) < min_prec {
        write!(f, "({child})")
    } else {
        write!(f, "{child}")
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(v) => write!(f, "{}", v.sql_literal()),
            Expr::Column { table, name } => {
                if let Some(t) = table {
                    write!(f, "{t}.{name}")
                } else {
                    write!(f, "{name}")
                }
            }
            Expr::Unary { op, expr } => match op {
                UnaryOp::Neg => {
                    write!(f, "-")?;
                    write_child(f, expr, 8)
                }
                UnaryOp::Not => {
                    write!(f, "NOT ")?;
                    write_child(f, expr, 4)
                }
            },
            Expr::Binary { left, op, right } => {
                let prec = op.precedence();
                // Comparisons are non-associative in this grammar: a
                // comparison operand that is itself a comparison-level
                // expression must be parenthesized on BOTH sides.
                let left_min = if prec == 4 { prec + 1 } else { prec };
                write_child(f, left, left_min)?;
                write!(f, " {} ", op.as_str())?;
                // +1 on the right: render equal-precedence right children
                // parenthesized so left-associativity survives round-trips.
                write_child(f, right, prec + 1)
            }
            Expr::Function { name, args, star } => {
                write!(f, "{name}(")?;
                if *star {
                    write!(f, "*")?;
                } else {
                    comma_sep(f, args)?;
                }
                write!(f, ")")
            }
            Expr::IsNull { expr, negated } => {
                write_child(f, expr, 5)?;
                if *negated {
                    write!(f, " IS NOT NULL")
                } else {
                    write!(f, " IS NULL")
                }
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                write_child(f, expr, 5)?;
                if *negated {
                    write!(f, " NOT IN (")?;
                } else {
                    write!(f, " IN (")?;
                }
                comma_sep(f, list)?;
                write!(f, ")")
            }
            Expr::InSubquery {
                exprs,
                query,
                negated,
            } => {
                write_tuple_operand(f, exprs)?;
                if *negated {
                    write!(f, " NOT IN ({query})")
                } else {
                    write!(f, " IN ({query})")
                }
            }
            Expr::InAnswer {
                exprs,
                relation,
                negated,
            } => {
                write_tuple_operand(f, exprs)?;
                if *negated {
                    write!(f, " NOT IN ANSWER {relation}")
                } else {
                    write!(f, " IN ANSWER {relation}")
                }
            }
            Expr::Exists { query, negated } => {
                if *negated {
                    write!(f, "NOT EXISTS ({query})")
                } else {
                    write!(f, "EXISTS ({query})")
                }
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                write_child(f, expr, 5)?;
                if *negated {
                    write!(f, " NOT BETWEEN ")?;
                } else {
                    write!(f, " BETWEEN ")?;
                }
                write_child(f, low, 5)?;
                write!(f, " AND ")?;
                write_child(f, high, 5)
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                write_child(f, expr, 5)?;
                if *negated {
                    write!(f, " NOT LIKE ")?;
                } else {
                    write!(f, " LIKE ")?;
                }
                write_child(f, pattern, 5)
            }
            Expr::Tuple(exprs) => {
                write!(f, "(")?;
                comma_sep(f, exprs)?;
                write!(f, ")")
            }
        }
    }
}

/// Prints the left operand of tuple-IN forms: single expressions print
/// bare, multi-expression tuples print parenthesized.
fn write_tuple_operand(f: &mut fmt::Formatter<'_>, exprs: &[Expr]) -> fmt::Result {
    if exprs.len() == 1 {
        write_child(f, &exprs[0], 5)
    } else {
        write!(f, "(")?;
        comma_sep(f, exprs)?;
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtopia_storage::Value;

    #[test]
    fn prints_the_papers_kramer_query() {
        let q = EntangledSelect {
            heads: vec![EntangledHead {
                exprs: vec![Expr::lit("Kramer"), Expr::col("fno")],
                relations: vec!["Reservation".into()],
            }],
            where_clause: Some(
                Expr::InSubquery {
                    exprs: vec![Expr::col("fno")],
                    query: Box::new(Select {
                        items: vec![SelectItem::Expr {
                            expr: Expr::col("fno"),
                            alias: None,
                        }],
                        from: vec![TableWithJoins {
                            base: TableAtom {
                                name: "Flights".into(),
                                alias: None,
                            },
                            joins: vec![],
                        }],
                        where_clause: Some(Expr::col("dest").eq(Expr::lit("Paris"))),
                        ..Select::empty()
                    }),
                    negated: false,
                }
                .and(Expr::InAnswer {
                    exprs: vec![Expr::lit("Jerry"), Expr::col("fno")],
                    relation: "Reservation".into(),
                    negated: false,
                }),
            ),
            choose: 1,
        };
        assert_eq!(
            q.to_string(),
            "SELECT 'Kramer', fno INTO ANSWER Reservation \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') \
             AND ('Jerry', fno) IN ANSWER Reservation CHOOSE 1"
        );
    }

    #[test]
    fn binary_parenthesization_respects_precedence() {
        // (a OR b) AND c needs parens on the left
        let e = Expr::Binary {
            left: Box::new(Expr::Binary {
                left: Box::new(Expr::col("a")),
                op: BinaryOp::Or,
                right: Box::new(Expr::col("b")),
            }),
            op: BinaryOp::And,
            right: Box::new(Expr::col("c")),
        };
        assert_eq!(e.to_string(), "(a OR b) AND c");

        // a + b * c needs no parens
        let e2 = Expr::Binary {
            left: Box::new(Expr::col("a")),
            op: BinaryOp::Add,
            right: Box::new(Expr::Binary {
                left: Box::new(Expr::col("b")),
                op: BinaryOp::Mul,
                right: Box::new(Expr::col("c")),
            }),
        };
        assert_eq!(e2.to_string(), "a + b * c");

        // a - (b - c): right child at equal precedence gets parens
        let e3 = Expr::Binary {
            left: Box::new(Expr::col("a")),
            op: BinaryOp::Sub,
            right: Box::new(Expr::Binary {
                left: Box::new(Expr::col("b")),
                op: BinaryOp::Sub,
                right: Box::new(Expr::col("c")),
            }),
        };
        assert_eq!(e3.to_string(), "a - (b - c)");
    }

    #[test]
    fn statements_print() {
        let ct = Statement::CreateTable(CreateTable {
            name: "Flights".into(),
            columns: vec![
                ColumnDef {
                    name: "fno".into(),
                    ty: youtopia_storage::DataType::Int64,
                    nullable: false,
                    primary_key: true,
                },
                ColumnDef {
                    name: "dest".into(),
                    ty: youtopia_storage::DataType::Str,
                    nullable: true,
                    primary_key: false,
                },
            ],
            primary_key: vec!["fno".into()],
        });
        assert_eq!(
            ct.to_string(),
            "CREATE TABLE Flights (fno INT, dest STRING, PRIMARY KEY (fno))"
        );

        let ins = Statement::Insert(Insert {
            table: "Flights".into(),
            columns: None,
            rows: vec![vec![Expr::lit(122i64), Expr::lit("Paris")]],
        });
        assert_eq!(ins.to_string(), "INSERT INTO Flights VALUES (122, 'Paris')");

        assert_eq!(Statement::ShowTables.to_string(), "SHOW TABLES");
        assert_eq!(Statement::ShowPending.to_string(), "SHOW PENDING");
    }

    #[test]
    fn functions_and_predicates_print() {
        let e = Expr::Function {
            name: "COUNT".into(),
            args: vec![],
            star: true,
        };
        assert_eq!(e.to_string(), "COUNT(*)");
        let e2 = Expr::IsNull {
            expr: Box::new(Expr::col("x")),
            negated: true,
        };
        assert_eq!(e2.to_string(), "x IS NOT NULL");
        let e3 = Expr::Between {
            expr: Box::new(Expr::col("p")),
            low: Box::new(Expr::lit(1i64)),
            high: Box::new(Expr::lit(9i64)),
            negated: false,
        };
        assert_eq!(e3.to_string(), "p BETWEEN 1 AND 9");
        let e4 = Expr::Like {
            expr: Box::new(Expr::col("name")),
            pattern: Box::new(Expr::Literal(Value::from("J%"))),
            negated: true,
        };
        assert_eq!(e4.to_string(), "name NOT LIKE 'J%'");
    }

    #[test]
    fn multi_head_entangled_prints() {
        let q = EntangledSelect {
            heads: vec![
                EntangledHead {
                    exprs: vec![Expr::lit("Jerry"), Expr::col("fno")],
                    relations: vec!["Reservation".into()],
                },
                EntangledHead {
                    exprs: vec![Expr::lit("Jerry"), Expr::col("hid")],
                    relations: vec!["HotelReservation".into()],
                },
            ],
            where_clause: None,
            choose: 1,
        };
        assert_eq!(
            q.to_string(),
            "SELECT 'Jerry', fno INTO ANSWER Reservation, \
             'Jerry', hid INTO ANSWER HotelReservation CHOOSE 1"
        );
    }
}
