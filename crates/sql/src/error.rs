//! Error types for the SQL front end.

use std::fmt;

use crate::token::Span;

/// A lexing or parsing error with source position.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlError {
    /// Human-readable description.
    pub message: String,
    /// Where in the input the problem was detected.
    pub span: Span,
}

impl SqlError {
    /// Builds an error.
    pub fn new(message: impl Into<String>, span: Span) -> SqlError {
        SqlError {
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.message, self.span)
    }
}

impl std::error::Error for SqlError {}

/// Result alias for the SQL crate.
pub type SqlResult<T> = Result<T, SqlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let err = SqlError::new("unexpected token ','", Span::new(2, 7));
        assert_eq!(err.to_string(), "unexpected token ',' at line 2, column 7");
    }
}
