//! The abstract syntax tree for the Youtopia SQL dialect.
//!
//! Every node implements [`std::fmt::Display`], producing SQL text that
//! parses back to an equal AST (round-trip tested), which the admin
//! interface uses to show registered queries.

use youtopia_storage::{DataType, Value};

/// A full SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE ...`
    CreateTable(CreateTable),
    /// `DROP TABLE name`
    DropTable {
        /// Table to drop.
        name: String,
    },
    /// `CREATE [UNIQUE] INDEX name ON table (cols)`
    CreateIndex(CreateIndex),
    /// `INSERT INTO ...`
    Insert(Insert),
    /// `UPDATE ...`
    Update(Update),
    /// `DELETE FROM ...`
    Delete(Delete),
    /// A plain `SELECT`.
    Select(Select),
    /// An entangled query (`SELECT ... INTO ANSWER ...`).
    Entangled(EntangledSelect),
    /// `SHOW TABLES` (admin).
    ShowTables,
    /// `SHOW PENDING` (admin: the registered entangled queries).
    ShowPending,
    /// `EXPLAIN <select|entangled>`: render the execution plan (for
    /// selects) or the compiled coordination IR (for entangled queries)
    /// without running the statement.
    Explain(Box<Statement>),
}

/// One column definition in `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub ty: DataType,
    /// Whether NULL is allowed (default true unless `NOT NULL` or part of
    /// the primary key).
    pub nullable: bool,
    /// Inline `PRIMARY KEY` marker.
    pub primary_key: bool,
}

/// `CREATE TABLE name (...)`.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    /// Table name.
    pub name: String,
    /// Column definitions.
    pub columns: Vec<ColumnDef>,
    /// Table-level `PRIMARY KEY (a, b)` column names (empty if none;
    /// inline markers are folded in by the parser).
    pub primary_key: Vec<String>,
}

/// `CREATE [UNIQUE] INDEX name ON table (cols)`.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateIndex {
    /// Index name.
    pub name: String,
    /// Table the index is on.
    pub table: String,
    /// Indexed column names, in order.
    pub columns: Vec<String>,
    /// Whether the index enforces uniqueness.
    pub unique: bool,
}

/// `INSERT INTO table [(cols)] VALUES (...), (...)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    /// Target table.
    pub table: String,
    /// Explicit column list, if given.
    pub columns: Option<Vec<String>>,
    /// One expression row per `VALUES` tuple.
    pub rows: Vec<Vec<Expr>>,
}

/// `UPDATE table SET col = expr, ... [WHERE ...]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    /// Target table.
    pub table: String,
    /// Assignments.
    pub sets: Vec<(String, Expr)>,
    /// Row filter.
    pub where_clause: Option<Expr>,
}

/// `DELETE FROM table [WHERE ...]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Delete {
    /// Target table.
    pub table: String,
    /// Row filter.
    pub where_clause: Option<Expr>,
}

/// A plain `SELECT` query.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// `SELECT DISTINCT`?
    pub distinct: bool,
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// `FROM` clause (empty for `SELECT 1`-style queries).
    pub from: Vec<TableWithJoins>,
    /// `WHERE` predicate.
    pub where_clause: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate.
    pub having: Option<Expr>,
    /// `ORDER BY` items.
    pub order_by: Vec<OrderByItem>,
    /// `LIMIT`.
    pub limit: Option<u64>,
    /// `OFFSET`.
    pub offset: Option<u64>,
}

impl Select {
    /// An empty `SELECT` skeleton (parser/builder convenience).
    pub fn empty() -> Select {
        Select {
            distinct: false,
            items: Vec::new(),
            from: Vec::new(),
            where_clause: None,
            group_by: Vec::new(),
            having: None,
            order_by: Vec::new(),
            limit: None,
            offset: None,
        }
    }
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `expr [AS alias]`
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Optional alias.
        alias: Option<String>,
    },
}

/// A base table with its chained joins.
#[derive(Debug, Clone, PartialEq)]
pub struct TableWithJoins {
    /// The left-most table.
    pub base: TableAtom,
    /// Joins applied left to right.
    pub joins: Vec<Join>,
}

/// A named table reference with optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableAtom {
    /// Table name.
    pub name: String,
    /// `AS alias` (or bare alias).
    pub alias: Option<String>,
}

/// Supported join kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// `[INNER] JOIN`
    Inner,
    /// `LEFT [OUTER] JOIN`
    Left,
}

/// One `JOIN table ON predicate`.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// Join kind.
    pub kind: JoinKind,
    /// The joined table.
    pub table: TableAtom,
    /// The `ON` predicate.
    pub on: Expr,
}

/// `ORDER BY expr [ASC|DESC]`.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByItem {
    /// Sort expression.
    pub expr: Expr,
    /// Descending?
    pub desc: bool,
}

/// An entangled query: the paper's
/// `SELECT select_expr INTO ANSWER tbl [, ANSWER tbl]... [WHERE ...] CHOOSE k`.
///
/// This implementation also accepts the multi-head extension
/// `SELECT e1, e2 INTO ANSWER R1, e3, e4 INTO ANSWER R2 ...` used by the
/// flight-and-hotel scenarios, where each head has its own expression
/// list and target answer relation(s).
#[derive(Debug, Clone, PartialEq)]
pub struct EntangledSelect {
    /// One or more answer heads.
    pub heads: Vec<EntangledHead>,
    /// The `WHERE` clause: database predicates plus answer constraints.
    pub where_clause: Option<Expr>,
    /// `CHOOSE k` — how many coordinated answers this query wants
    /// (the paper's examples always use 1).
    pub choose: u64,
}

/// One `exprs INTO ANSWER rel [, ANSWER rel]` head.
#[derive(Debug, Clone, PartialEq)]
pub struct EntangledHead {
    /// The contributed tuple, as expressions over constants and free
    /// variables.
    pub exprs: Vec<Expr>,
    /// The answer relation(s) receiving this tuple.
    pub relations: Vec<String>,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// Boolean NOT.
    Not,
}

/// Binary operators, in increasing precedence groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// Logical OR.
    Or,
    /// Logical AND.
    And,
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
}

impl BinaryOp {
    /// SQL spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            BinaryOp::Or => "OR",
            BinaryOp::And => "AND",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
        }
    }

    /// Binding power for the pretty printer / parser (higher binds
    /// tighter).
    pub fn precedence(&self) -> u8 {
        match self {
            BinaryOp::Or => 1,
            BinaryOp::And => 2,
            BinaryOp::Eq
            | BinaryOp::NotEq
            | BinaryOp::Lt
            | BinaryOp::LtEq
            | BinaryOp::Gt
            | BinaryOp::GtEq => 4,
            BinaryOp::Add | BinaryOp::Sub => 5,
            BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => 6,
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// A column reference (or, in entangled queries, a free coordination
    /// variable) with optional table qualifier.
    Column {
        /// Qualifier (`t` in `t.c`).
        table: Option<String>,
        /// Column / variable name.
        name: String,
    },
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// The operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Function call (`COUNT(*)` is `Function {name: "COUNT", star: true}`).
    Function {
        /// Function name, uppercased by the parser.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// `COUNT(*)`.
        star: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// `IS NOT NULL`?
        negated: bool,
    },
    /// `expr [NOT] IN (e1, e2, ...)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate list.
        list: Vec<Expr>,
        /// Negated?
        negated: bool,
    },
    /// `(e1, ...) [NOT] IN (SELECT ...)`.
    InSubquery {
        /// Tested tuple (singleton for scalar `IN`).
        exprs: Vec<Expr>,
        /// The subquery.
        query: Box<Select>,
        /// Negated?
        negated: bool,
    },
    /// `(e1, ...) [NOT] IN ANSWER rel` — the entangled answer constraint.
    InAnswer {
        /// The constrained tuple template.
        exprs: Vec<Expr>,
        /// Target answer relation.
        relation: String,
        /// Negated?
        negated: bool,
    },
    /// `[NOT] EXISTS (SELECT ...)`.
    Exists {
        /// The subquery.
        query: Box<Select>,
        /// Negated?
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// Negated?
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern` (`%` and `_` wildcards).
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern expression.
        pattern: Box<Expr>,
        /// Negated?
        negated: bool,
    },
    /// A parenthesized tuple; only legal in front of `IN` forms, the
    /// parser rewrites it away. Kept as a variant so the parser can build
    /// it before seeing the `IN`.
    Tuple(Vec<Expr>),
}

impl Expr {
    /// Column-reference shorthand.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column {
            table: None,
            name: name.into(),
        }
    }

    /// Qualified column-reference shorthand.
    pub fn qcol(table: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Column {
            table: Some(table.into()),
            name: name.into(),
        }
    }

    /// Literal shorthand.
    pub fn lit(value: impl Into<Value>) -> Expr {
        Expr::Literal(value.into())
    }

    /// `left AND right` shorthand.
    pub fn and(self, other: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(self),
            op: BinaryOp::And,
            right: Box::new(other),
        }
    }

    /// `left = right` shorthand.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(self),
            op: BinaryOp::Eq,
            right: Box::new(other),
        }
    }

    /// Splits a conjunction into its conjuncts (flattens nested ANDs).
    pub fn conjuncts(&self) -> Vec<&Expr> {
        match self {
            Expr::Binary {
                left,
                op: BinaryOp::And,
                right,
            } => {
                let mut out = left.conjuncts();
                out.extend(right.conjuncts());
                out
            }
            other => vec![other],
        }
    }

    /// Rebuilds a conjunction from conjuncts (returns `None` when empty).
    pub fn conjoin(exprs: Vec<Expr>) -> Option<Expr> {
        exprs.into_iter().reduce(|acc, e| acc.and(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_shorthands() {
        let e = Expr::col("fno")
            .eq(Expr::lit(122i64))
            .and(Expr::col("x").eq(Expr::lit("y")));
        match &e {
            Expr::Binary {
                op: BinaryOp::And, ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(e.conjuncts().len(), 2);
    }

    #[test]
    fn conjuncts_flatten_nested_ands() {
        let e = Expr::col("a")
            .eq(Expr::lit(1i64))
            .and(Expr::col("b").eq(Expr::lit(2i64)))
            .and(Expr::col("c").eq(Expr::lit(3i64)));
        assert_eq!(e.conjuncts().len(), 3);
    }

    #[test]
    fn conjoin_inverts_conjuncts() {
        let parts = vec![
            Expr::col("a").eq(Expr::lit(1i64)),
            Expr::col("b").eq(Expr::lit(2i64)),
        ];
        let joined = Expr::conjoin(parts.clone()).unwrap();
        let split: Vec<Expr> = joined.conjuncts().into_iter().cloned().collect();
        assert_eq!(split, parts);
        assert_eq!(Expr::conjoin(vec![]), None);
    }

    #[test]
    fn precedence_ordering() {
        assert!(BinaryOp::Or.precedence() < BinaryOp::And.precedence());
        assert!(BinaryOp::And.precedence() < BinaryOp::Eq.precedence());
        assert!(BinaryOp::Eq.precedence() < BinaryOp::Add.precedence());
        assert!(BinaryOp::Add.precedence() < BinaryOp::Mul.precedence());
    }

    #[test]
    fn select_empty_has_no_clauses() {
        let s = Select::empty();
        assert!(s.items.is_empty());
        assert!(s.from.is_empty());
        assert!(s.where_clause.is_none());
    }
}
