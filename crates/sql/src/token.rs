//! Token types produced by the lexer.

use std::fmt;

/// Source position of a token (1-based line and column), used in error
/// messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Span {
    /// Builds a span.
    pub fn new(line: u32, col: u32) -> Span {
        Span { line, col }
    }

    /// The dummy span used for synthesized tokens.
    pub fn zero() -> Span {
        Span { line: 0, col: 0 }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}", self.line, self.col)
    }
}

/// SQL keywords recognized by the dialect, including the entangled-query
/// extensions (`ANSWER`, `CHOOSE`) from the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // the variants are literally the keywords
pub enum Keyword {
    All,
    And,
    Answer,
    As,
    Asc,
    Between,
    By,
    Choose,
    Create,
    Delete,
    Desc,
    Distinct,
    Drop,
    Exists,
    Explain,
    False,
    From,
    Group,
    Having,
    In,
    Index,
    Inner,
    Insert,
    Into,
    Is,
    Join,
    Key,
    Left,
    Like,
    Limit,
    Not,
    Null,
    Offset,
    On,
    Or,
    Order,
    Pending,
    Primary,
    Select,
    Set,
    Show,
    Table,
    Tables,
    True,
    Unique,
    Update,
    Values,
    Where,
}

impl Keyword {
    /// Parses a keyword from an identifier (case-insensitive).
    pub fn parse(word: &str) -> Option<Keyword> {
        let kw = match word.to_ascii_uppercase().as_str() {
            "ALL" => Keyword::All,
            "AND" => Keyword::And,
            "ANSWER" => Keyword::Answer,
            "AS" => Keyword::As,
            "ASC" => Keyword::Asc,
            "BETWEEN" => Keyword::Between,
            "BY" => Keyword::By,
            "CHOOSE" => Keyword::Choose,
            "CREATE" => Keyword::Create,
            "DELETE" => Keyword::Delete,
            "DESC" => Keyword::Desc,
            "DISTINCT" => Keyword::Distinct,
            "DROP" => Keyword::Drop,
            "EXISTS" => Keyword::Exists,
            "EXPLAIN" => Keyword::Explain,
            "FALSE" => Keyword::False,
            "FROM" => Keyword::From,
            "GROUP" => Keyword::Group,
            "HAVING" => Keyword::Having,
            "IN" => Keyword::In,
            "INDEX" => Keyword::Index,
            "INNER" => Keyword::Inner,
            "INSERT" => Keyword::Insert,
            "INTO" => Keyword::Into,
            "IS" => Keyword::Is,
            "JOIN" => Keyword::Join,
            "KEY" => Keyword::Key,
            "LEFT" => Keyword::Left,
            "LIKE" => Keyword::Like,
            "LIMIT" => Keyword::Limit,
            "NOT" => Keyword::Not,
            "NULL" => Keyword::Null,
            "OFFSET" => Keyword::Offset,
            "ON" => Keyword::On,
            "OR" => Keyword::Or,
            "ORDER" => Keyword::Order,
            "PENDING" => Keyword::Pending,
            "PRIMARY" => Keyword::Primary,
            "SELECT" => Keyword::Select,
            "SET" => Keyword::Set,
            "SHOW" => Keyword::Show,
            "TABLE" => Keyword::Table,
            "TABLES" => Keyword::Tables,
            "TRUE" => Keyword::True,
            "UNIQUE" => Keyword::Unique,
            "UPDATE" => Keyword::Update,
            "VALUES" => Keyword::Values,
            "WHERE" => Keyword::Where,
            _ => return None,
        };
        Some(kw)
    }

    /// The canonical (uppercase) spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            Keyword::All => "ALL",
            Keyword::And => "AND",
            Keyword::Answer => "ANSWER",
            Keyword::As => "AS",
            Keyword::Asc => "ASC",
            Keyword::Between => "BETWEEN",
            Keyword::By => "BY",
            Keyword::Choose => "CHOOSE",
            Keyword::Create => "CREATE",
            Keyword::Delete => "DELETE",
            Keyword::Desc => "DESC",
            Keyword::Distinct => "DISTINCT",
            Keyword::Drop => "DROP",
            Keyword::Exists => "EXISTS",
            Keyword::Explain => "EXPLAIN",
            Keyword::False => "FALSE",
            Keyword::From => "FROM",
            Keyword::Group => "GROUP",
            Keyword::Having => "HAVING",
            Keyword::In => "IN",
            Keyword::Index => "INDEX",
            Keyword::Inner => "INNER",
            Keyword::Insert => "INSERT",
            Keyword::Into => "INTO",
            Keyword::Is => "IS",
            Keyword::Join => "JOIN",
            Keyword::Key => "KEY",
            Keyword::Left => "LEFT",
            Keyword::Like => "LIKE",
            Keyword::Limit => "LIMIT",
            Keyword::Not => "NOT",
            Keyword::Null => "NULL",
            Keyword::Offset => "OFFSET",
            Keyword::On => "ON",
            Keyword::Or => "OR",
            Keyword::Order => "ORDER",
            Keyword::Pending => "PENDING",
            Keyword::Primary => "PRIMARY",
            Keyword::Select => "SELECT",
            Keyword::Set => "SET",
            Keyword::Show => "SHOW",
            Keyword::Table => "TABLE",
            Keyword::Tables => "TABLES",
            Keyword::True => "TRUE",
            Keyword::Unique => "UNIQUE",
            Keyword::Update => "UPDATE",
            Keyword::Values => "VALUES",
            Keyword::Where => "WHERE",
        }
    }
}

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A keyword (see [`Keyword`]).
    Keyword(Keyword),
    /// An identifier (table, column, alias...).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A single-quoted string literal (quotes removed, `''` unescaped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(kw) => write!(f, "{}", kw.as_str()),
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Int(i) => write!(f, "{i}"),
            TokenKind::Float(x) => write!(f, "{x}"),
            TokenKind::Str(s) => write!(f, "'{s}'"),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Semicolon => write!(f, ";"),
            TokenKind::Dot => write!(f, "."),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Slash => write!(f, "/"),
            TokenKind::Percent => write!(f, "%"),
            TokenKind::Eq => write!(f, "="),
            TokenKind::NotEq => write!(f, "<>"),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::LtEq => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::GtEq => write!(f, ">="),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token plus its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it starts.
    pub span: Span,
}

impl Token {
    /// Builds a token.
    pub fn new(kind: TokenKind, span: Span) -> Token {
        Token { kind, span }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_parse_is_case_insensitive() {
        assert_eq!(Keyword::parse("select"), Some(Keyword::Select));
        assert_eq!(Keyword::parse("SELECT"), Some(Keyword::Select));
        assert_eq!(Keyword::parse("ChOoSe"), Some(Keyword::Choose));
        assert_eq!(Keyword::parse("answer"), Some(Keyword::Answer));
        assert_eq!(Keyword::parse("flights"), None);
    }

    #[test]
    fn keyword_roundtrip() {
        for kw in [
            Keyword::Select,
            Keyword::Answer,
            Keyword::Choose,
            Keyword::Into,
            Keyword::Where,
            Keyword::Pending,
        ] {
            assert_eq!(Keyword::parse(kw.as_str()), Some(kw));
        }
    }

    #[test]
    fn token_display() {
        assert_eq!(TokenKind::Keyword(Keyword::Select).to_string(), "SELECT");
        assert_eq!(TokenKind::Ident("fno".into()).to_string(), "fno");
        assert_eq!(TokenKind::Str("Paris".into()).to_string(), "'Paris'");
        assert_eq!(TokenKind::NotEq.to_string(), "<>");
        assert_eq!(TokenKind::Eof.to_string(), "<eof>");
    }

    #[test]
    fn span_display() {
        assert_eq!(Span::new(3, 14).to_string(), "line 3, column 14");
    }
}
