//! # youtopia-sql
//!
//! The SQL front end of the Youtopia reproduction: lexer, parser, AST
//! and pretty printer for a SQL dialect extended with the paper's
//! *entangled query* syntax (Section 2.1 of *Coordination through
//! Querying in the Youtopia System*, SIGMOD 2011):
//!
//! ```sql
//! SELECT 'Kramer', fno INTO ANSWER Reservation
//! WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
//!   AND ('Jerry', fno) IN ANSWER Reservation
//! CHOOSE 1
//! ```
//!
//! Free identifiers in an entangled query (`fno` above, which has no
//! `FROM` binding) are *coordination variables*; the coordination layer
//! (`youtopia-core`) decides their values when it matches queries.
//!
//! ```
//! use youtopia_sql::{parse_statement, Statement};
//!
//! let stmt = parse_statement(
//!     "SELECT 'Kramer', fno INTO ANSWER Reservation \
//!      WHERE ('Jerry', fno) IN ANSWER Reservation CHOOSE 1",
//! ).unwrap();
//! assert!(matches!(stmt, Statement::Entangled(_)));
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod token;

pub use ast::{
    BinaryOp, ColumnDef, CreateIndex, CreateTable, Delete, EntangledHead, EntangledSelect, Expr,
    Insert, Join, JoinKind, OrderByItem, Select, SelectItem, Statement, TableAtom, TableWithJoins,
    UnaryOp, Update,
};
pub use error::{SqlError, SqlResult};
pub use lexer::lex;
pub use parser::{parse_expr, parse_statement, parse_statements};
pub use token::{Keyword, Span, Token, TokenKind};
