//! Recursive-descent parser for the Youtopia SQL dialect.
//!
//! The entry points are [`parse_statement`] (exactly one statement) and
//! [`parse_statements`] (a semicolon-separated script). The grammar is
//! standard SQL plus the entangled-query extension of the paper's
//! Section 2.1:
//!
//! ```text
//! entangled  := SELECT head (',' head)* [WHERE expr] [CHOOSE int]
//! head       := expr_list INTO ANSWER ident (',' ANSWER ident)*
//! answer_in  := tuple [NOT] IN ANSWER ident      -- inside WHERE
//! ```

use youtopia_storage::{DataType, Value};

use crate::ast::*;
use crate::error::{SqlError, SqlResult};
use crate::lexer::lex;
use crate::token::{Keyword, Span, Token, TokenKind};

/// Parses exactly one statement (a trailing semicolon is allowed).
pub fn parse_statement(input: &str) -> SqlResult<Statement> {
    let mut p = Parser::new(input)?;
    let stmt = p.parse_statement()?;
    p.eat(&TokenKind::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parses a semicolon-separated script into statements.
pub fn parse_statements(input: &str) -> SqlResult<Vec<Statement>> {
    let mut p = Parser::new(input)?;
    let mut stmts = Vec::new();
    loop {
        while p.eat(&TokenKind::Semicolon) {}
        if p.at_eof() {
            return Ok(stmts);
        }
        stmts.push(p.parse_statement()?);
        if !p.at_eof() && !p.check(&TokenKind::Semicolon) {
            return Err(p.unexpected("';' between statements"));
        }
    }
}

/// Parses a standalone expression (used by tests and the admin CLI).
pub fn parse_expr(input: &str) -> SqlResult<Expr> {
    let mut p = Parser::new(input)?;
    let e = p.parse_expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(input: &str) -> SqlResult<Parser> {
        Ok(Parser {
            tokens: lex(input)?,
            pos: 0,
        })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn peek_ahead(&self, n: usize) -> &TokenKind {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].kind
    }

    fn bump(&mut self) -> Token {
        let tok = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        tok
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek_kind(), TokenKind::Eof)
    }

    fn check(&self, kind: &TokenKind) -> bool {
        self.peek_kind() == kind
    }

    fn check_kw(&self, kw: Keyword) -> bool {
        matches!(self.peek_kind(), TokenKind::Keyword(k) if *k == kw)
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.check(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        if self.check_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> SqlResult<Token> {
        if self.check(kind) {
            Ok(self.bump())
        } else {
            Err(self.unexpected(&format!("'{kind}'")))
        }
    }

    fn expect_kw(&mut self, kw: Keyword) -> SqlResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.unexpected(kw.as_str()))
        }
    }

    fn expect_eof(&self) -> SqlResult<()> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.unexpected("end of input"))
        }
    }

    fn unexpected(&self, wanted: &str) -> SqlError {
        SqlError::new(
            format!("expected {wanted}, found '{}'", self.peek_kind()),
            self.peek().span,
        )
    }

    fn expect_ident(&mut self) -> SqlResult<String> {
        match self.peek_kind().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            _ => Err(self.unexpected("an identifier")),
        }
    }

    fn expect_uint(&mut self) -> SqlResult<u64> {
        match *self.peek_kind() {
            TokenKind::Int(i) if i >= 0 => {
                self.bump();
                Ok(i as u64)
            }
            _ => Err(self.unexpected("a non-negative integer")),
        }
    }

    // ---------------------------------------------------------------- //
    // Statements
    // ---------------------------------------------------------------- //

    fn parse_statement(&mut self) -> SqlResult<Statement> {
        match self.peek_kind() {
            TokenKind::Keyword(Keyword::Create) => self.parse_create(),
            TokenKind::Keyword(Keyword::Drop) => self.parse_drop(),
            TokenKind::Keyword(Keyword::Insert) => self.parse_insert(),
            TokenKind::Keyword(Keyword::Update) => self.parse_update(),
            TokenKind::Keyword(Keyword::Delete) => self.parse_delete(),
            TokenKind::Keyword(Keyword::Select) => self.parse_select_or_entangled(),
            TokenKind::Keyword(Keyword::Show) => self.parse_show(),
            TokenKind::Keyword(Keyword::Explain) => self.parse_explain(),
            _ => Err(self.unexpected("a statement")),
        }
    }

    fn parse_explain(&mut self) -> SqlResult<Statement> {
        let span = self.peek().span;
        self.expect_kw(Keyword::Explain)?;
        if !self.check_kw(Keyword::Select) {
            return Err(SqlError::new(
                "EXPLAIN supports SELECT and entangled queries only",
                span,
            ));
        }
        let inner = self.parse_select_or_entangled()?;
        Ok(Statement::Explain(Box::new(inner)))
    }

    fn parse_show(&mut self) -> SqlResult<Statement> {
        self.expect_kw(Keyword::Show)?;
        if self.eat_kw(Keyword::Tables) {
            Ok(Statement::ShowTables)
        } else if self.eat_kw(Keyword::Pending) {
            Ok(Statement::ShowPending)
        } else {
            Err(self.unexpected("TABLES or PENDING"))
        }
    }

    fn parse_create(&mut self) -> SqlResult<Statement> {
        self.expect_kw(Keyword::Create)?;
        if self.eat_kw(Keyword::Table) {
            return self.parse_create_table();
        }
        let unique = self.eat_kw(Keyword::Unique);
        if self.eat_kw(Keyword::Index) {
            return self.parse_create_index(unique);
        }
        Err(self.unexpected("TABLE or [UNIQUE] INDEX"))
    }

    fn parse_create_table(&mut self) -> SqlResult<Statement> {
        let name = self.expect_ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut columns: Vec<ColumnDef> = Vec::new();
        let mut primary_key: Vec<String> = Vec::new();
        loop {
            if self.check_kw(Keyword::Primary) {
                self.bump();
                self.expect_kw(Keyword::Key)?;
                self.expect(&TokenKind::LParen)?;
                loop {
                    primary_key.push(self.expect_ident()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RParen)?;
            } else {
                let col_name = self.expect_ident()?;
                let ty_span = self.peek().span;
                let ty_name = self.expect_ident()?;
                let ty = DataType::parse(&ty_name)
                    .ok_or_else(|| SqlError::new(format!("unknown type '{ty_name}'"), ty_span))?;
                let mut nullable = true;
                let mut pk = false;
                loop {
                    if self.check_kw(Keyword::Not) {
                        self.bump();
                        self.expect_kw(Keyword::Null)?;
                        nullable = false;
                    } else if self.eat_kw(Keyword::Null) {
                        nullable = true;
                    } else if self.check_kw(Keyword::Primary) {
                        self.bump();
                        self.expect_kw(Keyword::Key)?;
                        pk = true;
                        nullable = false;
                    } else {
                        break;
                    }
                }
                if pk {
                    primary_key.push(col_name.clone());
                }
                columns.push(ColumnDef {
                    name: col_name,
                    ty,
                    nullable,
                    primary_key: pk,
                });
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        // PK columns are implicitly NOT NULL.
        for col in &mut columns {
            if primary_key
                .iter()
                .any(|k| k.eq_ignore_ascii_case(&col.name))
            {
                col.nullable = false;
            }
        }
        Ok(Statement::CreateTable(CreateTable {
            name,
            columns,
            primary_key,
        }))
    }

    fn parse_create_index(&mut self, unique: bool) -> SqlResult<Statement> {
        let name = self.expect_ident()?;
        self.expect_kw(Keyword::On)?;
        let table = self.expect_ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut columns = Vec::new();
        loop {
            columns.push(self.expect_ident()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(Statement::CreateIndex(CreateIndex {
            name,
            table,
            columns,
            unique,
        }))
    }

    fn parse_drop(&mut self) -> SqlResult<Statement> {
        self.expect_kw(Keyword::Drop)?;
        self.expect_kw(Keyword::Table)?;
        let name = self.expect_ident()?;
        Ok(Statement::DropTable { name })
    }

    fn parse_insert(&mut self) -> SqlResult<Statement> {
        self.expect_kw(Keyword::Insert)?;
        self.expect_kw(Keyword::Into)?;
        let table = self.expect_ident()?;
        let columns = if self.eat(&TokenKind::LParen) {
            let mut cols = Vec::new();
            loop {
                cols.push(self.expect_ident()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
            Some(cols)
        } else {
            None
        };
        self.expect_kw(Keyword::Values)?;
        let mut rows = Vec::new();
        loop {
            self.expect(&TokenKind::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.parse_expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
            rows.push(row);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(Statement::Insert(Insert {
            table,
            columns,
            rows,
        }))
    }

    fn parse_update(&mut self) -> SqlResult<Statement> {
        self.expect_kw(Keyword::Update)?;
        let table = self.expect_ident()?;
        self.expect_kw(Keyword::Set)?;
        let mut sets = Vec::new();
        loop {
            let col = self.expect_ident()?;
            self.expect(&TokenKind::Eq)?;
            let expr = self.parse_expr()?;
            sets.push((col, expr));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw(Keyword::Where) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Update(Update {
            table,
            sets,
            where_clause,
        }))
    }

    fn parse_delete(&mut self) -> SqlResult<Statement> {
        self.expect_kw(Keyword::Delete)?;
        self.expect_kw(Keyword::From)?;
        let table = self.expect_ident()?;
        let where_clause = if self.eat_kw(Keyword::Where) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Delete(Delete {
            table,
            where_clause,
        }))
    }

    // ---------------------------------------------------------------- //
    // SELECT and entangled SELECT
    // ---------------------------------------------------------------- //

    fn parse_select_or_entangled(&mut self) -> SqlResult<Statement> {
        self.expect_kw(Keyword::Select)?;
        let distinct = self.eat_kw(Keyword::Distinct);

        // Parse the projection; if INTO follows, reinterpret as an
        // entangled head (aliases and wildcards are illegal there).
        let items = self.parse_select_items()?;

        if self.check_kw(Keyword::Into) {
            if distinct {
                return Err(SqlError::new(
                    "DISTINCT is not supported in entangled queries",
                    self.peek().span,
                ));
            }
            return self.parse_entangled_tail(items).map(Statement::Entangled);
        }

        let from = if self.eat_kw(Keyword::From) {
            self.parse_from()?
        } else {
            Vec::new()
        };
        let where_clause = if self.eat_kw(Keyword::Where) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let group_by = if self.check_kw(Keyword::Group) {
            self.bump();
            self.expect_kw(Keyword::By)?;
            let mut exprs = vec![self.parse_expr()?];
            while self.eat(&TokenKind::Comma) {
                exprs.push(self.parse_expr()?);
            }
            exprs
        } else {
            Vec::new()
        };
        let having = if self.eat_kw(Keyword::Having) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let order_by = if self.check_kw(Keyword::Order) {
            self.bump();
            self.expect_kw(Keyword::By)?;
            let mut items = Vec::new();
            loop {
                let expr = self.parse_expr()?;
                let desc = if self.eat_kw(Keyword::Desc) {
                    true
                } else {
                    self.eat_kw(Keyword::Asc);
                    false
                };
                items.push(OrderByItem { expr, desc });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            items
        } else {
            Vec::new()
        };
        let limit = if self.eat_kw(Keyword::Limit) {
            Some(self.expect_uint()?)
        } else {
            None
        };
        let offset = if self.eat_kw(Keyword::Offset) {
            Some(self.expect_uint()?)
        } else {
            None
        };

        Ok(Statement::Select(Select {
            distinct,
            items,
            from,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
            offset,
        }))
    }

    fn parse_select_items(&mut self) -> SqlResult<Vec<SelectItem>> {
        let mut items = Vec::new();
        loop {
            if self.eat(&TokenKind::Star) {
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.parse_expr()?;
                // `INTO` ends an entangled head; aliases otherwise.
                let alias = if self.eat_kw(Keyword::As) {
                    Some(self.expect_ident()?)
                } else if let TokenKind::Ident(name) = self.peek_kind().clone() {
                    self.bump();
                    Some(name)
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat(&TokenKind::Comma) {
                return Ok(items);
            }
            // A trailing `ANSWER` after a comma belongs to the entangled
            // INTO clause, handled by the caller; it cannot start an item.
            if self.check_kw(Keyword::Answer) {
                return Ok(items);
            }
        }
    }

    /// Parses `INTO ANSWER rel (, ANSWER rel)* (, exprs INTO ANSWER ...)*
    /// [WHERE ...] [CHOOSE k]` given the already-parsed first head
    /// expression list.
    fn parse_entangled_tail(&mut self, first_items: Vec<SelectItem>) -> SqlResult<EntangledSelect> {
        let first_exprs = Self::items_to_head_exprs(first_items, self.peek().span)?;
        let mut heads = Vec::new();
        let mut current_exprs = first_exprs;
        loop {
            self.expect_kw(Keyword::Into)?;
            self.expect_kw(Keyword::Answer)?;
            let mut relations = vec![self.expect_ident()?];
            let mut next_head_exprs: Option<Vec<Expr>> = None;
            while self.eat(&TokenKind::Comma) {
                if self.eat_kw(Keyword::Answer) {
                    // another relation for the same head
                    relations.push(self.expect_ident()?);
                } else {
                    // a new head's expression list begins here
                    let items = self.parse_select_items()?;
                    next_head_exprs = Some(Self::items_to_head_exprs(items, self.peek().span)?);
                    break;
                }
            }
            heads.push(EntangledHead {
                exprs: current_exprs,
                relations,
            });
            match next_head_exprs {
                Some(exprs) => current_exprs = exprs,
                None => break,
            }
        }
        let where_clause = if self.eat_kw(Keyword::Where) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let choose = if self.eat_kw(Keyword::Choose) {
            self.expect_uint()?
        } else {
            1
        };
        Ok(EntangledSelect {
            heads,
            where_clause,
            choose,
        })
    }

    fn items_to_head_exprs(items: Vec<SelectItem>, span: Span) -> SqlResult<Vec<Expr>> {
        items
            .into_iter()
            .map(|item| match item {
                SelectItem::Expr { expr, alias: None } => Ok(expr),
                SelectItem::Expr { alias: Some(a), .. } => Err(SqlError::new(
                    format!("alias '{a}' is not allowed in an entangled head"),
                    span,
                )),
                SelectItem::Wildcard => Err(SqlError::new(
                    "'*' is not allowed in an entangled head",
                    span,
                )),
            })
            .collect()
    }

    fn parse_from(&mut self) -> SqlResult<Vec<TableWithJoins>> {
        let mut tables = Vec::new();
        loop {
            let base = self.parse_table_atom()?;
            let mut joins = Vec::new();
            loop {
                let kind = if self.check_kw(Keyword::Join) || self.check_kw(Keyword::Inner) {
                    self.eat_kw(Keyword::Inner);
                    self.expect_kw(Keyword::Join)?;
                    JoinKind::Inner
                } else if self.check_kw(Keyword::Left) {
                    self.bump();
                    self.expect_kw(Keyword::Join)?;
                    JoinKind::Left
                } else {
                    break;
                };
                let table = self.parse_table_atom()?;
                self.expect_kw(Keyword::On)?;
                let on = self.parse_expr()?;
                joins.push(Join { kind, table, on });
            }
            tables.push(TableWithJoins { base, joins });
            if !self.eat(&TokenKind::Comma) {
                return Ok(tables);
            }
        }
    }

    fn parse_table_atom(&mut self) -> SqlResult<TableAtom> {
        let name = self.expect_ident()?;
        let alias = if self.eat_kw(Keyword::As) {
            Some(self.expect_ident()?)
        } else if let TokenKind::Ident(a) = self.peek_kind().clone() {
            self.bump();
            Some(a)
        } else {
            None
        };
        Ok(TableAtom { name, alias })
    }

    // ---------------------------------------------------------------- //
    // Expressions (precedence climbing)
    // ---------------------------------------------------------------- //

    fn parse_expr(&mut self) -> SqlResult<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> SqlResult<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_kw(Keyword::Or) {
            let right = self.parse_and()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::Or,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> SqlResult<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_kw(Keyword::And) {
            let right = self.parse_not()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::And,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> SqlResult<Expr> {
        // `NOT EXISTS` / `NOT IN` are handled where they occur; a prefix
        // NOT here covers `NOT <predicate>`.
        if self.check_kw(Keyword::Not)
            && !matches!(
                self.peek_ahead(1),
                TokenKind::Keyword(
                    Keyword::In | Keyword::Between | Keyword::Like | Keyword::Exists
                )
            )
        {
            self.bump();
            let inner = self.parse_not()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            });
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> SqlResult<Expr> {
        let left = self.parse_additive()?;
        // comparison operators (non-associative chain, parsed left-assoc)
        let op = match self.peek_kind() {
            TokenKind::Eq => Some(BinaryOp::Eq),
            TokenKind::NotEq => Some(BinaryOp::NotEq),
            TokenKind::Lt => Some(BinaryOp::Lt),
            TokenKind::LtEq => Some(BinaryOp::LtEq),
            TokenKind::Gt => Some(BinaryOp::Gt),
            TokenKind::GtEq => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let right = self.parse_additive()?;
            return Ok(Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            });
        }
        // postfix predicates
        self.parse_postfix_predicates(left)
    }

    fn parse_postfix_predicates(&mut self, left: Expr) -> SqlResult<Expr> {
        let negated = if self.check_kw(Keyword::Not)
            && matches!(
                self.peek_ahead(1),
                TokenKind::Keyword(Keyword::In | Keyword::Between | Keyword::Like)
            ) {
            self.bump();
            true
        } else {
            false
        };

        if self.eat_kw(Keyword::In) {
            return self.parse_in_tail(left, negated);
        }
        if self.eat_kw(Keyword::Between) {
            let low = self.parse_additive()?;
            self.expect_kw(Keyword::And)?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw(Keyword::Like) {
            let pattern = self.parse_additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if negated {
            return Err(self.unexpected("IN, BETWEEN or LIKE after NOT"));
        }
        if self.check_kw(Keyword::Is) {
            self.bump();
            let negated = self.eat_kw(Keyword::Not);
            self.expect_kw(Keyword::Null)?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        Ok(left)
    }

    fn parse_in_tail(&mut self, left: Expr, negated: bool) -> SqlResult<Expr> {
        let operand_exprs = |e: Expr| match e {
            Expr::Tuple(es) => es,
            other => vec![other],
        };
        if self.eat_kw(Keyword::Answer) {
            let relation = self.expect_ident()?;
            return Ok(Expr::InAnswer {
                exprs: operand_exprs(left),
                relation,
                negated,
            });
        }
        self.expect(&TokenKind::LParen)?;
        if self.check_kw(Keyword::Select) {
            let query = self.parse_subquery_body()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(Expr::InSubquery {
                exprs: operand_exprs(left),
                query: Box::new(query),
                negated,
            });
        }
        let mut list = vec![self.parse_expr()?];
        while self.eat(&TokenKind::Comma) {
            list.push(self.parse_expr()?);
        }
        self.expect(&TokenKind::RParen)?;
        Ok(Expr::InList {
            expr: Box::new(left),
            list,
            negated,
        })
    }

    /// Parses a full SELECT body for use as a subquery (no entangled
    /// forms allowed inside subqueries).
    fn parse_subquery_body(&mut self) -> SqlResult<Select> {
        let span = self.peek().span;
        match self.parse_select_or_entangled()? {
            Statement::Select(s) => Ok(s),
            Statement::Entangled(_) => Err(SqlError::new(
                "entangled queries cannot appear as subqueries",
                span,
            )),
            _ => unreachable!("parse_select_or_entangled returns selects"),
        }
    }

    fn parse_additive(&mut self) -> SqlResult<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Plus => BinaryOp::Add,
                TokenKind::Minus => BinaryOp::Sub,
                _ => return Ok(left),
            };
            self.bump();
            let right = self.parse_multiplicative()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
    }

    fn parse_multiplicative(&mut self) -> SqlResult<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Star => BinaryOp::Mul,
                TokenKind::Slash => BinaryOp::Div,
                TokenKind::Percent => BinaryOp::Mod,
                _ => return Ok(left),
            };
            self.bump();
            let right = self.parse_unary()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
    }

    fn parse_unary(&mut self) -> SqlResult<Expr> {
        if self.eat(&TokenKind::Minus) {
            let inner = self.parse_unary()?;
            // Fold negation into numeric literals for cleaner ASTs.
            return Ok(match inner {
                Expr::Literal(Value::Int(i)) => Expr::Literal(Value::Int(-i)),
                Expr::Literal(Value::Float(x)) => Expr::Literal(Value::Float(-x)),
                other => Expr::Unary {
                    op: UnaryOp::Neg,
                    expr: Box::new(other),
                },
            });
        }
        if self.eat(&TokenKind::Plus) {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> SqlResult<Expr> {
        match self.peek_kind().clone() {
            TokenKind::Int(i) => {
                self.bump();
                Ok(Expr::Literal(Value::Int(i)))
            }
            TokenKind::Float(x) => {
                self.bump();
                Ok(Expr::Literal(Value::Float(x)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Literal(Value::Str(s)))
            }
            TokenKind::Keyword(Keyword::True) => {
                self.bump();
                Ok(Expr::Literal(Value::Bool(true)))
            }
            TokenKind::Keyword(Keyword::False) => {
                self.bump();
                Ok(Expr::Literal(Value::Bool(false)))
            }
            TokenKind::Keyword(Keyword::Null) => {
                self.bump();
                Ok(Expr::Literal(Value::Null))
            }
            TokenKind::Keyword(Keyword::Exists) => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let query = self.parse_subquery_body()?;
                self.expect(&TokenKind::RParen)?;
                Ok(Expr::Exists {
                    query: Box::new(query),
                    negated: false,
                })
            }
            TokenKind::Keyword(Keyword::Not)
                if matches!(self.peek_ahead(1), TokenKind::Keyword(Keyword::Exists)) =>
            {
                self.bump();
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let query = self.parse_subquery_body()?;
                self.expect(&TokenKind::RParen)?;
                Ok(Expr::Exists {
                    query: Box::new(query),
                    negated: true,
                })
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.eat(&TokenKind::Dot) {
                    let col = self.expect_ident()?;
                    return Ok(Expr::Column {
                        table: Some(name),
                        name: col,
                    });
                }
                if self.eat(&TokenKind::LParen) {
                    // function call
                    if self.eat(&TokenKind::Star) {
                        self.expect(&TokenKind::RParen)?;
                        return Ok(Expr::Function {
                            name: name.to_ascii_uppercase(),
                            args: vec![],
                            star: true,
                        });
                    }
                    let mut args = Vec::new();
                    if !self.check(&TokenKind::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                    return Ok(Expr::Function {
                        name: name.to_ascii_uppercase(),
                        args,
                        star: false,
                    });
                }
                Ok(Expr::Column { table: None, name })
            }
            TokenKind::LParen => {
                self.bump();
                if self.check_kw(Keyword::Select) {
                    // scalar subquery position is not supported; subqueries
                    // appear behind IN / EXISTS which handle them directly.
                    return Err(SqlError::new(
                        "subqueries are only allowed behind IN or EXISTS",
                        self.peek().span,
                    ));
                }
                let first = self.parse_expr()?;
                if self.eat(&TokenKind::Comma) {
                    let mut exprs = vec![first];
                    loop {
                        exprs.push(self.parse_expr()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                    return Ok(Expr::Tuple(exprs));
                }
                self.expect(&TokenKind::RParen)?;
                Ok(first)
            }
            _ => Err(self.unexpected("an expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(sql: &str) {
        let stmt = parse_statement(sql).unwrap_or_else(|e| panic!("parse '{sql}': {e}"));
        let printed = stmt.to_string();
        let reparsed =
            parse_statement(&printed).unwrap_or_else(|e| panic!("reparse '{printed}': {e}"));
        assert_eq!(
            stmt, reparsed,
            "round-trip mismatch for '{sql}' -> '{printed}'"
        );
    }

    #[test]
    fn parses_the_papers_kramer_query() {
        let sql = "SELECT 'Kramer', fno INTO ANSWER Reservation \
                   WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') \
                   AND ('Jerry', fno) IN ANSWER Reservation \
                   CHOOSE 1";
        let stmt = parse_statement(sql).unwrap();
        let Statement::Entangled(q) = stmt else {
            panic!("expected entangled")
        };
        assert_eq!(q.choose, 1);
        assert_eq!(q.heads.len(), 1);
        assert_eq!(q.heads[0].relations, vec!["Reservation"]);
        assert_eq!(
            q.heads[0].exprs,
            vec![Expr::lit("Kramer"), Expr::col("fno")]
        );
        let conjuncts = q.where_clause.as_ref().unwrap().conjuncts().len();
        assert_eq!(conjuncts, 2);
    }

    #[test]
    fn entangled_choose_defaults_to_one() {
        let sql = "SELECT 'K', fno INTO ANSWER R WHERE ('J', fno) IN ANSWER R";
        let Statement::Entangled(q) = parse_statement(sql).unwrap() else {
            panic!()
        };
        assert_eq!(q.choose, 1);
    }

    #[test]
    fn entangled_multiple_relations_single_head() {
        // the paper's literal grammar: INTO ANSWER t1, ANSWER t2
        let sql = "SELECT 'K', x INTO ANSWER R1, ANSWER R2 CHOOSE 1";
        let Statement::Entangled(q) = parse_statement(sql).unwrap() else {
            panic!()
        };
        assert_eq!(q.heads.len(), 1);
        assert_eq!(q.heads[0].relations, vec!["R1", "R2"]);
    }

    #[test]
    fn entangled_multi_head_extension() {
        let sql = "SELECT 'Jerry', fno INTO ANSWER Res, 'Jerry', hid INTO ANSWER HotelRes \
                   WHERE ('Kramer', fno) IN ANSWER Res AND ('Kramer', hid) IN ANSWER HotelRes \
                   CHOOSE 1";
        let Statement::Entangled(q) = parse_statement(sql).unwrap() else {
            panic!()
        };
        assert_eq!(q.heads.len(), 2);
        assert_eq!(q.heads[0].relations, vec!["Res"]);
        assert_eq!(q.heads[1].relations, vec!["HotelRes"]);
        assert_eq!(q.heads[1].exprs, vec![Expr::lit("Jerry"), Expr::col("hid")]);
    }

    #[test]
    fn not_in_answer() {
        let sql = "SELECT 'K', x INTO ANSWER R WHERE ('J', x) NOT IN ANSWER R";
        let Statement::Entangled(q) = parse_statement(sql).unwrap() else {
            panic!()
        };
        match q.where_clause.unwrap() {
            Expr::InAnswer {
                negated,
                relation,
                exprs,
            } => {
                assert!(negated);
                assert_eq!(relation, "R");
                assert_eq!(exprs.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn select_with_everything() {
        let sql = "SELECT DISTINCT f.fno AS n, COUNT(*) FROM Flights AS f \
                   JOIN Airlines a ON f.fno = a.fno \
                   WHERE f.dest = 'Paris' AND f.price < 500 \
                   GROUP BY f.fno HAVING COUNT(*) > 1 \
                   ORDER BY n DESC LIMIT 10 OFFSET 2";
        let Statement::Select(s) = parse_statement(sql).unwrap() else {
            panic!()
        };
        assert!(s.distinct);
        assert_eq!(s.items.len(), 2);
        assert_eq!(s.from.len(), 1);
        assert_eq!(s.from[0].joins.len(), 1);
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        assert_eq!(s.order_by.len(), 1);
        assert!(s.order_by[0].desc);
        assert_eq!(s.limit, Some(10));
        assert_eq!(s.offset, Some(2));
    }

    #[test]
    fn left_join_and_comma_from() {
        let sql = "SELECT * FROM a LEFT JOIN b ON a.x = b.x, c";
        let Statement::Select(s) = parse_statement(sql).unwrap() else {
            panic!()
        };
        assert_eq!(s.from.len(), 2);
        assert_eq!(s.from[0].joins[0].kind, JoinKind::Left);
    }

    #[test]
    fn ddl_statements() {
        let sql = "CREATE TABLE Flights (fno INT PRIMARY KEY, dest STRING NOT NULL, \
                   price FLOAT, ok BOOL, data BYTES)";
        let Statement::CreateTable(ct) = parse_statement(sql).unwrap() else {
            panic!()
        };
        assert_eq!(ct.primary_key, vec!["fno"]);
        assert_eq!(ct.columns.len(), 5);
        assert!(!ct.columns[0].nullable);
        assert!(!ct.columns[1].nullable);
        assert!(ct.columns[2].nullable);

        let sql2 = "CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b))";
        let Statement::CreateTable(ct2) = parse_statement(sql2).unwrap() else {
            panic!()
        };
        assert_eq!(ct2.primary_key, vec!["a", "b"]);
        assert!(!ct2.columns[0].nullable); // pk implies NOT NULL

        let sql3 = "CREATE UNIQUE INDEX by_dest ON Flights (dest, price)";
        let Statement::CreateIndex(ci) = parse_statement(sql3).unwrap() else {
            panic!()
        };
        assert!(ci.unique);
        assert_eq!(ci.columns, vec!["dest", "price"]);

        assert!(matches!(
            parse_statement("DROP TABLE Flights").unwrap(),
            Statement::DropTable { .. }
        ));
    }

    #[test]
    fn dml_statements() {
        let Statement::Insert(ins) =
            parse_statement("INSERT INTO Flights (fno, dest) VALUES (122, 'Paris'), (136, 'Rome')")
                .unwrap()
        else {
            panic!()
        };
        assert_eq!(ins.rows.len(), 2);
        assert_eq!(
            ins.columns.as_deref(),
            Some(&["fno".to_string(), "dest".to_string()][..])
        );

        let Statement::Update(up) =
            parse_statement("UPDATE Flights SET price = price * 1.1 WHERE dest = 'Paris'").unwrap()
        else {
            panic!()
        };
        assert_eq!(up.sets.len(), 1);
        assert!(up.where_clause.is_some());

        let Statement::Delete(del) =
            parse_statement("DELETE FROM Flights WHERE fno = 122").unwrap()
        else {
            panic!()
        };
        assert!(del.where_clause.is_some());
    }

    #[test]
    fn show_statements() {
        assert_eq!(
            parse_statement("SHOW TABLES").unwrap(),
            Statement::ShowTables
        );
        assert_eq!(
            parse_statement("SHOW PENDING;").unwrap(),
            Statement::ShowPending
        );
    }

    #[test]
    fn explain_statements() {
        let Statement::Explain(inner) =
            parse_statement("EXPLAIN SELECT * FROM t WHERE a = 1").unwrap()
        else {
            panic!()
        };
        assert!(matches!(*inner, Statement::Select(_)));

        let Statement::Explain(inner) =
            parse_statement("EXPLAIN SELECT 'K', x INTO ANSWER R CHOOSE 1").unwrap()
        else {
            panic!()
        };
        assert!(matches!(*inner, Statement::Entangled(_)));

        // only queries are explainable
        assert!(parse_statement("EXPLAIN INSERT INTO t VALUES (1)").is_err());
        assert!(parse_statement("EXPLAIN SHOW TABLES").is_err());
        roundtrip("EXPLAIN SELECT a FROM t WHERE a < 3 ORDER BY a LIMIT 1");
        roundtrip("EXPLAIN SELECT 'K', x INTO ANSWER R WHERE x IN (SELECT a FROM t) CHOOSE 1");
    }

    #[test]
    fn expression_precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        assert_eq!(e.to_string(), "1 + 2 * 3");
        assert_eq!(
            parse_expr("(1 + 2) * 3").unwrap().to_string(),
            "(1 + 2) * 3"
        );
        assert_eq!(
            parse_expr("a = 1 OR b = 2 AND c = 3").unwrap().to_string(),
            "a = 1 OR b = 2 AND c = 3"
        );
        assert_eq!(
            parse_expr("NOT a = 1 AND b = 2").unwrap().to_string(),
            "NOT a = 1 AND b = 2"
        );
    }

    #[test]
    fn negative_literals_fold() {
        assert_eq!(parse_expr("-5").unwrap(), Expr::lit(-5i64));
        assert_eq!(parse_expr("-2.5").unwrap(), Expr::lit(-2.5));
        assert_eq!(parse_expr("+7").unwrap(), Expr::lit(7i64));
    }

    #[test]
    fn predicates_parse() {
        assert!(matches!(
            parse_expr("x IS NULL").unwrap(),
            Expr::IsNull { negated: false, .. }
        ));
        assert!(matches!(
            parse_expr("x IS NOT NULL").unwrap(),
            Expr::IsNull { negated: true, .. }
        ));
        assert!(matches!(
            parse_expr("x IN (1, 2, 3)").unwrap(),
            Expr::InList { negated: false, .. }
        ));
        assert!(matches!(
            parse_expr("x NOT IN (1)").unwrap(),
            Expr::InList { negated: true, .. }
        ));
        assert!(matches!(
            parse_expr("x BETWEEN 1 AND 5").unwrap(),
            Expr::Between { negated: false, .. }
        ));
        assert!(matches!(
            parse_expr("x NOT LIKE 'J%'").unwrap(),
            Expr::Like { negated: true, .. }
        ));
        assert!(matches!(
            parse_expr("EXISTS (SELECT 1)").unwrap(),
            Expr::Exists { negated: false, .. }
        ));
        assert!(matches!(
            parse_expr("NOT EXISTS (SELECT 1)").unwrap(),
            Expr::Exists { negated: true, .. }
        ));
    }

    #[test]
    fn tuple_in_subquery() {
        let e = parse_expr("(a, b) IN (SELECT x, y FROM t)").unwrap();
        match e {
            Expr::InSubquery { exprs, .. } => assert_eq!(exprs.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_statements_script() {
        let stmts =
            parse_statements("CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;")
                .unwrap();
        assert_eq!(stmts.len(), 3);
        assert!(parse_statements("").unwrap().is_empty());
        assert!(parse_statements(";;;").unwrap().is_empty());
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse_statement("SELECT FROM").unwrap_err();
        assert!(err.span.line >= 1);
        let err2 = parse_statement("CREATE TABLE t (a WAT)").unwrap_err();
        assert!(err2.message.contains("unknown type"));
    }

    #[test]
    fn garbage_after_statement_is_error() {
        assert!(parse_statement("SELECT 1 garbage garbage").is_err());
        assert!(parse_statement("SHOW TABLES SELECT").is_err());
    }

    #[test]
    fn entangled_rejects_wildcard_and_alias() {
        assert!(parse_statement("SELECT * INTO ANSWER R").is_err());
        assert!(parse_statement("SELECT x AS y INTO ANSWER R").is_err());
        assert!(parse_statement("SELECT DISTINCT x INTO ANSWER R").is_err());
    }

    #[test]
    fn entangled_cannot_be_a_subquery() {
        let err =
            parse_statement("SELECT 1 FROM t WHERE x IN (SELECT y INTO ANSWER R)").unwrap_err();
        assert!(err.message.contains("entangled"));
    }

    #[test]
    fn roundtrips() {
        for sql in [
            "SELECT 'Kramer', fno INTO ANSWER Reservation WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') AND ('Jerry', fno) IN ANSWER Reservation CHOOSE 1",
            "SELECT 'K', x INTO ANSWER R1, ANSWER R2 CHOOSE 2",
            "SELECT 'J', fno INTO ANSWER Res, 'J', hid INTO ANSWER HotelRes WHERE ('K', fno) IN ANSWER Res CHOOSE 1",
            "SELECT DISTINCT a AS x, COUNT(*) FROM t JOIN u ON t.a = u.a WHERE a > 1 GROUP BY a HAVING COUNT(*) > 2 ORDER BY x DESC LIMIT 5 OFFSET 1",
            "SELECT * FROM a LEFT JOIN b ON a.x = b.x, c AS z",
            "CREATE TABLE Flights (fno INT, dest STRING NOT NULL, price FLOAT, PRIMARY KEY (fno))",
            "CREATE UNIQUE INDEX i ON t (a, b)",
            "INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)",
            "UPDATE t SET a = a + 1, b = 'y' WHERE a BETWEEN 1 AND 5",
            "DELETE FROM t WHERE name LIKE 'J%' OR name IS NULL",
            "SELECT x FROM t WHERE (a, b) NOT IN (SELECT a, b FROM u) AND EXISTS (SELECT 1 FROM v)",
            "SELECT -x + 3 * (y - 2) FROM t WHERE NOT (a = 1 OR b = 2)",
            "SHOW TABLES",
            "SHOW PENDING",
        ] {
            roundtrip(sql);
        }
    }
}
