//! The experiment runner: regenerates every experiment in DESIGN.md's
//! index (E1–E10) and prints the tables recorded in EXPERIMENTS.md.
//!
//! Run with: `cargo run --release -p youtopia-bench --bin experiments`
//!
//! Unlike the Criterion benches (statistical, HTML reports), this
//! runner gives one compact, deterministic text report — the artifact
//! EXPERIMENTS.md quotes.

use std::collections::HashMap;
use std::time::Instant;

use youtopia_bench::preload_noise;
use youtopia_core::{Coordinator, CoordinatorConfig, MatchConfig, MatcherKind, Submission};
use youtopia_exec::run_sql;
use youtopia_storage::Database;
use youtopia_travel::{FlightPrefs, TravelService, WorkloadGen};

fn main() {
    println!("Youtopia experiment runner — all experiments from DESIGN.md §5\n");
    e1_fig1_worked_example();
    e2_pair_scenario();
    e3_constraint_complexity();
    e4_simultaneous_pairs();
    e5_group_size();
    e6_adhoc();
    e7_loaded_system();
    e8_admin_surface();
    e9_choose_distribution();
    e10_ablation();
    println!("\nAll experiments completed.");
}

fn fig1_db() -> Database {
    let db = Database::new();
    run_sql(
        &db,
        "CREATE TABLE Flights (fno INT PRIMARY KEY, dest STRING)",
    )
    .unwrap();
    run_sql(
        &db,
        "INSERT INTO Flights VALUES (122,'Paris'),(123,'Paris'),(134,'Paris'),(136,'Rome')",
    )
    .unwrap();
    db
}

fn pair_sql(me: &str, friend: &str) -> String {
    format!(
        "SELECT '{me}', fno INTO ANSWER Reservation \
         WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') \
         AND ('{friend}', fno) IN ANSWER Reservation CHOOSE 1"
    )
}

/// Mean milliseconds of `f` over `trials` runs (each run gets fresh
/// state from `setup`).
fn mean_ms<S>(trials: usize, mut setup: impl FnMut() -> S, mut f: impl FnMut(S)) -> f64 {
    let mut total = 0.0;
    for _ in 0..trials {
        let state = setup();
        let t = Instant::now();
        f(state);
        total += t.elapsed().as_secs_f64();
    }
    total * 1e3 / trials as f64
}

// ---------------------------------------------------------------------- //

fn e1_fig1_worked_example() {
    println!("== E1: Figure 1 worked example (correctness) ==");
    let mut histogram: HashMap<i64, usize> = HashMap::new();
    let runs = 300u64;
    for seed in 0..runs {
        let co = Coordinator::with_config(
            fig1_db(),
            CoordinatorConfig {
                seed,
                ..Default::default()
            },
        );
        co.submit_sql("kramer", &pair_sql("Kramer", "Jerry"))
            .unwrap();
        let jerry = co
            .submit_sql("jerry", &pair_sql("Jerry", "Kramer"))
            .unwrap()
            .answered()
            .expect("pair matches");
        let fno = jerry.answers[0].1.values()[1].as_int().unwrap();
        assert!([122, 123, 134].contains(&fno), "only Paris flights");
        *histogram.entry(fno).or_default() += 1;
    }
    let mut flights: Vec<_> = histogram.into_iter().collect();
    flights.sort();
    println!("  {runs} runs; coordinated flight distribution (never 136/Rome):");
    for (fno, count) in flights {
        println!("    flight {fno}: {count}");
    }
    println!();
}

fn e2_pair_scenario() {
    println!("== E2: book-a-flight-with-a-friend through the middle tier ==");
    let ms = mean_ms(
        30,
        || {
            let s = TravelService::bootstrap_demo().unwrap();
            s.social().import_friends("jerry", &["kramer"]).unwrap();
            s.coordinate_flight("jerry", "kramer", "Paris", FlightPrefs::default())
                .unwrap();
            s
        },
        |s| {
            let out = s
                .coordinate_flight("kramer", "jerry", "Paris", FlightPrefs::default())
                .unwrap();
            assert!(out.is_confirmed());
        },
    );
    println!("  closing submission latency (parse->match->apply->notify): {ms:.3} ms\n");
}

fn e3_constraint_complexity() {
    println!("== E3: constraints per query (flight+hotel generalized) ==");
    println!("  {:>12} | {:>10}", "constraints", "ms/close");
    for extra in [0usize, 1, 2, 4, 8] {
        let ms = mean_ms(
            20,
            || {
                let mut gen = WorkloadGen::new(19);
                let db = gen.build_database(100, &["Paris"]).unwrap();
                let co = Coordinator::with_config(db, CoordinatorConfig::default());
                let first = WorkloadGen::pair_with_constraint_count("a", "b", "Paris", extra);
                co.submit_sql(&first.owner, &first.sql).unwrap();
                (
                    co,
                    WorkloadGen::pair_with_constraint_count("b", "a", "Paris", extra),
                )
            },
            |(co, closing)| {
                let sub = co.submit_sql(&closing.owner, &closing.sql).unwrap();
                assert!(matches!(sub, Submission::Answered(_)));
            },
        );
        println!("  {:>12} | {ms:>10.3}", 1 + extra);
    }
    println!();
}

fn e4_simultaneous_pairs() {
    println!("== E4: multiple simultaneous bookings (throughput) ==");
    println!(
        "  {:>6} | {:>12} | {:>14}",
        "pairs", "total ms", "submissions/s"
    );
    for pairs in [10usize, 50, 100, 200] {
        let ms = mean_ms(
            5,
            || {
                let mut gen = WorkloadGen::new(17);
                let db = gen.build_database(100, &["Paris"]).unwrap();
                let co = Coordinator::with_config(db, CoordinatorConfig::default());
                let reqs = gen.pair_storm(pairs, "Paris");
                (co, reqs)
            },
            |(co, reqs)| {
                let (answered, pending) = youtopia_bench::submit_all(&co, &reqs);
                assert_eq!(answered, pairs);
                assert_eq!(pending, pairs);
                assert_eq!(co.pending_count(), 0);
            },
        );
        let per_sec = (2 * pairs) as f64 / (ms / 1e3);
        println!("  {pairs:>6} | {ms:>12.2} | {per_sec:>14.0}");
    }
    println!();
}

fn e5_group_size() {
    println!("== E5: group flight booking (close latency vs group size) ==");
    println!("  {:>6} | {:>10}", "size", "ms/close");
    for size in [2usize, 3, 4, 6, 8, 12, 16] {
        let ms = mean_ms(
            10,
            || {
                let mut gen = WorkloadGen::new(13);
                let db = gen.build_database(100, &["Paris"]).unwrap();
                let co = Coordinator::with_config(db, CoordinatorConfig::default());
                let mut reqs = gen.group(0, size, "Paris");
                let closing = reqs.pop().unwrap();
                for r in &reqs {
                    co.submit_sql(&r.owner, &r.sql).unwrap();
                }
                (co, closing)
            },
            |(co, closing)| {
                let sub = co.submit_sql(&closing.owner, &closing.sql).unwrap();
                assert!(matches!(sub, Submission::Answered(_)));
            },
        );
        println!("  {size:>6} | {ms:>10.3}");
    }
    println!();
}

fn e6_adhoc() {
    println!("== E6: ad-hoc asymmetric coordination (correctness) ==");
    let s = TravelService::bootstrap_demo().unwrap();
    s.social()
        .import_friends("jerry", &["kramer", "elaine"])
        .unwrap();
    s.social().import_friends("kramer", &["elaine"]).unwrap();
    let jerry = "SELECT 'jerry', fno INTO ANSWER Reservation \
         WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris' AND seats >= 3) \
         AND ('kramer', fno) IN ANSWER Reservation CHOOSE 1";
    let kramer = "SELECT 'kramer', fno INTO ANSWER Reservation, \
         'kramer', hid INTO ANSWER HotelReservation \
         WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris' AND seats >= 3) \
         AND hid IN (SELECT hid FROM Hotels WHERE city = 'Paris' AND rooms >= 2) \
         AND ('jerry', fno) IN ANSWER Reservation \
         AND ('elaine', hid) IN ANSWER HotelReservation CHOOSE 1";
    let elaine = "SELECT 'elaine', fno INTO ANSWER Reservation, \
         'elaine', hid INTO ANSWER HotelReservation \
         WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris' AND seats >= 3) \
         AND hid IN (SELECT hid FROM Hotels WHERE city = 'Paris' AND rooms >= 2) \
         AND ('kramer', fno) IN ANSWER Reservation \
         AND ('kramer', hid) IN ANSWER HotelReservation CHOOSE 1";
    s.coordinate_custom("jerry", jerry).unwrap();
    s.coordinate_custom("kramer", kramer).unwrap();
    assert!(s
        .coordinate_custom("elaine", elaine)
        .unwrap()
        .is_confirmed());
    let j = s.account_view("jerry").unwrap();
    let k = s.account_view("kramer").unwrap();
    let e = s.account_view("elaine").unwrap();
    assert_eq!(j.flights, k.flights);
    assert_eq!(k.hotels, e.hotels);
    assert!(j.hotels.is_empty());
    println!(
        "  three-way group resolved in one match: jerry+kramer flight {:?}, \
         kramer+elaine hotel {:?} (jerry booked no hotel)\n",
        j.flights, k.hotels
    );
}

fn e7_loaded_system() {
    println!("== E7: loaded system — submission latency vs standing pending load ==");
    println!(
        "  'match' = arrival that closes a pair; 'no-match' = arrival that stays \
         pending\n  (the common case on a loaded system, and where the naive \
         algorithm pays)\n"
    );
    println!(
        "  {:>8} | {:>11} {:>11} | {:>11} {:>11}",
        "pending", "idx match", "idx nomatch", "nv match", "nv nomatch"
    );
    for noise in [0usize, 10, 50, 100, 500, 1000, 2000] {
        let trials = if noise >= 500 { 3 } else { 5 };
        // returns (pair-close ms, unmatched-arrival ms)
        let run = |matcher: MatcherKind| -> (f64, f64) {
            let mut close_total = 0.0;
            let mut nomatch_total = 0.0;
            for trial in 0..trials {
                let mut gen = WorkloadGen::new(7 + trial as u64);
                let db = gen.build_database(200, &["Paris", "Rome"]).unwrap();
                // group bound 3: at the default bound of 16 the naive
                // baseline's unmatched arrivals never terminate.
                let co = Coordinator::with_config(
                    db,
                    CoordinatorConfig {
                        matcher,
                        match_config: MatchConfig {
                            max_group_size: 3,
                            ..MatchConfig::default()
                        },
                        ..Default::default()
                    },
                );
                preload_noise(&co, &mut gen, noise, "Paris");
                let first = WorkloadGen::pair_request("probeA", "probeB", "Paris");
                co.submit_sql(&first.owner, &first.sql).unwrap();

                let closing = WorkloadGen::pair_request("probeB", "probeA", "Paris");
                let t = Instant::now();
                let sub = co.submit_sql(&closing.owner, &closing.sql).unwrap();
                close_total += t.elapsed().as_secs_f64();
                assert!(matches!(sub, Submission::Answered(_)));

                let lonely = WorkloadGen::pair_request("lonely", "nobody", "Paris");
                let t = Instant::now();
                let sub = co.submit_sql(&lonely.owner, &lonely.sql).unwrap();
                nomatch_total += t.elapsed().as_secs_f64();
                assert!(matches!(sub, Submission::Pending(_)));
            }
            (
                close_total * 1e3 / trials as f64,
                nomatch_total * 1e3 / trials as f64,
            )
        };
        let (im, inm) = run(MatcherKind::Incremental);
        if noise <= 500 {
            let (nm, nnm) = run(MatcherKind::Naive);
            println!("  {noise:>8} | {im:>11.3} {inm:>11.3} | {nm:>11.3} {nnm:>11.3}");
        } else {
            println!(
                "  {noise:>8} | {im:>11.3} {inm:>11.3} | {:>11} {:>11}",
                "(skipped)", ""
            );
        }
    }
    println!(
        "  (naive runs with its group bound lowered to 3 and is still skipped above \
         500 pending;\n   at the default bound of 16 its no-match arrivals do not \
         terminate at all)\n"
    );
}

fn e8_admin_surface() {
    println!("== E8: SQL command line + admin state inspection ==");
    use youtopia_travel::AdminConsole;
    let s = TravelService::bootstrap_demo().unwrap();
    let console = AdminConsole::new(s.db().clone(), s.coordinator().clone());
    console.execute_as("kramer", &pair_sql("Kramer", "Jerry"));
    let pending = console.execute("SHOW PENDING");
    assert!(pending.contains("owner=kramer"));
    println!("{}", indent(&pending));
    console.execute_as("jerry", &pair_sql("Jerry", "Kramer"));
    println!("{}", indent(&console.execute("SELECT * FROM Reservation")));
    println!("{}\n", indent(&console.render_stats()));
}

fn indent(s: &str) -> String {
    s.lines()
        .map(|l| format!("  {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn e9_choose_distribution() {
    println!("== E9: CHOOSE 1 nondeterminism (distribution over 8 eligible flights) ==");
    let mut histogram: HashMap<i64, usize> = HashMap::new();
    let runs = 400;
    for seed in 0..runs {
        let db = Database::new();
        run_sql(
            &db,
            "CREATE TABLE Flights (fno INT PRIMARY KEY, dest STRING)",
        )
        .unwrap();
        let rows: Vec<String> = (0..8).map(|i| format!("({i}, 'Paris')")).collect();
        run_sql(
            &db,
            &format!("INSERT INTO Flights VALUES {}", rows.join(",")),
        )
        .unwrap();
        let co = Coordinator::with_config(
            db,
            CoordinatorConfig {
                seed,
                ..Default::default()
            },
        );
        co.submit_sql("a", &pair_sql("A", "B")).unwrap();
        let n = co
            .submit_sql("b", &pair_sql("B", "A"))
            .unwrap()
            .answered()
            .unwrap();
        *histogram
            .entry(n.answers[0].1.values()[1].as_int().unwrap())
            .or_default() += 1;
    }
    let mut entries: Vec<_> = histogram.iter().collect();
    entries.sort();
    let shown: Vec<String> = entries
        .iter()
        .map(|(fno, count)| format!("{fno}:{count}"))
        .collect();
    println!("  {runs} runs -> {}", shown.join(" "));
    println!(
        "  distinct flights chosen: {} of 8 (non-degenerate nondeterminism)\n",
        histogram.len()
    );
}

fn e10_ablation() {
    println!("== E10: matcher ablation (pair close on 200 standing pending) ==");
    println!(
        "  {:>22} | {:>10} | {:>12}",
        "variant", "ms/close", "candidates"
    );
    let variants: &[(&str, bool, bool)] = &[
        ("index ON,  fc ON", true, true),
        ("index OFF, fc ON", false, true),
        ("index ON,  fc OFF", true, false),
        ("index OFF, fc OFF", false, false),
    ];
    for &(name, use_idx, fc) in variants {
        let mut last_candidates = 0u64;
        let ms = mean_ms(
            5,
            || {
                let mut gen = WorkloadGen::new(29);
                let db = gen.build_database(200, &["Paris"]).unwrap();
                let config = CoordinatorConfig {
                    use_const_index: use_idx,
                    match_config: MatchConfig {
                        forward_checking: fc,
                        ..Default::default()
                    },
                    ..Default::default()
                };
                let co = Coordinator::with_config(db, config);
                preload_noise(&co, &mut gen, 200, "Paris");
                let first = WorkloadGen::pair_request("probeA", "probeB", "Paris");
                co.submit_sql(&first.owner, &first.sql).unwrap();
                (co, WorkloadGen::pair_request("probeB", "probeA", "Paris"))
            },
            |(co, closing)| {
                let before = co.stats().match_work.candidates_considered;
                let sub = co.submit_sql(&closing.owner, &closing.sql).unwrap();
                assert!(matches!(sub, Submission::Answered(_)));
                last_candidates = co.stats().match_work.candidates_considered - before;
            },
        );
        println!("  {name:>22} | {ms:>10.3} | {last_candidates:>12}");
    }
    println!(
        "  (index OFF candidate work grows linearly with the pending set; at this \
         load the\n   per-candidate unification is cheap, so wall-clock parity is \
         expected — the index\n   is what keeps E7's indexed curve flat at 10-100x \
         more pending queries)"
    );

    // Forward checking pays off where grounding has many interacting
    // memberships: group-of-8 close latency.
    println!("\n  forward checking on group-of-8 grounding:");
    println!(
        "  {:>22} | {:>10} | {:>14}",
        "variant", "ms/close", "rows_scanned"
    );
    for (name, fc) in [("fc ON", true), ("fc OFF", false)] {
        let mut rows = 0u64;
        let ms = mean_ms(
            5,
            || {
                let mut gen = WorkloadGen::new(13);
                let db = gen.build_database(100, &["Paris"]).unwrap();
                let config = CoordinatorConfig {
                    match_config: MatchConfig {
                        forward_checking: fc,
                        ..Default::default()
                    },
                    ..Default::default()
                };
                let co = Coordinator::with_config(db, config);
                let mut reqs = gen.group(0, 8, "Paris");
                let closing = reqs.pop().unwrap();
                for r in &reqs {
                    co.submit_sql(&r.owner, &r.sql).unwrap();
                }
                (co, closing)
            },
            |(co, closing)| {
                let before = co.stats().match_work.rows_scanned;
                let sub = co.submit_sql(&closing.owner, &closing.sql).unwrap();
                assert!(matches!(sub, Submission::Answered(_)));
                rows = co.stats().match_work.rows_scanned - before;
            },
        );
        println!("  {name:>22} | {ms:>10.3} | {rows:>14}");
    }
    println!();
}
