//! # youtopia-bench
//!
//! Shared helpers for the benchmark harness. Each experiment in
//! DESIGN.md's index (E1–E10) has a Criterion bench target under
//! `benches/`; this library holds the common setup code so benches and
//! EXPERIMENTS.md stay consistent.

#![warn(missing_docs)]

use youtopia_core::{
    Coordinator, CoordinatorConfig, ShardedConfig, ShardedCoordinator, Submission,
};
use youtopia_storage::Database;
use youtopia_travel::{drive_batched, Request, WorkloadGen};

/// A prepared coordination stack: database + coordinator.
pub struct Stack {
    /// The database with the travel schema and generated flights.
    pub db: Database,
    /// The coordinator under test.
    pub coordinator: Coordinator,
}

/// Builds a stack whose database has `n_flights` flights to the given
/// cities, with the supplied coordinator configuration.
pub fn build_stack(
    seed: u64,
    n_flights: usize,
    cities: &[&str],
    config: CoordinatorConfig,
) -> Stack {
    let mut gen = WorkloadGen::new(seed);
    let db = gen
        .build_database(n_flights, cities)
        .expect("workload database builds");
    let coordinator = Coordinator::with_config(db.clone(), config);
    Stack { db, coordinator }
}

/// Submits requests in order; returns (answered, pending) counts.
/// Panics on rejection — the generators only produce safe queries.
pub fn submit_all(coordinator: &Coordinator, requests: &[Request]) -> (usize, usize) {
    let mut answered = 0;
    let mut pending = 0;
    for r in requests {
        match coordinator
            .submit_sql(&r.owner, &r.sql)
            .expect("generated queries are safe")
        {
            Submission::Answered(_) => answered += 1,
            Submission::Pending(_) => pending += 1,
        }
    }
    (answered, pending)
}

/// Pre-loads `noise` unmatchable pending queries (the standing load of
/// the loaded-system experiment).
pub fn preload_noise(coordinator: &Coordinator, gen: &mut WorkloadGen, noise: usize, dest: &str) {
    let requests = gen.noise(noise, dest);
    let (answered, pending) = submit_all(coordinator, &requests);
    assert_eq!(answered, 0, "noise must not match");
    assert_eq!(pending, noise);
}

/// A prepared sharded coordination stack: database + sharded
/// coordinator.
pub struct ShardedStack {
    /// The database with the travel schema and generated flights.
    pub db: Database,
    /// The sharded coordinator under test.
    pub coordinator: ShardedCoordinator,
}

/// Builds a sharded stack over a freshly generated travel database.
pub fn build_sharded_stack(
    seed: u64,
    n_flights: usize,
    cities: &[&str],
    config: ShardedConfig,
) -> ShardedStack {
    let mut gen = WorkloadGen::new(seed);
    let db = gen
        .build_database(n_flights, cities)
        .expect("workload database builds");
    let coordinator = ShardedCoordinator::with_config(db.clone(), config);
    ShardedStack { db, coordinator }
}

/// Pre-loads `noise` unmatchable pending queries spread over
/// `relations` answer relations (the standing load of the sharded
/// loaded-system experiment).
pub fn preload_noise_sharded(
    coordinator: &ShardedCoordinator,
    gen: &mut WorkloadGen,
    noise: usize,
    dest: &str,
    relations: usize,
) {
    let requests = gen.noise_multi(noise, dest, relations);
    let report = drive_batched(coordinator, &requests, 256);
    assert_eq!(report.answered, 0, "noise must not match");
    assert_eq!(report.pending, noise);
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtopia_travel::WorkloadGen;

    #[test]
    fn stack_builds_and_matches_pairs() {
        let stack = build_stack(1, 50, &["Paris"], CoordinatorConfig::default());
        let mut gen = WorkloadGen::new(2);
        let reqs = gen.pair_storm(5, "Paris");
        let (answered, pending) = submit_all(&stack.coordinator, &reqs);
        assert_eq!(answered, 5, "each second half closes a pair");
        assert_eq!(pending, 5);
        assert_eq!(stack.coordinator.pending_count(), 0);
    }

    #[test]
    fn noise_preload_stays_pending() {
        let stack = build_stack(1, 50, &["Paris"], CoordinatorConfig::default());
        let mut gen = WorkloadGen::new(3);
        preload_noise(&stack.coordinator, &mut gen, 20, "Paris");
        assert_eq!(stack.coordinator.pending_count(), 20);
    }
}
