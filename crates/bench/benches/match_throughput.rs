//! Match throughput: arrival-driven matching against a *loaded*
//! standing registry (the tentpole experiment of the staged-pipeline
//! PR).
//!
//! A sharded coordinator is pre-loaded with `standing` registrations
//! that can never match (their partners never arrive), spread across
//! several answer relations. A storm of matched pairs then arrives in
//! batches; every pair must coordinate *through* the standing load, so
//! throughput measures how well the staged pipeline — batched index
//! scans, stage-1 trigger pruning, pooled scratch — keeps doomed
//! candidates out of the search. The headline series (arrivals per
//! second plus the matcher's scan/prune counters and the index prune
//! rate) is written to `BENCH_match.json` at the repository root.
//!
//! Run with: `cargo bench -p youtopia-bench --bench match_throughput`
//! (`YOUTOPIA_BENCH_FAST=1` skips the headline series, so CI never
//! rewrites the committed artifact with foreign-hardware numbers.)

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};

use youtopia_core::{CoordinatorConfig, ShardedConfig, ShardedCoordinator};
use youtopia_travel::{drive_batched, WorkloadGen};

const RELATIONS: usize = 8;
const FLIGHTS: usize = 100;
const SHARDS: usize = 4;
const BATCH: usize = 128;
const PAIRS: usize = 1000;

fn config() -> ShardedConfig {
    let mut base = CoordinatorConfig::default();
    base.match_config.randomize = false;
    ShardedConfig {
        shards: SHARDS,
        workers: 0,
        auto_checkpoint_bytes: 0,
        fair_drain: false,
        checkpoint: Default::default(),
        base,
    }
}

/// A coordinator pre-loaded with `standing` never-matching
/// registrations across [`RELATIONS`] answer relations.
fn loaded_coordinator(standing: usize) -> (ShardedCoordinator, WorkloadGen) {
    let mut generator = WorkloadGen::new(23);
    let db = generator
        .build_database(FLIGHTS, &["Paris", "Rome"])
        .expect("database builds");
    let co = ShardedCoordinator::with_config(db, config());
    let noise = generator.noise_multi(standing, "Paris", RELATIONS);
    drive_batched(&co, &noise, BATCH);
    (co, generator)
}

/// Drives `pairs` matched pairs into the loaded coordinator; returns
/// (seconds, arrivals driven).
fn run_storm(co: &ShardedCoordinator, generator: &mut WorkloadGen, pairs: usize) -> (f64, usize) {
    let requests = generator.pair_storm_multi(pairs, "Paris", RELATIONS);
    let started = Instant::now();
    drive_batched(co, &requests, BATCH);
    (started.elapsed().as_secs_f64(), requests.len())
}

/// The headline series, written to `BENCH_match.json`.
fn headline_series() {
    let mut rows = Vec::new();
    for &standing in &[1000usize, 4000, 8000] {
        // median of three independent storms against identical loads
        let mut runs = Vec::new();
        for _ in 0..3 {
            let (co, mut generator) = loaded_coordinator(standing);
            let before = co.stats();
            let (seconds, arrivals) = run_storm(&co, &mut generator, PAIRS);
            let after = co.stats();
            runs.push((seconds, arrivals, before, after));
        }
        runs.sort_by(|a, b| a.0.total_cmp(&b.0));
        let (seconds, arrivals, before, after) = runs[1];
        let answered = after.answered - before.answered;
        assert_eq!(
            answered as usize,
            2 * PAIRS,
            "every pair coordinates despite the standing load"
        );
        let scanned = after.match_work.candidates_scanned - before.match_work.candidates_scanned;
        let index_pruned = after.match_work.index_pruned - before.match_work.index_pruned;
        let triggers_pruned = after.match_work.triggers_pruned - before.match_work.triggers_pruned;
        let pool_hits = after.match_work.pool_hits - before.match_work.pool_hits;
        let pool_misses = after.match_work.pool_misses - before.match_work.pool_misses;
        let prune_rate = index_pruned as f64 / (index_pruned + scanned).max(1) as f64;
        let per_sec = arrivals as f64 / seconds;
        println!(
            "match_throughput: {arrivals:5} arrivals over {standing:5} standing \
             in {seconds:.4}s ({per_sec:.0} arrivals/s, prune rate {prune_rate:.3})"
        );
        rows.push(format!(
            "    {{\n      \"standing\": {standing},\n      \"arrivals\": {arrivals},\n      \
             \"answered\": {answered},\n      \"seconds\": {seconds:.6},\n      \
             \"arrivals_per_sec\": {per_sec:.1},\n      \
             \"candidates_scanned\": {scanned},\n      \
             \"index_pruned\": {index_pruned},\n      \
             \"triggers_pruned\": {triggers_pruned},\n      \
             \"index_prune_rate\": {prune_rate:.4},\n      \
             \"pool_hits\": {pool_hits},\n      \"pool_misses\": {pool_misses}\n    }}"
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"match_throughput\",\n  \"workload\": {{\n    \
         \"relations\": {RELATIONS},\n    \"flights\": {FLIGHTS},\n    \
         \"shards\": {SHARDS},\n    \"batch\": {BATCH},\n    \"pairs\": {PAIRS}\n  }},\n  \
         \"series\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_match.json");
    std::fs::write(path, json).expect("write BENCH_match.json");
    println!("wrote {path}");
}

fn bench_match_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("match_throughput");
    group.sample_size(10);

    for &standing in &[500usize, 2000] {
        group.throughput(Throughput::Elements(128));
        group.bench_with_input(
            BenchmarkId::new("pair_storm", standing),
            &standing,
            |b, &standing| {
                b.iter_batched(
                    || loaded_coordinator(standing),
                    |(co, mut generator)| run_storm(&co, &mut generator, 64),
                    BatchSize::PerIteration,
                );
            },
        );
    }
    group.finish();

    if std::env::var_os("YOUTOPIA_BENCH_FAST").is_none() {
        headline_series();
    }
}

criterion_group!(benches, bench_match_throughput);
criterion_main!(benches);
