//! E7 — the loaded-system scalability experiment (paper §3, last
//! paragraph): latency of coordinating one fresh pair while N
//! unmatchable entangled queries are already pending.
//!
//! Series reproduced: indexed incremental matcher vs the naive
//! subset-enumeration baseline. The paper's claim is the *shape*: the
//! system's algorithm stays near-flat under load, the obvious
//! algorithm does not.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

use youtopia_bench::{build_sharded_stack, preload_noise, preload_noise_sharded, Stack};
use youtopia_core::{
    Coordinator, CoordinatorConfig, MatcherKind, ShardedConfig, ShardedCoordinator, Submission,
};
use youtopia_travel::WorkloadGen;

/// Builds a coordinator with `noise` standing pending queries and the
/// first half of a probe pair already submitted; returns it with the
/// closing request.
fn loaded_stack(matcher: MatcherKind, noise: usize) -> (Coordinator, youtopia_travel::Request) {
    let mut gen = WorkloadGen::new(7);
    let db = gen.build_database(200, &["Paris", "Rome"]).unwrap();
    // Pairs workload: bound groups at 3 so the naive baseline's subset
    // enumeration terminates (at the default bound of 16 it enumerates
    // ~2^pending subsets per unmatched arrival).
    let coordinator = Coordinator::with_config(
        db,
        CoordinatorConfig {
            matcher,
            match_config: youtopia_core::MatchConfig {
                max_group_size: 3,
                ..youtopia_core::MatchConfig::default()
            },
            ..CoordinatorConfig::default()
        },
    );
    preload_noise(&coordinator, &mut gen, noise, "Paris");
    let first = WorkloadGen::pair_request("probeA", "probeB", "Paris");
    let closing = WorkloadGen::pair_request("probeB", "probeA", "Paris");
    let sub = coordinator.submit_sql(&first.owner, &first.sql).unwrap();
    assert!(matches!(sub, Submission::Pending(_)));
    (coordinator, closing)
}

/// The sharded variant of [`loaded_stack`]: `noise` standing queries
/// spread over four relation families (one per shard), with the probe
/// pair's first half already pending on `Reservation0`.
fn loaded_sharded_stack(noise: usize) -> (ShardedCoordinator, youtopia_travel::Request) {
    let stack = build_sharded_stack(
        7,
        200,
        &["Paris", "Rome"],
        ShardedConfig {
            shards: 4,
            checkpoint: Default::default(),
            base: CoordinatorConfig {
                match_config: youtopia_core::MatchConfig {
                    max_group_size: 3,
                    ..youtopia_core::MatchConfig::default()
                },
                ..CoordinatorConfig::default()
            },
            ..Default::default()
        },
    );
    let mut gen = WorkloadGen::new(7);
    preload_noise_sharded(&stack.coordinator, &mut gen, noise, "Paris", 4);
    let first = WorkloadGen::pair_request_on("Reservation0", "probeA", "probeB", "Paris");
    let closing = WorkloadGen::pair_request_on("Reservation0", "probeB", "probeA", "Paris");
    let sub = stack
        .coordinator
        .submit_sql(&first.owner, &first.sql)
        .unwrap();
    assert!(matches!(sub, Submission::Pending(_)));
    (stack.coordinator, closing)
}

fn bench_loaded_system(c: &mut Criterion) {
    let mut group = c.benchmark_group("loaded_system_pair_latency");
    group.sample_size(10);

    for &noise in &[0usize, 10, 100, 500, 1000] {
        group.bench_with_input(BenchmarkId::new("indexed", noise), &noise, |b, &noise| {
            b.iter_batched(
                || loaded_stack(MatcherKind::Incremental, noise),
                |(coordinator, closing)| {
                    let sub = coordinator
                        .submit_sql(&closing.owner, &closing.sql)
                        .unwrap();
                    assert!(matches!(sub, Submission::Answered(_)));
                    coordinator // dropped outside the measurement
                },
                BatchSize::PerIteration,
            );
        });
    }
    // the sharded coordinator under the same standing load: the closing
    // arrival's match and cascade scan only its own shard (~noise/4)
    for &noise in &[0usize, 10, 100, 500, 1000] {
        group.bench_with_input(BenchmarkId::new("sharded4", noise), &noise, |b, &noise| {
            b.iter_batched(
                || loaded_sharded_stack(noise),
                |(coordinator, closing)| {
                    let sub = coordinator
                        .submit_sql(&closing.owner, &closing.sql)
                        .unwrap();
                    assert!(matches!(sub, Submission::Answered(_)));
                    coordinator // dropped outside the measurement
                },
                BatchSize::PerIteration,
            );
        });
    }
    // the naive baseline blows up combinatorially; bound its load so the
    // suite finishes — the asymmetry is the result
    for &noise in &[0usize, 10, 50, 100] {
        group.bench_with_input(BenchmarkId::new("naive", noise), &noise, |b, &noise| {
            b.iter_batched(
                || loaded_stack(MatcherKind::Naive, noise),
                |(coordinator, closing)| {
                    let sub = coordinator
                        .submit_sql(&closing.owner, &closing.sql)
                        .unwrap();
                    assert!(matches!(sub, Submission::Answered(_)));
                    coordinator // dropped outside the measurement
                },
                BatchSize::PerIteration,
            );
        });
    }
    group.finish();

    // The arrival that matches nobody — the common case on a loaded
    // system and where the naive algorithm exhausts its subset space.
    let mut nomatch = c.benchmark_group("loaded_system_nomatch_arrival");
    nomatch.sample_size(10);
    for &noise in &[10usize, 100, 500] {
        nomatch.bench_with_input(BenchmarkId::new("indexed", noise), &noise, |b, &noise| {
            b.iter_batched(
                || loaded_stack(MatcherKind::Incremental, noise).0,
                |coordinator| {
                    let lonely = WorkloadGen::pair_request("lonely", "nobody", "Paris");
                    let sub = coordinator.submit_sql(&lonely.owner, &lonely.sql).unwrap();
                    assert!(matches!(sub, Submission::Pending(_)));
                    coordinator // dropped outside the measurement
                },
                BatchSize::PerIteration,
            );
        });
    }
    for &noise in &[10usize, 100] {
        nomatch.bench_with_input(BenchmarkId::new("naive", noise), &noise, |b, &noise| {
            b.iter_batched(
                || loaded_stack(MatcherKind::Naive, noise).0,
                |coordinator| {
                    let lonely = WorkloadGen::pair_request("lonely", "nobody", "Paris");
                    let sub = coordinator.submit_sql(&lonely.owner, &lonely.sql).unwrap();
                    assert!(matches!(sub, Submission::Pending(_)));
                    coordinator // dropped outside the measurement
                },
                BatchSize::PerIteration,
            );
        });
    }
    nomatch.finish();

    // Companion series: arrival-driven incremental matching vs a global
    // re-match sweep (design ablation 3 in DESIGN.md).
    let mut sweep = c.benchmark_group("loaded_system_retry_all_sweep");
    sweep.sample_size(10);
    for &noise in &[10usize, 100, 500] {
        sweep.bench_with_input(BenchmarkId::new("retry_all", noise), &noise, |b, &noise| {
            b.iter_batched(
                || {
                    let Stack { coordinator, .. } = youtopia_bench::build_stack(
                        9,
                        200,
                        &["Paris", "Rome"],
                        CoordinatorConfig::default(),
                    );
                    let mut gen = WorkloadGen::new(11);
                    preload_noise(&coordinator, &mut gen, noise, "Paris");
                    coordinator
                },
                |coordinator| {
                    // a full global sweep across all pending queries
                    let answered = coordinator.retry_all().unwrap();
                    assert!(answered.is_empty());
                    coordinator // dropped outside the measurement
                },
                BatchSize::PerIteration,
            );
        });
    }
    sweep.finish();
}

criterion_group!(benches, bench_loaded_system);
criterion_main!(benches);
