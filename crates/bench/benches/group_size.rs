//! E5 — group booking scalability (§3.1 "Group flight booking"):
//! latency of the group-closing submission as the group size grows.
//! Each member's query carries n-1 answer constraints naming every
//! other member, so both the structural search and the grounding grow
//! with n.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

use youtopia_core::{Coordinator, CoordinatorConfig, Submission};
use youtopia_travel::{Request, WorkloadGen};

/// Coordinator with a group of `size` submitted except for its last
/// member; returns the closing request.
fn staged_group(size: usize) -> (Coordinator, Request) {
    let mut gen = WorkloadGen::new(13);
    let db = gen.build_database(100, &["Paris"]).unwrap();
    let coordinator = Coordinator::with_config(db, CoordinatorConfig::default());
    let mut requests = gen.group(0, size, "Paris");
    let closing = requests.pop().expect("non-empty group");
    for r in &requests {
        let sub = coordinator.submit_sql(&r.owner, &r.sql).unwrap();
        assert!(
            matches!(sub, Submission::Pending(_)),
            "group must stay open"
        );
    }
    (coordinator, closing)
}

fn bench_group_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("group_size_close_latency");
    group.sample_size(10);
    for &size in &[2usize, 3, 4, 6, 8, 12, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter_batched(
                || staged_group(size),
                |(coordinator, closing)| {
                    let sub = coordinator
                        .submit_sql(&closing.owner, &closing.sql)
                        .unwrap();
                    assert!(
                        matches!(sub, Submission::Answered(_)),
                        "last member closes the group"
                    );
                    coordinator // dropped outside the measurement
                },
                BatchSize::PerIteration,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_group_size);
criterion_main!(benches);
