//! Substrate microbenchmarks: the storage engine, SQL front end and
//! executor that the coordination layer sits on. These are not paper
//! experiments; they contextualize the E-series numbers (how much of a
//! match's latency is substrate vs matching).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use youtopia_exec::{run_sql, StatementOutcome};
use youtopia_sql::parse_statement;
use youtopia_storage::{Column, DataType, Database, IndexKind, Schema, Tuple, Value};

fn flights_schema() -> Schema {
    Schema::with_primary_key(
        vec![
            Column::new("fno", DataType::Int64),
            Column::new("dest", DataType::Str),
            Column::new("price", DataType::Float64),
        ],
        &["fno"],
    )
}

fn populated(n: usize) -> Database {
    let db = Database::new();
    db.with_txn(|txn| {
        txn.create_table("Flights", flights_schema())?;
        txn.create_index("Flights", "by_dest", &["dest"], false, IndexKind::Hash)?;
        for i in 0..n {
            txn.insert(
                "Flights",
                Tuple::new(vec![
                    Value::Int(i as i64),
                    Value::Str(if i % 3 == 0 {
                        "Paris".into()
                    } else {
                        "Rome".into()
                    }),
                    Value::Float(100.0 + i as f64),
                ]),
            )?;
        }
        Ok(())
    })
    .unwrap();
    db
}

fn bench_storage(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_storage");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("insert_10k_rows", |b| {
        b.iter_batched(
            Database::new,
            |db| {
                db.with_txn(|txn| {
                    txn.create_table("Flights", flights_schema())?;
                    for i in 0..10_000i64 {
                        txn.insert(
                            "Flights",
                            Tuple::new(vec![
                                Value::Int(i),
                                Value::Str("Paris".into()),
                                Value::Float(i as f64),
                            ]),
                        )?;
                    }
                    Ok(())
                })
                .unwrap();
            },
            BatchSize::PerIteration,
        );
    });
    group.finish();

    let db = populated(10_000);
    let mut probes = c.benchmark_group("substrate_lookup");
    probes.bench_function("pk_index_probe", |b| {
        let read = db.read();
        let table = read.table("Flights").unwrap();
        let idx = table.index("Flights_pk").unwrap();
        b.iter(|| {
            let rids = idx.probe(std::hint::black_box(&[Value::Int(4242)]));
            assert_eq!(rids.len(), 1);
        });
    });
    probes.bench_function("secondary_index_probe", |b| {
        let read = db.read();
        let table = read.table("Flights").unwrap();
        let idx = table.index("by_dest").unwrap();
        b.iter(|| {
            let rids = idx.probe(std::hint::black_box(&[Value::Str("Paris".into())]));
            assert!(!rids.is_empty());
        });
    });
    probes.finish();
}

fn bench_sql_frontend(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_sql");
    let entangled = "SELECT 'Kramer', fno INTO ANSWER Reservation \
                     WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') \
                     AND ('Jerry', fno) IN ANSWER Reservation CHOOSE 1";
    group.bench_function("parse_entangled_query", |b| {
        b.iter(|| parse_statement(std::hint::black_box(entangled)).unwrap());
    });
    group.bench_function("compile_entangled_query", |b| {
        b.iter(|| youtopia_core::compile_sql(std::hint::black_box(entangled)).unwrap());
    });
    group.finish();
}

fn bench_executor(c: &mut Criterion) {
    let db = populated(10_000);
    let mut group = c.benchmark_group("substrate_executor");
    group.bench_function("pk_point_select", |b| {
        b.iter(|| {
            let StatementOutcome::Rows(rs) =
                run_sql(&db, "SELECT dest FROM Flights WHERE fno = 4242").unwrap()
            else {
                unreachable!()
            };
            assert_eq!(rs.rows.len(), 1);
        });
    });
    group.bench_function("filtered_scan_count", |b| {
        b.iter(|| {
            let StatementOutcome::Rows(rs) = run_sql(
                &db,
                "SELECT COUNT(*) FROM Flights WHERE dest = 'Paris' AND price < 5000",
            )
            .unwrap() else {
                unreachable!()
            };
            assert!(rs.rows[0].values()[0].as_int().unwrap() > 0);
        });
    });
    group.bench_function("group_by_aggregate", |b| {
        b.iter(|| {
            let StatementOutcome::Rows(rs) = run_sql(
                &db,
                "SELECT dest, COUNT(*), AVG(price) FROM Flights GROUP BY dest",
            )
            .unwrap() else {
                unreachable!()
            };
            assert_eq!(rs.rows.len(), 2);
        });
    });
    group.finish();
}

criterion_group!(benches, bench_storage, bench_sql_frontend, bench_executor);
criterion_main!(benches);
