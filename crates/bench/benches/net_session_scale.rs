//! Network session scaling: how fast the TCP front-end can establish
//! live sessions, and what each concurrently open session costs (the
//! tentpole experiment of the multi-tenant front-end PR).
//!
//! For each session count `K`, a real `NetServer` (sharded coordinator
//! and tenant registry behind it) accepts `K` TCP connections from a
//! pool of client threads; every session completes the `Hello`
//! handshake and submits one standing never-matching query, so at the
//! measurement point the server holds `K` live sessions whose futures
//! are all driven by the single reactor thread's epoll loop. The
//! headline series (sessions, setup seconds, sessions/s, RSS bytes per
//! open session), now up to 8192 concurrent sessions, is written to
//! `BENCH_net.json` at the repository root;
//! resident-set deltas are read from `/proc/self/status` and cover
//! both ends of every connection (client and server share the
//! process).
//!
//! Run with: `cargo bench -p youtopia-bench --bench net_session_scale`
//! (`YOUTOPIA_BENCH_FAST=1` skips the headline series, so CI never
//! rewrites the committed artifact with foreign-hardware numbers.)

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use youtopia_core::{
    Clock, CoordinatorConfig, ShardedConfig, ShardedCoordinator, SystemClock, TenantQuotas,
    TenantRegistry,
};
use youtopia_net::{raise_nofile_limit, NetClient, NetServer, ServerConfig, SubmitOutcome};
use youtopia_travel::WorkloadGen;

const RELATIONS: usize = 8;
const FLIGHTS: usize = 100;
const WORKERS: usize = 16;

fn config() -> ShardedConfig {
    let mut base = CoordinatorConfig::default();
    base.match_config.randomize = false;
    ShardedConfig {
        shards: 4,
        workers: 0,
        auto_checkpoint_bytes: 0,
        fair_drain: false,
        checkpoint: Default::default(),
        base,
    }
}

/// Current resident set size in bytes (0 when /proc is unavailable).
fn rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

struct Sample {
    sessions: usize,
    setup_seconds: f64,
    sessions_per_sec: f64,
    rss_delta_bytes: i64,
    bytes_per_session: i64,
}

/// Opens `count` live sessions (connect + `Hello` + one standing
/// submission each) against a fresh server, measures the ramp, then
/// tears everything down.
fn run_sessions(count: usize) -> Sample {
    let mut generator = WorkloadGen::new(23);
    let db = generator
        .build_database(FLIGHTS, &["Paris", "Rome"])
        .expect("database builds");
    let co = Arc::new(ShardedCoordinator::with_config(db, config()));
    let tenants = TenantRegistry::new(TenantQuotas::default());
    let clock: Arc<dyn Clock> = Arc::new(SystemClock);
    let mut server =
        NetServer::spawn(co, tenants, ServerConfig::default(), clock).expect("server binds");
    let addr = server.local_addr();

    let rss_before = rss_bytes();
    let started = Instant::now();
    let clients: Vec<NetClient> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WORKERS)
            .map(|w| {
                scope.spawn(move || {
                    let mut clients = Vec::new();
                    let mut s = w;
                    while s < count {
                        let owner = format!("bench{w}/s{s}");
                        let mut client = NetClient::connect(addr).expect("connect");
                        client.hello(&owner).expect("hello");
                        let sql = WorkloadGen::pair_request_on(
                            &format!("Reservation{}", s % RELATIONS),
                            &owner,
                            &format!("ghost{s}"),
                            "Paris",
                        )
                        .sql;
                        match client.submit(&sql, None).expect("submit") {
                            SubmitOutcome::Pending(_) => {}
                            SubmitOutcome::Done(qid, o) => panic!("q{qid} resolved early: {o:?}"),
                        }
                        clients.push(client);
                        s += WORKERS;
                    }
                    clients
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("session worker"))
            .collect()
    });
    let setup_seconds = started.elapsed().as_secs_f64();
    let rss_delta = rss_bytes() as i64 - rss_before as i64;
    assert_eq!(clients.len(), count, "every session established");

    drop(clients);
    server.shutdown();
    Sample {
        sessions: count,
        setup_seconds,
        sessions_per_sec: count as f64 / setup_seconds,
        rss_delta_bytes: rss_delta,
        bytes_per_session: rss_delta / count.max(1) as i64,
    }
}

/// The headline series, written to `BENCH_net.json`.
fn headline_series() {
    let mut rows = Vec::new();
    for &count in &[256usize, 1024, 2048, 4096, 8192] {
        let s = run_sessions(count);
        println!(
            "net_session_scale: {:5} sessions in {:.3}s ({:7.0} sessions/s, {:8} bytes/session)",
            s.sessions, s.setup_seconds, s.sessions_per_sec, s.bytes_per_session
        );
        rows.push(format!(
            "    {{\n      \"sessions\": {},\n      \"setup_seconds\": {:.6},\n      \
             \"sessions_per_sec\": {:.1},\n      \"rss_delta_bytes\": {},\n      \
             \"bytes_per_session\": {}\n    }}",
            s.sessions, s.setup_seconds, s.sessions_per_sec, s.rss_delta_bytes, s.bytes_per_session
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"net_session_scale\",\n  \"workload\": {{\n    \
         \"relations\": {RELATIONS},\n    \"flights\": {FLIGHTS},\n    \
         \"client_workers\": {WORKERS},\n    \
         \"per_session\": \"TCP connect + Hello + 1 standing submission\"\n  }},\n  \
         \"series\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_net.json");
    std::fs::write(path, json).expect("write BENCH_net.json");
    println!("wrote {path}");
}

fn bench_net_session_scale(c: &mut Criterion) {
    // both ends of every connection live in this process: the 8192-
    // session headline point alone needs ~16k fds
    raise_nofile_limit(20_000).expect("raise fd limit");
    let mut group = c.benchmark_group("net_session_scale");
    group.sample_size(10);

    for &count in &[64usize, 256] {
        group.throughput(Throughput::Elements(count as u64));
        group.bench_with_input(BenchmarkId::new("sessions", count), &count, |b, &count| {
            b.iter(|| run_sessions(count));
        });
    }
    group.finish();

    if std::env::var_os("YOUTOPIA_BENCH_FAST").is_none() {
        headline_series();
    }
}

criterion_group!(benches, bench_net_session_scale);
criterion_main!(benches);
