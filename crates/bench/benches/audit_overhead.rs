//! Audit overhead: what the coordination audit subsystem costs on the
//! match-throughput hot path (acceptance criterion of the
//! observability PR: ≤ 5% regression with auditing enabled).
//!
//! The workload is the `match_throughput` storm — a sharded
//! coordinator pre-loaded with `standing` never-matching registrations
//! absorbs a storm of matched pairs — run twice per load: once with
//! the audit sink disabled (the default) and once enabled. With
//! auditing on, every submission inserts a `sys_audit` row inside its
//! registration transaction and every match/cancel/expire resolves it
//! plus bumps a `sys_tenant_latency` bucket inside the match
//! transaction, so the delta between the two runs is exactly the
//! ledger's hot-path cost. The headline series (arrivals per second
//! off/on and the overhead percentage) is written to
//! `BENCH_audit.json` at the repository root.
//!
//! Run with: `cargo bench -p youtopia-bench --bench audit_overhead`
//! (`YOUTOPIA_BENCH_FAST=1` skips the headline series, so CI never
//! rewrites the committed artifact with foreign-hardware numbers.)

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};

use youtopia_core::{
    AuditConfig, CoordinatorConfig, ShardedConfig, ShardedCoordinator, AUDIT_TABLE,
};
use youtopia_travel::{drive_batched, WorkloadGen};

const RELATIONS: usize = 8;
const FLIGHTS: usize = 100;
const SHARDS: usize = 4;
const BATCH: usize = 128;
const PAIRS: usize = 1000;

fn config(audit: bool) -> ShardedConfig {
    let mut base = CoordinatorConfig::default();
    base.match_config.randomize = false;
    if audit {
        // retention far above the workload so rotation never fires:
        // the series measures steady-state insert cost, not churn
        base.audit = AuditConfig {
            max_rows: 1 << 20,
            ..AuditConfig::enabled()
        };
    }
    ShardedConfig {
        shards: SHARDS,
        workers: 0,
        auto_checkpoint_bytes: 0,
        fair_drain: false,
        checkpoint: Default::default(),
        base,
    }
}

/// A coordinator pre-loaded with `standing` never-matching
/// registrations across [`RELATIONS`] answer relations.
fn loaded_coordinator(standing: usize, audit: bool) -> (ShardedCoordinator, WorkloadGen) {
    let mut generator = WorkloadGen::new(23);
    let db = generator
        .build_database(FLIGHTS, &["Paris", "Rome"])
        .expect("database builds");
    let co = ShardedCoordinator::with_config(db, config(audit));
    let noise = generator.noise_multi(standing, "Paris", RELATIONS);
    drive_batched(&co, &noise, BATCH);
    (co, generator)
}

/// Drives `pairs` matched pairs into the loaded coordinator; returns
/// (seconds, arrivals driven).
fn run_storm(co: &ShardedCoordinator, generator: &mut WorkloadGen, pairs: usize) -> (f64, usize) {
    let requests = generator.pair_storm_multi(pairs, "Paris", RELATIONS);
    let started = Instant::now();
    drive_batched(co, &requests, BATCH);
    (started.elapsed().as_secs_f64(), requests.len())
}

/// One storm's rate (arrivals/s) for one audit setting; the audited
/// flavor also checks and returns the resulting ledger row count.
fn storm_rate(standing: usize, audit: bool) -> (f64, usize) {
    let (co, mut generator) = loaded_coordinator(standing, audit);
    let before = co.stats().answered;
    let (seconds, arrivals) = run_storm(&co, &mut generator, PAIRS);
    assert_eq!(
        (co.stats().answered - before) as usize,
        2 * PAIRS,
        "every pair coordinates despite the standing load"
    );
    let mut ledger_rows = 0usize;
    if audit {
        ledger_rows = co
            .db()
            .read()
            .table(AUDIT_TABLE)
            .map(|t| t.len())
            .unwrap_or(0);
        assert!(
            ledger_rows >= standing + 4 * PAIRS,
            "ledger holds a submit row per registration and a \
             submit + terminal row per pair member"
        );
    }
    (arrivals as f64 / seconds, ledger_rows)
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

/// Five paired off/on runs per load. The overhead is the median of
/// the per-pair ratios — pairing cancels the slow machine drift that
/// dominates run-to-run variance on shared hardware.
fn paired_rates(standing: usize) -> (f64, f64, f64, usize) {
    let mut offs = Vec::new();
    let mut ons = Vec::new();
    let mut overheads = Vec::new();
    let mut ledger_rows = 0usize;
    for _ in 0..5 {
        let (off, _) = storm_rate(standing, false);
        let (on, rows) = storm_rate(standing, true);
        ledger_rows = rows;
        overheads.push((off / on - 1.0) * 100.0);
        offs.push(off);
        ons.push(on);
    }
    (median(offs), median(ons), median(overheads), ledger_rows)
}

/// The headline series, written to `BENCH_audit.json`.
fn headline_series() {
    let mut rows = Vec::new();
    for &standing in &[1000usize, 4000] {
        let (off_rate, on_rate, overhead, ledger_rows) = paired_rates(standing);
        println!(
            "audit_overhead: {standing:5} standing: {off_rate:.0} arrivals/s off, \
             {on_rate:.0} on ({overhead:+.2}% overhead, {ledger_rows} ledger rows)"
        );
        rows.push(format!(
            "    {{\n      \"standing\": {standing},\n      \
             \"arrivals_per_sec_audit_off\": {off_rate:.1},\n      \
             \"arrivals_per_sec_audit_on\": {on_rate:.1},\n      \
             \"overhead_percent\": {overhead:.2},\n      \
             \"ledger_rows\": {ledger_rows}\n    }}"
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"audit_overhead\",\n  \"claim\": \"audit adds <= 5% to \
         match-path latency\",\n  \"workload\": {{\n    \"relations\": {RELATIONS},\n    \
         \"flights\": {FLIGHTS},\n    \"shards\": {SHARDS},\n    \"batch\": {BATCH},\n    \
         \"pairs\": {PAIRS}\n  }},\n  \"series\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_audit.json");
    std::fs::write(path, json).expect("write BENCH_audit.json");
    println!("wrote {path}");
}

fn bench_audit_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("audit_overhead");
    group.sample_size(10);

    for audit in [false, true] {
        let label = if audit { "on" } else { "off" };
        group.throughput(Throughput::Elements(128));
        group.bench_with_input(
            BenchmarkId::new("pair_storm", label),
            &audit,
            |b, &audit| {
                b.iter_batched(
                    || loaded_coordinator(500, audit),
                    |(co, mut generator)| run_storm(&co, &mut generator, 64),
                    BatchSize::PerIteration,
                );
            },
        );
    }
    group.finish();

    if std::env::var_os("YOUTOPIA_BENCH_FAST").is_none() {
        headline_series();
    }
}

criterion_group!(benches, bench_audit_overhead);
criterion_main!(benches);
