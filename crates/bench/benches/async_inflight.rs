//! Async in-flight scaling: how many coordinations a front-end can
//! hold open at once, and what each one costs — futures on one
//! `WaiterSet` thread versus the thread-per-waiter sync baseline (the
//! tentpole experiment of the async-submission PR).
//!
//! For each in-flight count `N`, a sharded coordinator absorbs `N`
//! standing never-matching queries. In **async** mode every pending
//! query is a `CoordinationFuture` held by a single `WaiterSet`; in
//! **threads** mode every pending query parks one OS thread blocking
//! on its sync ticket (the pre-async serving model, capped — the cap
//! *is* the finding). Both modes then close 200 coordinating pairs
//! through the standing load and time how long the completion fan-out
//! takes to reach every waiter. Resident-set deltas are read from
//! `/proc/self/status`, so the headline series (in-flight count vs
//! RSS bytes per waiter vs fan-out latency) is written to
//! `BENCH_async.json` at the repository root.
//!
//! Run with: `cargo bench -p youtopia-bench --bench async_inflight`
//! (`YOUTOPIA_BENCH_FAST=1` skips the headline series, so CI never
//! rewrites the committed artifact with foreign-hardware numbers.)

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use youtopia_core::{
    CoordinationOutcome, CoordinatorConfig, ShardedConfig, ShardedCoordinator, Submission,
    WaiterSet,
};
use youtopia_travel::WorkloadGen;

const RELATIONS: usize = 8;
const FLIGHTS: usize = 100;
const PAIRS: usize = 200;
const BATCH: usize = 256;

fn config() -> ShardedConfig {
    let mut base = CoordinatorConfig::default();
    base.match_config.randomize = false;
    ShardedConfig {
        shards: 4,
        workers: 0,
        auto_checkpoint_bytes: 0,
        fair_drain: false,
        checkpoint: Default::default(),
        base,
    }
}

/// Current resident set size in bytes (0 when /proc is unavailable).
fn rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

fn build_coordinator() -> (ShardedCoordinator, WorkloadGen) {
    let mut generator = WorkloadGen::new(17);
    let db = generator
        .build_database(FLIGHTS, &["Paris", "Rome"])
        .expect("database builds");
    (ShardedCoordinator::with_config(db, config()), generator)
}

struct Sample {
    mode: &'static str,
    in_flight: usize,
    hold_seconds: f64,
    rss_delta_bytes: i64,
    bytes_per_waiter: i64,
    fanout_seconds: f64,
}

/// Async mode: `noise` futures held by one `WaiterSet`, then 200 pairs
/// close through the standing load; fan-out latency is submit-partners
/// → every pair future harvested.
fn run_async(noise: usize) -> Sample {
    let (co, mut generator) = build_coordinator();
    let rss_before = rss_bytes();
    let started = Instant::now();
    let mut set = WaiterSet::new();
    let requests = generator.noise_multi(noise, "Paris", RELATIONS);
    for chunk in requests.chunks(BATCH) {
        let batch: Vec<(String, String)> = chunk
            .iter()
            .map(|r| (r.owner.clone(), r.sql.clone()))
            .collect();
        for outcome in co.submit_batch_sql_async(&batch) {
            set.insert(outcome.expect("noise is safe"));
        }
    }
    set.poll_ready();
    let hold_seconds = started.elapsed().as_secs_f64();
    let rss_delta = rss_bytes() as i64 - rss_before as i64;
    assert_eq!(set.len(), noise, "noise never matches");

    // close PAIRS pairs through the standing load
    let storm = generator.pair_storm_multi(PAIRS, "Paris", RELATIONS);
    let (first, second) = storm.split_at(PAIRS);
    for chunk in first.chunks(BATCH) {
        let batch: Vec<(String, String)> = chunk
            .iter()
            .map(|r| (r.owner.clone(), r.sql.clone()))
            .collect();
        for outcome in co.submit_batch_sql_async(&batch) {
            set.insert(outcome.expect("pairs are safe"));
        }
    }
    set.poll_ready();
    let fanout_started = Instant::now();
    for chunk in second.chunks(BATCH) {
        let batch: Vec<(String, String)> = chunk
            .iter()
            .map(|r| (r.owner.clone(), r.sql.clone()))
            .collect();
        for outcome in co.submit_batch_sql_async(&batch) {
            set.insert(outcome.expect("pairs are safe"));
        }
    }
    let mut answered = 0usize;
    while answered < 2 * PAIRS {
        let harvested = set.wait_timeout(Duration::from_secs(10));
        assert!(!harvested.is_empty(), "pair completions must arrive");
        answered += harvested
            .iter()
            .filter(|(_, o)| matches!(o, CoordinationOutcome::Answered(_)))
            .count();
    }
    let fanout_seconds = fanout_started.elapsed().as_secs_f64();
    Sample {
        mode: "async",
        in_flight: noise,
        hold_seconds,
        rss_delta_bytes: rss_delta,
        bytes_per_waiter: rss_delta / noise.max(1) as i64,
        fanout_seconds,
    }
}

/// Thread-per-waiter baseline: `noise` sync tickets, each parked on by
/// a dedicated blocking thread (the pre-async serving model). The pair
/// fan-out is measured the same way: partners submitted, then every
/// pair waiter thread joined.
fn run_threads(noise: usize) -> Sample {
    let (co, mut generator) = build_coordinator();
    let rss_before = rss_bytes();
    let started = Instant::now();
    let requests = generator.noise_multi(noise, "Paris", RELATIONS);
    let mut noise_threads = Vec::with_capacity(noise);
    for chunk in requests.chunks(BATCH) {
        let batch: Vec<(String, String)> = chunk
            .iter()
            .map(|r| (r.owner.clone(), r.sql.clone()))
            .collect();
        for outcome in co.submit_batch_sql(&batch) {
            let Ok(Submission::Pending(ticket)) = outcome else {
                panic!("noise pends");
            };
            noise_threads.push(std::thread::spawn(move || {
                // parked until the final expiry sweep disconnects it
                let _ = ticket.receiver.recv_timeout(Duration::from_secs(120));
            }));
        }
    }
    let hold_seconds = started.elapsed().as_secs_f64();
    let rss_delta = rss_bytes() as i64 - rss_before as i64;

    let storm = generator.pair_storm_multi(PAIRS, "Paris", RELATIONS);
    let (first, second) = storm.split_at(PAIRS);
    let mut pair_threads = Vec::with_capacity(PAIRS);
    for request in first {
        match co
            .submit_sql(&request.owner, &request.sql)
            .expect("pairs are safe")
        {
            Submission::Pending(ticket) => pair_threads.push(std::thread::spawn(move || {
                ticket
                    .receiver
                    .recv_timeout(Duration::from_secs(120))
                    .expect("pair completes")
            })),
            Submission::Answered(_) => panic!("first halves pend"),
        }
    }
    let fanout_started = Instant::now();
    for chunk in second.chunks(BATCH) {
        let batch: Vec<(String, String)> = chunk
            .iter()
            .map(|r| (r.owner.clone(), r.sql.clone()))
            .collect();
        for outcome in co.submit_batch_sql(&batch) {
            outcome.expect("pairs are safe");
        }
    }
    for handle in pair_threads {
        handle.join().expect("pair waiter thread panicked");
    }
    let fanout_seconds = fanout_started.elapsed().as_secs_f64();

    // release the parked noise threads
    co.expire_before(u64::MAX);
    for handle in noise_threads {
        handle.join().expect("noise waiter thread panicked");
    }
    Sample {
        mode: "threads",
        in_flight: noise,
        hold_seconds,
        rss_delta_bytes: rss_delta,
        bytes_per_waiter: rss_delta / noise.max(1) as i64,
        fanout_seconds,
    }
}

/// The headline series, written to `BENCH_async.json`.
fn headline_series() {
    let mut rows = Vec::new();
    // async scales past any sane thread count; the baseline is capped
    // at 2048 parked threads (8 MiB default stacks: 8k threads would
    // reserve 64 GiB of address space and minutes of spawn time)
    let runs: Vec<Sample> = [1000usize, 4000, 8000]
        .iter()
        .map(|&n| run_async(n))
        .chain([512usize, 2048].iter().map(|&n| run_threads(n)))
        .collect();
    for s in runs {
        println!(
            "async_inflight: {:7} mode {:6} in flight in {:.3}s, {:8} bytes/waiter, \
             pair fan-out {:.4}s",
            s.mode, s.in_flight, s.hold_seconds, s.bytes_per_waiter, s.fanout_seconds
        );
        rows.push(format!(
            "    {{\n      \"mode\": \"{}\",\n      \"in_flight\": {},\n      \
             \"hold_seconds\": {:.6},\n      \"rss_delta_bytes\": {},\n      \
             \"bytes_per_waiter\": {},\n      \"pair_fanout_seconds\": {:.6}\n    }}",
            s.mode,
            s.in_flight,
            s.hold_seconds,
            s.rss_delta_bytes,
            s.bytes_per_waiter,
            s.fanout_seconds
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"async_inflight\",\n  \"workload\": {{\n    \
         \"relations\": {RELATIONS},\n    \"flights\": {FLIGHTS},\n    \
         \"closing_pairs\": {PAIRS},\n    \
         \"threads_mode_cap\": \"2048 parked threads (8 MiB default stacks)\"\n  }},\n  \
         \"series\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_async.json");
    std::fs::write(path, json).expect("write BENCH_async.json");
    println!("wrote {path}");
}

fn bench_async_inflight(c: &mut Criterion) {
    let mut group = c.benchmark_group("async_inflight");
    group.sample_size(10);

    for &noise in &[256usize, 1024] {
        group.throughput(Throughput::Elements(noise as u64));
        group.bench_with_input(
            BenchmarkId::new("hold_and_close", noise),
            &noise,
            |b, &noise| {
                b.iter(|| run_async(noise));
            },
        );
    }
    group.finish();

    if std::env::var_os("YOUTOPIA_BENCH_FAST").is_none() {
        headline_series();
    }
}

criterion_group!(benches, bench_async_inflight);
criterion_main!(benches);
