//! E4 — "Multiple simultaneous bookings" (§3.1): throughput of p pairs
//! of users concurrently coordinating flight reservations. Measures
//! end-to-end submissions (parse → compile → register → match → apply)
//! per second.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};

use youtopia_bench::submit_all;
use youtopia_core::{Coordinator, CoordinatorConfig};
use youtopia_travel::{Request, WorkloadGen};

fn prepared(pairs: usize) -> (Coordinator, Vec<Request>) {
    let mut gen = WorkloadGen::new(17);
    let db = gen.build_database(100, &["Paris"]).unwrap();
    let coordinator = Coordinator::with_config(db, CoordinatorConfig::default());
    let requests = gen.pair_storm(pairs, "Paris");
    (coordinator, requests)
}

fn bench_simultaneous_pairs(c: &mut Criterion) {
    let mut group = c.benchmark_group("simultaneous_pairs_throughput");
    group.sample_size(10);
    for &pairs in &[10usize, 50, 100, 200] {
        group.throughput(Throughput::Elements(2 * pairs as u64));
        group.bench_with_input(BenchmarkId::from_parameter(pairs), &pairs, |b, &pairs| {
            b.iter_batched(
                || prepared(pairs),
                |(coordinator, requests)| {
                    let (answered, pending) = submit_all(&coordinator, &requests);
                    assert_eq!(answered, pairs);
                    assert_eq!(pending, pairs);
                    assert_eq!(coordinator.pending_count(), 0, "no cross-pair mismatches");
                    coordinator // dropped outside the measurement
                },
                BatchSize::PerIteration,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simultaneous_pairs);
criterion_main!(benches);
