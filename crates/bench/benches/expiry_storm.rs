//! Expiry storm: the cost of a deadline sweep retiring thousands of
//! due queries out of a larger standing load, and its impact on
//! concurrent submission throughput (the deadline-lifecycle PR's
//! headline experiment).
//!
//! The coordinator absorbs a standing load of `NOISE` never-matching,
//! deadline-less queries plus `STORM` queries whose deadlines are all
//! due. One `expire_due` sweep must then: scan only the deadline index
//! (never the full registry), group-commit the expiry frames per
//! shard, remove the entries, and resolve the waiters. The headline
//! series measures (a) the sweep alone, (b) submission throughput
//! with no sweep running, and (c) submission throughput while the
//! sweep runs on another thread — the ratio of (c) to (b) is the
//! latency impact a front-end sees when a deadline storm hits.
//! Results go to `BENCH_expiry.json` at the repository root.
//!
//! Run with: `cargo bench -p youtopia-bench --bench expiry_storm`
//! (`YOUTOPIA_BENCH_FAST=1` skips the headline series, so CI never
//! rewrites the committed artifact with foreign-hardware numbers.)

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use youtopia_core::{CoordinatorConfig, ShardedConfig, ShardedCoordinator};
use youtopia_storage::{Database, Wal};
use youtopia_travel::{drive_batched, WorkloadGen};

const RELATIONS: usize = 8;
const FLIGHTS: usize = 100;
const NOISE: usize = 8_000;
const STORM: usize = 4_000;
const PAIRS: usize = 400;
const BATCH: usize = 256;

fn config() -> ShardedConfig {
    let mut base = CoordinatorConfig::default();
    base.match_config.randomize = false;
    ShardedConfig {
        shards: 4,
        workers: 0,
        auto_checkpoint_bytes: 0,
        fair_drain: false,
        checkpoint: Default::default(),
        base,
    }
}

/// A WAL-backed coordinator carrying `noise` standing deadline-less
/// queries and `storm` queries whose deadlines are all `<= storm_t`.
fn loaded_coordinator(noise: usize, storm: usize) -> (ShardedCoordinator, WorkloadGen, Database) {
    let mut generator = WorkloadGen::new(23);
    let db = generator
        .build_database_with_wal(FLIGHTS, &["Paris", "Rome"], Wal::in_memory())
        .expect("database builds");
    let co = ShardedCoordinator::with_config(db.clone(), config());
    let standing = generator.noise_multi(noise, "Paris", RELATIONS);
    let report = drive_batched(&co, &standing, BATCH);
    assert_eq!(report.pending, noise, "standing load pends");
    let due = generator.deadline_storm(storm, "Paris", RELATIONS, 1..1_000);
    let report = drive_batched(&co, &due, BATCH);
    assert_eq!(report.pending, storm, "storm load pends");
    (co, generator, db)
}

struct Sample {
    phase: &'static str,
    sweep_seconds: f64,
    expired: usize,
    submissions: usize,
    submit_seconds: f64,
}

/// Phase (a): the sweep alone. Every storm deadline is due at
/// t=1000; the standing load must survive untouched.
fn run_sweep_only(noise: usize, storm: usize) -> Sample {
    let (co, _, _) = loaded_coordinator(noise, storm);
    let started = Instant::now();
    let expired = co.expire_due(1_000);
    let sweep_seconds = started.elapsed().as_secs_f64();
    assert_eq!(expired.len(), storm);
    assert_eq!(co.pending_count(), noise);
    Sample {
        phase: "sweep_only",
        sweep_seconds,
        expired: expired.len(),
        submissions: 0,
        submit_seconds: 0.0,
    }
}

/// Phase (b)/(c): `PAIRS` coordinating pairs driven through the loaded
/// coordinator, with (`concurrent_sweep`) or without a sweep racing on
/// a second thread.
fn run_submissions(noise: usize, storm: usize, concurrent_sweep: bool) -> Sample {
    let (co, mut generator, _) = loaded_coordinator(noise, storm);
    let requests = generator.pair_storm_multi(PAIRS, "Paris", RELATIONS);
    let (sweep_seconds, expired, submit_seconds) = std::thread::scope(|scope| {
        let sweeper = concurrent_sweep.then(|| {
            scope.spawn(|| {
                let started = Instant::now();
                let expired = co.expire_due(1_000);
                (started.elapsed().as_secs_f64(), expired.len())
            })
        });
        let started = Instant::now();
        let report = drive_batched(&co, &requests, BATCH);
        let submit_seconds = started.elapsed().as_secs_f64();
        assert_eq!(report.answered + report.pending, 2 * PAIRS);
        match sweeper {
            Some(handle) => {
                let (sweep_seconds, expired) = handle.join().expect("sweeper thread");
                (sweep_seconds, expired, submit_seconds)
            }
            None => (0.0, 0, submit_seconds),
        }
    });
    if concurrent_sweep {
        assert_eq!(expired, storm);
    }
    Sample {
        phase: if concurrent_sweep {
            "submissions_during_storm"
        } else {
            "submissions_baseline"
        },
        sweep_seconds,
        expired,
        submissions: 2 * PAIRS,
        submit_seconds,
    }
}

/// The headline series, written to `BENCH_expiry.json`.
fn headline_series() {
    let samples = vec![
        run_sweep_only(NOISE, STORM),
        run_submissions(NOISE, STORM, false),
        run_submissions(NOISE, STORM, true),
    ];
    let mut rows = Vec::new();
    for s in &samples {
        let sweep_rate = if s.sweep_seconds > 0.0 {
            s.expired as f64 / s.sweep_seconds
        } else {
            0.0
        };
        let submit_rate = if s.submit_seconds > 0.0 {
            s.submissions as f64 / s.submit_seconds
        } else {
            0.0
        };
        println!(
            "expiry_storm: {:26} sweep {:7} in {:.4}s ({:9.0}/s), \
             {:4} submissions in {:.4}s ({:8.0}/s)",
            s.phase,
            s.expired,
            s.sweep_seconds,
            sweep_rate,
            s.submissions,
            s.submit_seconds,
            submit_rate,
        );
        rows.push(format!(
            "    {{\n      \"phase\": \"{}\",\n      \"expired\": {},\n      \
             \"sweep_seconds\": {:.6},\n      \"expirations_per_second\": {:.0},\n      \
             \"submissions\": {},\n      \"submit_seconds\": {:.6},\n      \
             \"submissions_per_second\": {:.0}\n    }}",
            s.phase,
            s.expired,
            s.sweep_seconds,
            sweep_rate,
            s.submissions,
            s.submit_seconds,
            submit_rate,
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"expiry_storm\",\n  \"workload\": {{\n    \
         \"standing_noise\": {NOISE},\n    \"due_deadlines\": {STORM},\n    \
         \"relations\": {RELATIONS},\n    \"flights\": {FLIGHTS},\n    \
         \"concurrent_pairs\": {PAIRS},\n    \
         \"wal\": \"in-memory, log-before-ack expiry frames group-committed per shard\"\n  }},\n  \
         \"series\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_expiry.json");
    std::fs::write(path, json).expect("write BENCH_expiry.json");
    println!("wrote {path}");
}

fn bench_expiry_storm(c: &mut Criterion) {
    let mut group = c.benchmark_group("expiry_storm");
    group.sample_size(10);

    for &(noise, storm) in &[(1_000usize, 512usize), (2_000, 1_024)] {
        group.throughput(Throughput::Elements(storm as u64));
        group.bench_with_input(
            BenchmarkId::new("sweep_due", format!("{storm}due_{noise}standing")),
            &(noise, storm),
            |b, &(noise, storm)| {
                b.iter(|| run_sweep_only(noise, storm));
            },
        );
    }
    group.finish();

    if std::env::var_os("YOUTOPIA_BENCH_FAST").is_none() {
        headline_series();
    }
}

criterion_group!(benches, bench_expiry_storm);
criterion_main!(benches);
