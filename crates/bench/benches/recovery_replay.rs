//! Recovery replay: log size vs. rebuild time for the crash-recoverable
//! coordinator (the tentpole experiment of the durable-coordination PR).
//!
//! A WAL-backed sharded coordinator absorbs a workload of `N` standing
//! registrations plus `N/4` matched pairs, the process is "killed"
//! (only the WAL bytes survive), and `ShardedCoordinator::recover`
//! rebuilds it — storage replay, survivor folding, SQL re-compilation,
//! router rebuild, and the re-match sweep, all timed together. The
//! headline series (log bytes, events, rebuild seconds, registrations
//! recovered per second) is written to `BENCH_recovery.json` at the
//! repository root.
//!
//! Run with: `cargo bench -p youtopia-bench --bench recovery_replay`
//! (`YOUTOPIA_BENCH_FAST=1` skips the headline series, so CI never
//! rewrites the committed artifact with foreign-hardware numbers.)

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};

use youtopia_core::{CoordinatorConfig, ShardedConfig, ShardedCoordinator};
use youtopia_storage::Wal;
use youtopia_travel::{drive_batched, WorkloadGen};

const RELATIONS: usize = 8;
const FLIGHTS: usize = 100;
const SHARDS: usize = 4;

fn config() -> ShardedConfig {
    let mut base = CoordinatorConfig::default();
    base.match_config.randomize = false;
    ShardedConfig {
        shards: SHARDS,
        workers: 0,
        auto_checkpoint_bytes: 0,
        fair_drain: false,
        checkpoint: Default::default(),
        base,
    }
}

/// Builds a killed coordinator's WAL: `noise` standing registrations
/// plus `noise / 4` matched pairs, all logged. Returns the salvaged
/// bytes and the number of coordination events they hold.
fn build_log(noise: usize) -> (Vec<u8>, usize) {
    let mut generator = WorkloadGen::new(11);
    let db = generator
        .build_database_with_wal(FLIGHTS, &["Paris", "Rome"], Wal::in_memory())
        .expect("database builds");
    let co = ShardedCoordinator::with_config(db.clone(), config());
    let mut requests = generator.noise_multi(noise, "Paris", RELATIONS);
    requests.extend(generator.pair_storm_multi(noise / 4, "Paris", RELATIONS));
    let events = requests.len();
    drive_batched(&co, &requests, 128);
    let bytes = db.wal_bytes().expect("WAL-backed database");
    (bytes, events)
}

/// One timed recovery; returns (seconds, restored pending count).
fn run_recovery(bytes: Vec<u8>) -> (f64, usize) {
    let started = Instant::now();
    let (co, report) =
        ShardedCoordinator::recover(Wal::from_bytes(bytes), config()).expect("recovery succeeds");
    let elapsed = started.elapsed().as_secs_f64();
    co.check_routing_invariants()
        .expect("routing invariants hold after recovery");
    (elapsed, report.restored_pending)
}

/// The headline series, written to `BENCH_recovery.json`.
fn headline_series() {
    let mut rows = Vec::new();
    for &noise in &[1000usize, 4000, 8000] {
        let (bytes, events) = build_log(noise);
        let log_bytes = bytes.len();
        // median of three timed recoveries of the same log
        let mut runs = [
            run_recovery(bytes.clone()),
            run_recovery(bytes.clone()),
            run_recovery(bytes),
        ];
        runs.sort_by(|a, b| a.0.total_cmp(&b.0));
        let (seconds, restored) = runs[1];
        let per_sec = restored as f64 / seconds;
        println!(
            "recovery_replay: {restored:6} pending from {log_bytes:9} log bytes \
             in {seconds:.4}s ({per_sec:.0} registrations/s)"
        );
        rows.push(format!(
            "    {{\n      \"standing_noise\": {noise},\n      \"events\": {events},\n      \
             \"log_bytes\": {log_bytes},\n      \"restored_pending\": {restored},\n      \
             \"rebuild_seconds\": {seconds:.6},\n      \
             \"registrations_per_sec\": {per_sec:.1}\n    }}"
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"recovery_replay\",\n  \"workload\": {{\n    \
         \"relations\": {RELATIONS},\n    \"flights\": {FLIGHTS},\n    \
         \"shards\": {SHARDS},\n    \"matched_pairs\": \"noise / 4\"\n  }},\n  \
         \"series\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_recovery.json");
    std::fs::write(path, json).expect("write BENCH_recovery.json");
    println!("wrote {path}");
}

fn bench_recovery_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery_replay");
    group.sample_size(10);

    for &noise in &[500usize, 2000] {
        let (bytes, _) = build_log(noise);
        group.throughput(Throughput::Elements(noise as u64));
        group.bench_with_input(BenchmarkId::new("recover", noise), &bytes, |b, bytes| {
            b.iter_batched(|| bytes.clone(), run_recovery, BatchSize::PerIteration);
        });
    }
    group.finish();

    if std::env::var_os("YOUTOPIA_BENCH_FAST").is_none() {
        headline_series();
    }
}

criterion_group!(benches, bench_recovery_replay);
criterion_main!(benches);
