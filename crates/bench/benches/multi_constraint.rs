//! E3 — constraint complexity (§3.1 "Book a flight and a hotel with a
//! friend" generalized): latency of closing a pair whose queries carry
//! 1 + k answer constraints over 1 + k answer relations. The
//! flight+hotel scenario is k = 1.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

use youtopia_core::{Coordinator, CoordinatorConfig, Submission};
use youtopia_travel::{Request, WorkloadGen};

fn staged(extra: usize) -> (Coordinator, Request) {
    let mut gen = WorkloadGen::new(19);
    let db = gen.build_database(100, &["Paris"]).unwrap();
    let coordinator = Coordinator::with_config(db, CoordinatorConfig::default());
    let first = WorkloadGen::pair_with_constraint_count("a", "b", "Paris", extra);
    let closing = WorkloadGen::pair_with_constraint_count("b", "a", "Paris", extra);
    let sub = coordinator.submit_sql(&first.owner, &first.sql).unwrap();
    assert!(matches!(sub, Submission::Pending(_)));
    (coordinator, closing)
}

fn bench_multi_constraint(c: &mut Criterion) {
    let mut group = c.benchmark_group("constraints_per_query_close_latency");
    group.sample_size(10);
    for &extra in &[0usize, 1, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(1 + extra),
            &extra,
            |b, &extra| {
                b.iter_batched(
                    || staged(extra),
                    |(coordinator, closing)| {
                        let sub = coordinator
                            .submit_sql(&closing.owner, &closing.sql)
                            .unwrap();
                        assert!(matches!(sub, Submission::Answered(_)));
                        coordinator // dropped outside the measurement
                    },
                    BatchSize::PerIteration,
                );
            },
        );
    }
    group.finish();

    // the concrete paper scenario: flight+hotel pair vs flight-only pair
    let mut scenario = c.benchmark_group("flight_hotel_vs_flight_only");
    scenario.sample_size(10);
    scenario.bench_function("flight_only", |b| {
        b.iter_batched(
            || {
                let mut gen = WorkloadGen::new(23);
                let db = gen.build_database(100, &["Paris"]).unwrap();
                let coordinator = Coordinator::with_config(db, CoordinatorConfig::default());
                let first = WorkloadGen::pair_request("a", "b", "Paris");
                coordinator.submit_sql(&first.owner, &first.sql).unwrap();
                (coordinator, WorkloadGen::pair_request("b", "a", "Paris"))
            },
            |(coordinator, closing)| {
                let sub = coordinator
                    .submit_sql(&closing.owner, &closing.sql)
                    .unwrap();
                assert!(matches!(sub, Submission::Answered(_)));
                coordinator // dropped outside the measurement
            },
            BatchSize::PerIteration,
        );
    });
    scenario.bench_function("flight_and_hotel", |b| {
        b.iter_batched(
            || {
                let mut gen = WorkloadGen::new(23);
                let db = gen.build_database(100, &["Paris"]).unwrap();
                let coordinator = Coordinator::with_config(db, CoordinatorConfig::default());
                let first = WorkloadGen::pair_flight_hotel("a", "b", "Paris");
                coordinator.submit_sql(&first.owner, &first.sql).unwrap();
                (
                    coordinator,
                    WorkloadGen::pair_flight_hotel("b", "a", "Paris"),
                )
            },
            |(coordinator, closing)| {
                let sub = coordinator
                    .submit_sql(&closing.owner, &closing.sql)
                    .unwrap();
                assert!(matches!(sub, Submission::Answered(_)));
                coordinator // dropped outside the measurement
            },
            BatchSize::PerIteration,
        );
    });
    scenario.finish();
}

criterion_group!(benches, bench_multi_constraint);
criterion_main!(benches);
