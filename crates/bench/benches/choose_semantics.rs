//! E9 — `CHOOSE 1` semantics (§2.1): the cost of the nondeterministic
//! choice as the eligible domain grows. A self-contained entangled
//! query picks one of N eligible flights; the grounding phase's
//! randomized row selection implements the paper's "the system
//! nondeterministically chooses either flight 122 or 123".
//!
//! (The *distribution* of choices is validated by the integration test
//! `tests/choose_nondeterminism.rs`; a bench measures only cost.)

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

use youtopia_core::{Coordinator, CoordinatorConfig, Submission};
use youtopia_travel::WorkloadGen;

fn bench_choose(c: &mut Criterion) {
    let mut group = c.benchmark_group("choose_one_domain_size");
    group.sample_size(10);
    for &n_flights in &[10usize, 100, 1000, 5000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(n_flights),
            &n_flights,
            |b, &n| {
                b.iter_batched(
                    || {
                        let mut gen = WorkloadGen::new(31);
                        let db = gen.build_database(n, &["Paris"]).unwrap();
                        Coordinator::with_config(db, CoordinatorConfig::default())
                    },
                    |coordinator| {
                        let sub = coordinator
                            .submit_sql(
                                "solo",
                                "SELECT 'solo', fno INTO ANSWER Reservation \
                                 WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') \
                                 CHOOSE 1",
                            )
                            .unwrap();
                        assert!(matches!(sub, Submission::Answered(_)));
                        coordinator // dropped outside the measurement
                    },
                    BatchSize::PerIteration,
                );
            },
        );
    }
    group.finish();

    // pair coordination over growing shared domains: the grounding must
    // agree on one of N flights
    let mut pair = c.benchmark_group("choose_one_pair_domain_size");
    pair.sample_size(10);
    for &n_flights in &[10usize, 100, 1000] {
        pair.bench_with_input(
            BenchmarkId::from_parameter(n_flights),
            &n_flights,
            |b, &n| {
                b.iter_batched(
                    || {
                        let mut gen = WorkloadGen::new(37);
                        let db = gen.build_database(n, &["Paris"]).unwrap();
                        let coordinator =
                            Coordinator::with_config(db, CoordinatorConfig::default());
                        let first = WorkloadGen::pair_request("a", "b", "Paris");
                        coordinator.submit_sql(&first.owner, &first.sql).unwrap();
                        (coordinator, WorkloadGen::pair_request("b", "a", "Paris"))
                    },
                    |(coordinator, closing)| {
                        let sub = coordinator
                            .submit_sql(&closing.owner, &closing.sql)
                            .unwrap();
                        assert!(matches!(sub, Submission::Answered(_)));
                        coordinator // dropped outside the measurement
                    },
                    BatchSize::PerIteration,
                );
            },
        );
    }
    pair.finish();
}

criterion_group!(benches, bench_choose);
criterion_main!(benches);
