//! Group-commit pipeline throughput: the tentpole experiment for the
//! pipelined-WAL-writer PR, run over a **real temp-file WAL** (memory
//! sinks hide the fsync cost the pipeline exists to amortize).
//!
//! Compares two durability disciplines under N concurrent committers:
//!
//! * **fsync-per-commit** — the pre-pipeline discipline: every
//!   committer locks the shared log, appends its marker-sealed group,
//!   and syncs before acknowledging, so N committers pay N fsyncs;
//! * **pipelined** — the [`GroupCommit`] writer thread absorbs all
//!   committers into one queue and syncs each drained batch once, so
//!   concurrent commits share a single fsync per quantum while every
//!   committer still blocks until its own group is durable.
//!
//! The headline numbers — commits/second for both disciplines, their
//! ratio, and an end-to-end sharded-submission run on a file-backed
//! WAL — are written to `BENCH_groupcommit.json` at the repository
//! root. A criterion group reports the same comparison across thread
//! counts.
//!
//! Run with: `cargo bench -p youtopia-bench --bench group_commit`

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use youtopia_core::{ShardedConfig, ShardedCoordinator};
use youtopia_storage::group_commit::{GroupCommit, GroupCommitConfig};
use youtopia_storage::{Wal, WalRecord};
use youtopia_travel::{drive_batched, WorkloadGen};

/// Workload shape: each committer thread issues this many commit
/// groups of `RECORDS_PER_COMMIT` coordination frames.
const COMMITS_PER_THREAD: usize = 48;
const RECORDS_PER_COMMIT: usize = 2;
const PAYLOAD_BYTES: usize = 48;
const HEADLINE_THREADS: usize = 8;

fn scratch_path(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join("youtopia_groupcommit_bench");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(format!(
        "{tag}_{}_{}.wal",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn commit_group(thread: usize, i: usize) -> Vec<WalRecord> {
    (0..RECORDS_PER_COMMIT)
        .map(|r| {
            let mut payload = vec![0u8; PAYLOAD_BYTES];
            payload[0] = thread as u8;
            payload[1] = i as u8;
            payload[2] = r as u8;
            WalRecord::Coordination(payload)
        })
        .collect()
}

/// The pre-pipeline discipline: every committer appends and syncs
/// under the log mutex — one fsync per commit, N committers pay N.
fn run_fsync_per_commit(threads: usize) -> f64 {
    let path = scratch_path("per_commit");
    let wal = Arc::new(Mutex::new(Wal::open(&path).expect("open scratch wal")));
    let started = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let wal = wal.clone();
            scope.spawn(move || {
                for i in 0..COMMITS_PER_THREAD {
                    let mut wal = wal.lock().expect("bench lock");
                    for record in commit_group(t, i) {
                        wal.append_record(&record).expect("append");
                    }
                    wal.append_commit_boundary().expect("seal");
                    wal.sync().expect("sync");
                }
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64();
    drop(wal);
    let _ = std::fs::remove_file(&path);
    elapsed
}

/// The pipelined writer: all committers share the writer thread's one
/// fsync per drained batch.
fn run_pipelined(threads: usize) -> f64 {
    let path = scratch_path("pipelined");
    let gc = Arc::new(GroupCommit::spawn(
        Wal::open(&path).expect("open scratch wal"),
        GroupCommitConfig::default(),
    ));
    let started = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let gc = gc.clone();
            scope.spawn(move || {
                for i in 0..COMMITS_PER_THREAD {
                    gc.commit(commit_group(t, i)).expect("pipelined commit");
                }
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64();
    drop(gc);
    let _ = std::fs::remove_file(&path);
    elapsed
}

/// Median of three timed runs.
fn median_of_three(run: impl Fn(usize) -> f64, threads: usize) -> f64 {
    let mut runs = [run(threads), run(threads), run(threads)];
    runs.sort_by(f64::total_cmp);
    runs[1]
}

/// End-to-end context: sharded pair submission on a file-backed WAL,
/// where every shard's registration batch now rides the shared
/// pipeline instead of paying its own fsync.
fn run_sharded_file_wal() -> (f64, usize, usize) {
    let path = scratch_path("sharded");
    let mut gen = WorkloadGen::new(7);
    let db = gen
        .build_database_with_wal(120, &["Paris", "Rome"], Wal::open(&path).expect("open wal"))
        .expect("database builds");
    let co = ShardedCoordinator::with_config(
        db,
        ShardedConfig {
            shards: 4,
            ..Default::default()
        },
    );
    let storm = gen.pair_storm_multi(100, "Paris", 8);
    let started = Instant::now();
    let report = drive_batched(&co, &storm, 32);
    let elapsed = started.elapsed().as_secs_f64();
    co.check_routing_invariants().expect("routing invariants");
    drop(co);
    let _ = std::fs::remove_file(&path);
    (elapsed, storm.len(), report.answered)
}

/// The headline comparison, written to `BENCH_groupcommit.json`.
fn headline_comparison() {
    let threads = HEADLINE_THREADS;
    let commits = threads * COMMITS_PER_THREAD;

    let per_commit_secs = median_of_three(run_fsync_per_commit, threads);
    let pipelined_secs = median_of_three(run_pipelined, threads);
    let per_commit_cps = commits as f64 / per_commit_secs;
    let pipelined_cps = commits as f64 / pipelined_secs;
    let speedup = pipelined_cps / per_commit_cps;

    let (sharded_secs, requests, answered) = run_sharded_file_wal();
    assert_eq!(answered * 2, requests, "every pair closes");
    let sharded_rps = requests as f64 / sharded_secs;

    println!("\n=== group_commit headline ===");
    println!("workload: {threads} committers x {COMMITS_PER_THREAD} commits, file-backed WAL");
    println!("fsync-per-commit : {per_commit_cps:10.0} commits/s  ({per_commit_secs:.3}s)");
    println!("pipelined        : {pipelined_cps:10.0} commits/s  ({pipelined_secs:.3}s)");
    println!("speedup          : {speedup:.2}x");
    println!(
        "sharded file WAL : {sharded_rps:10.0} req/s  ({sharded_secs:.3}s, {requests} requests)\n"
    );

    let json = format!(
        "{{\n  \"bench\": \"group_commit\",\n  \"workload\": {{\n    \"threads\": {threads},\n    \"commits_per_thread\": {COMMITS_PER_THREAD},\n    \"records_per_commit\": {RECORDS_PER_COMMIT},\n    \"payload_bytes\": {PAYLOAD_BYTES},\n    \"sink\": \"temp file (fsync real)\"\n  }},\n  \"fsync_per_commit\": {{\n    \"seconds\": {per_commit_secs:.6},\n    \"commits_per_sec\": {per_commit_cps:.1}\n  }},\n  \"pipelined\": {{\n    \"quantum\": \"0 (sync immediately, batch what queued)\",\n    \"seconds\": {pipelined_secs:.6},\n    \"commits_per_sec\": {pipelined_cps:.1}\n  }},\n  \"speedup\": {speedup:.3},\n  \"sharded_file_wal\": {{\n    \"shards\": 4,\n    \"requests\": {requests},\n    \"seconds\": {sharded_secs:.6},\n    \"requests_per_sec\": {sharded_rps:.1}\n  }}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_groupcommit.json");
    std::fs::write(path, json).expect("write BENCH_groupcommit.json");
    println!("wrote {path}");
}

fn bench_group_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("group_commit_file_wal");
    group.sample_size(10);

    for &threads in &[1usize, 4, 8] {
        group.throughput(Throughput::Elements((threads * COMMITS_PER_THREAD) as u64));
        group.bench_with_input(
            BenchmarkId::new("fsync_per_commit", threads),
            &threads,
            |b, &threads| b.iter(|| run_fsync_per_commit(threads)),
        );
        group.bench_with_input(
            BenchmarkId::new("pipelined", threads),
            &threads,
            |b, &threads| b.iter(|| run_pipelined(threads)),
        );
    }
    group.finish();

    // the headline (median-of-three full runs + committed JSON artifact)
    // is skipped in fast/smoke mode so CI stays quick and never rewrites
    // BENCH_groupcommit.json with numbers from foreign hardware
    if std::env::var_os("YOUTOPIA_BENCH_FAST").is_none() {
        headline_comparison();
    }
}

criterion_group!(benches, bench_group_commit);
criterion_main!(benches);
