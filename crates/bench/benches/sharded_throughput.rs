//! Sharded-coordinator throughput: the tentpole experiment for the
//! sharding PR. Measures end-to-end submission throughput of a
//! multi-relation pair workload over a standing noise load, comparing
//!
//! * the **serial** coordinator (one global mutex, cascade scans every
//!   pending query), against
//! * the **sharded** coordinator (4 shards; routing by answer-relation
//!   signature confines every cascade scan and match attempt to one
//!   shard's registry).
//!
//! The headline numbers — requests/second for both configurations and
//! their ratio — are written to `BENCH_sharded.json` at the repository
//! root so the result is a committed artifact. A criterion group also
//! reports per-storm submission latency across noise levels.
//!
//! Run with: `cargo bench -p youtopia-bench --bench sharded_throughput`

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};

use youtopia_bench::{build_sharded_stack, build_stack, preload_noise_sharded};
use youtopia_core::{CoordinatorConfig, ShardedConfig};
use youtopia_travel::{drive_batched, Request, WorkloadGen};

/// Workload shape shared by the headline comparison and the criterion
/// series: `PAIRS` coordinating pairs spread over `RELATIONS` answer
/// relations, arriving on top of a standing noise load.
const RELATIONS: usize = 8;
const PAIRS: usize = 250;
const FLIGHTS: usize = 200;
const BATCH: usize = 64;
const SHARDS: usize = 4;

fn storm_workload(noise: usize) -> (Vec<Request>, Vec<Request>) {
    let mut gen = WorkloadGen::new(42);
    let noise_reqs = gen.noise_multi(noise, "Paris", RELATIONS);
    let storm = gen.pair_storm_multi(PAIRS, "Paris", RELATIONS);
    (noise_reqs, storm)
}

/// Serial throughput: per-arrival submission through the global mutex.
/// Returns (elapsed seconds, answered count).
fn run_serial(noise: usize) -> (f64, usize) {
    let stack = build_stack(7, FLIGHTS, &["Paris", "Rome"], CoordinatorConfig::default());
    let (noise_reqs, storm) = storm_workload(noise);
    for r in &noise_reqs {
        stack
            .coordinator
            .submit_sql(&r.owner, &r.sql)
            .expect("noise submits");
    }
    let started = Instant::now();
    let mut answered = 0;
    for r in &storm {
        if let youtopia_core::Submission::Answered(_) = stack
            .coordinator
            .submit_sql(&r.owner, &r.sql)
            .expect("storm submits")
        {
            answered += 1;
        }
    }
    (started.elapsed().as_secs_f64(), answered)
}

/// Sharded throughput: batched submission drained per shard.
fn run_sharded(noise: usize) -> (f64, usize) {
    let config = ShardedConfig {
        shards: SHARDS,
        ..Default::default()
    };
    let stack = build_sharded_stack(7, FLIGHTS, &["Paris", "Rome"], config);
    let mut gen = WorkloadGen::new(42);
    preload_noise_sharded(&stack.coordinator, &mut gen, noise, "Paris", RELATIONS);
    let storm = gen.pair_storm_multi(PAIRS, "Paris", RELATIONS);
    let started = Instant::now();
    let report = drive_batched(&stack.coordinator, &storm, BATCH);
    let elapsed = started.elapsed().as_secs_f64();
    stack
        .coordinator
        .check_routing_invariants()
        .expect("routing invariants hold");
    (elapsed, report.answered)
}

/// Median of three timed runs (each run builds a fresh stack).
fn median_of_three(run: impl Fn(usize) -> (f64, usize), noise: usize) -> (f64, usize) {
    let mut runs = [run(noise), run(noise), run(noise)];
    runs.sort_by(|a, b| a.0.total_cmp(&b.0));
    runs[1]
}

/// The headline comparison, written to `BENCH_sharded.json`.
fn headline_comparison() {
    let noise = 6000;
    let requests = PAIRS * 2;

    let (serial_secs, serial_answered) = median_of_three(run_serial, noise);
    let (sharded_secs, sharded_answered) = median_of_three(run_sharded, noise);
    assert_eq!(serial_answered, PAIRS, "every pair closes (serial)");
    assert_eq!(sharded_answered, PAIRS, "every pair closes (sharded)");

    let serial_rps = requests as f64 / serial_secs;
    let sharded_rps = requests as f64 / sharded_secs;
    let speedup = sharded_rps / serial_rps;

    println!("\n=== sharded_throughput headline ===");
    println!("workload: {PAIRS} pairs over {RELATIONS} relations, {noise} standing noise");
    println!("serial    : {serial_rps:10.0} req/s  ({serial_secs:.3}s)");
    println!("sharded/{SHARDS} : {sharded_rps:10.0} req/s  ({sharded_secs:.3}s)");
    println!("speedup   : {speedup:.2}x\n");

    let json = format!(
        "{{\n  \"bench\": \"sharded_throughput\",\n  \"workload\": {{\n    \"pairs\": {PAIRS},\n    \"requests\": {requests},\n    \"relations\": {RELATIONS},\n    \"standing_noise\": {noise},\n    \"flights\": {FLIGHTS},\n    \"batch_size\": {BATCH}\n  }},\n  \"serial\": {{\n    \"seconds\": {serial_secs:.6},\n    \"requests_per_sec\": {serial_rps:.1}\n  }},\n  \"sharded\": {{\n    \"shards\": {SHARDS},\n    \"seconds\": {sharded_secs:.6},\n    \"requests_per_sec\": {sharded_rps:.1}\n  }},\n  \"speedup\": {speedup:.3}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sharded.json");
    std::fs::write(path, json).expect("write BENCH_sharded.json");
    println!("wrote {path}");
}

fn bench_sharded_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_throughput_storm");
    group.sample_size(10);
    group.throughput(Throughput::Elements((PAIRS * 2) as u64));

    for &noise in &[0usize, 1000, 4000] {
        group.bench_with_input(BenchmarkId::new("serial", noise), &noise, |b, &noise| {
            b.iter_batched(|| noise, run_serial, BatchSize::PerIteration);
        });
        group.bench_with_input(BenchmarkId::new("sharded4", noise), &noise, |b, &noise| {
            b.iter_batched(|| noise, run_sharded, BatchSize::PerIteration);
        });
    }
    group.finish();

    // the headline (median-of-three full runs + committed JSON artifact)
    // is skipped in fast/smoke mode so CI stays quick and never rewrites
    // BENCH_sharded.json with numbers from foreign hardware
    if std::env::var_os("YOUTOPIA_BENCH_FAST").is_none() {
        headline_comparison();
    }
}

criterion_group!(benches, bench_sharded_throughput);
criterion_main!(benches);
