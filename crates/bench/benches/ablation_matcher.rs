//! E10 — ablation of the matcher's design choices (DESIGN.md §7):
//!
//! 1. constant-position indexing of pending heads (registry);
//! 2. forward checking (σ-sharpened candidate lookup + fail-first
//!    grounding order).
//!
//! Measured as pair-close latency on top of 200 standing pending
//! queries, across the four on/off combinations.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

use youtopia_bench::preload_noise;
use youtopia_core::{Coordinator, CoordinatorConfig, MatchConfig, Submission};
use youtopia_travel::{Request, WorkloadGen};

fn staged(use_const_index: bool, forward_checking: bool, noise: usize) -> (Coordinator, Request) {
    let mut gen = WorkloadGen::new(29);
    let db = gen.build_database(200, &["Paris"]).unwrap();
    let config = CoordinatorConfig {
        use_const_index,
        match_config: MatchConfig {
            forward_checking,
            ..MatchConfig::default()
        },
        ..CoordinatorConfig::default()
    };
    let coordinator = Coordinator::with_config(db, config);
    preload_noise(&coordinator, &mut gen, noise, "Paris");
    let first = WorkloadGen::pair_request("probeA", "probeB", "Paris");
    coordinator.submit_sql(&first.owner, &first.sql).unwrap();
    (
        coordinator,
        WorkloadGen::pair_request("probeB", "probeA", "Paris"),
    )
}

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("matcher_ablation_200_pending");
    group.sample_size(10);
    let variants: &[(&str, bool, bool)] = &[
        ("index_on_fc_on", true, true),
        ("index_off_fc_on", false, true),
        ("index_on_fc_off", true, false),
        ("index_off_fc_off", false, false),
    ];
    for &(name, idx, fc) in variants {
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &(idx, fc),
            |b, &(idx, fc)| {
                b.iter_batched(
                    || staged(idx, fc, 200),
                    |(coordinator, closing)| {
                        let sub = coordinator
                            .submit_sql(&closing.owner, &closing.sql)
                            .unwrap();
                        assert!(matches!(sub, Submission::Answered(_)));
                        coordinator // dropped outside the measurement
                    },
                    BatchSize::PerIteration,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
