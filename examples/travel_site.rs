//! The travel web site demo: every coordination scenario of the
//! paper's Section 3.1, run end to end through the middle tier.
//!
//! Run with: `cargo run --example travel_site`

use youtopia::travel::{BookingOutcome, FlightPrefs, TravelService};

fn banner(title: &str) {
    println!("\n=== {title} ===");
}

fn main() {
    let site = TravelService::bootstrap_demo().expect("demo stack boots");

    // "He begins the process by logging in to Facebook so that
    //  Kramer's contact information can be imported."
    site.social()
        .import_friends("jerry", &["kramer", "elaine", "george"])
        .unwrap();
    site.social()
        .import_friends("kramer", &["elaine", "george"])
        .unwrap();
    site.social().import_friends("elaine", &["george"]).unwrap();
    println!(
        "jerry's imported friend list: {:?}",
        site.social().friends_of("jerry").unwrap()
    );

    // ------------------------------------------------------------------ //
    banner("Scenario 1: book a flight with a friend");
    let prefs = FlightPrefs {
        max_price: Some(600.0),
        day: None,
    };
    let out = site
        .coordinate_flight("jerry", "kramer", "Paris", prefs)
        .unwrap();
    println!("jerry's request: {:?}", kind(&out));
    let out = site
        .coordinate_flight("kramer", "jerry", "Paris", prefs)
        .unwrap();
    println!("kramer's request: {:?}", kind(&out));
    let jerry_fno = site.account_view("jerry").unwrap().flights[0];
    let kramer_fno = site.account_view("kramer").unwrap().flights[0];
    assert_eq!(jerry_fno, kramer_fno);
    println!("both booked flight {jerry_fno}");
    println!(
        "jerry's notification: {}",
        site.notifier().drain("jerry")[0].body
    );
    println!(
        "kramer's notification: {}",
        site.notifier().drain("kramer")[0].body
    );

    // ------------------------------------------------------------------ //
    banner("Scenario 1b: the alternate path — browse friends' bookings, then book");
    // elaine sees where her friends already are (the demo's Figure 4)
    let seen = site.browse_friend_bookings("elaine").unwrap();
    println!("elaine sees friends' bookings: {seen:?}");
    // she decides to book the same flight as george... but george has no
    // booking, so she books jerry's flight directly via kramer
    let target = seen
        .iter()
        .find(|(who, _)| who == "kramer")
        .map(|(_, fno)| *fno)
        .expect("kramer has a booking");
    site.book_direct("elaine", target).unwrap();
    println!("elaine booked flight {target} directly");

    // ------------------------------------------------------------------ //
    banner("Scenario 1c: adjacent seats (\"fly in an adjacent seat to Kramer\")");
    let adj = TravelService::bootstrap_demo().unwrap();
    adj.social().import_friends("jerry", &["kramer"]).unwrap();
    adj.coordinate_adjacent_seats("jerry", "kramer", "Paris")
        .unwrap();
    let out = adj
        .coordinate_adjacent_seats("kramer", "jerry", "Paris")
        .unwrap();
    assert!(out.is_confirmed());
    let read = adj.db().read();
    let seats: Vec<(String, i64, i64)> = read
        .table("SeatReservation")
        .unwrap()
        .scan()
        .map(|(_, t)| {
            (
                t.values()[0].as_str().unwrap().to_string(),
                t.values()[1].as_int().unwrap(),
                t.values()[2].as_int().unwrap(),
            )
        })
        .collect();
    drop(read);
    for (who, fno, seat) in &seats {
        println!("{who}: flight {fno}, seat {seat}");
    }
    assert_eq!(seats[0].1, seats[1].1);
    assert_eq!((seats[0].2 - seats[1].2).abs(), 1, "seats are adjacent");

    // ------------------------------------------------------------------ //
    banner("Scenario 2: book a flight AND a hotel with a friend");
    site.coordinate_flight_and_hotel("elaine", "george", "Paris", FlightPrefs::default())
        .unwrap();
    let out = site
        .coordinate_flight_and_hotel("george", "elaine", "Paris", FlightPrefs::default())
        .unwrap();
    println!("george's request: {:?}", kind(&out));
    let e = site.account_view("elaine").unwrap();
    let g = site.account_view("george").unwrap();
    println!("elaine: flights {:?} hotels {:?}", e.flights, e.hotels);
    println!("george: flights {:?} hotels {:?}", g.flights, g.hotels);
    assert_eq!(e.hotels, g.hotels, "same hotel, all-or-nothing");

    // ------------------------------------------------------------------ //
    banner("Scenario 3: multiple simultaneous bookings");
    let fresh = TravelService::bootstrap_demo().unwrap();
    let pairs = [("p1", "q1"), ("p2", "q2"), ("p3", "q3")];
    for (a, b) in pairs {
        fresh.social().import_friends(a, &[b]).unwrap();
    }
    for (a, b) in pairs {
        fresh
            .coordinate_flight(a, b, "Paris", FlightPrefs::default())
            .unwrap();
    }
    println!(
        "3 pairs submitted their first halves; pending = {}",
        fresh.coordinator().pending_count()
    );
    for (a, b) in pairs {
        let out = fresh
            .coordinate_flight(b, a, "Paris", FlightPrefs::default())
            .unwrap();
        assert!(out.is_confirmed());
    }
    for (a, b) in pairs {
        let fa = fresh.account_view(a).unwrap().flights;
        let fb = fresh.account_view(b).unwrap().flights;
        assert_eq!(fa, fb);
        println!("pair ({a},{b}) coordinated on flight {:?}", fa[0]);
    }

    // ------------------------------------------------------------------ //
    banner("Scenario 4: group flight booking (four friends)");
    let grp = TravelService::bootstrap_demo().unwrap();
    let group = ["alice", "bob", "carol", "dave"];
    for u in &group {
        let others: Vec<&str> = group.iter().filter(|o| *o != u).copied().collect();
        grp.social().import_friends(u, &others).unwrap();
    }
    for (i, u) in group.iter().enumerate() {
        let others: Vec<&str> = group.iter().filter(|o| *o != u).copied().collect();
        let out = grp
            .coordinate_group_flight(u, &others, "Paris", FlightPrefs::default())
            .unwrap();
        println!(
            "{u} submits ({}/{}) -> {:?}",
            i + 1,
            group.len(),
            kind(&out)
        );
    }
    let fnos: std::collections::HashSet<i64> = group
        .iter()
        .map(|u| grp.account_view(u).unwrap().flights[0])
        .collect();
    assert_eq!(fnos.len(), 1);
    println!(
        "all four friends are on flight {:?}",
        fnos.iter().next().unwrap()
    );

    // ------------------------------------------------------------------ //
    banner("Scenario 5: group flight AND hotel booking");
    let gh = TravelService::bootstrap_demo().unwrap();
    let trio = ["tom", "uma", "vic"];
    for u in &trio {
        let others: Vec<&str> = trio.iter().filter(|o| *o != u).copied().collect();
        gh.social().import_friends(u, &others).unwrap();
    }
    for u in &trio {
        let others: Vec<&str> = trio.iter().filter(|o| *o != u).copied().collect();
        gh.coordinate_group_flight_and_hotel(u, &others, "Paris", FlightPrefs::default())
            .unwrap();
    }
    for u in &trio {
        let v = gh.account_view(u).unwrap();
        println!("{u}: flight {:?}, hotel {:?}", v.flights[0], v.hotels[0]);
    }

    // ------------------------------------------------------------------ //
    banner("Scenario 6: ad-hoc coordination (Jerry+Kramer flights; Kramer+Elaine flight+hotel)");
    let adhoc = TravelService::bootstrap_demo().unwrap();
    adhoc
        .social()
        .import_friends("jerry", &["kramer", "elaine"])
        .unwrap();
    adhoc
        .social()
        .import_friends("kramer", &["elaine"])
        .unwrap();
    let jerry_q = "SELECT 'jerry', fno INTO ANSWER Reservation \
         WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris' AND seats >= 3) \
         AND ('kramer', fno) IN ANSWER Reservation CHOOSE 1";
    let kramer_q = "SELECT 'kramer', fno INTO ANSWER Reservation, \
         'kramer', hid INTO ANSWER HotelReservation \
         WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris' AND seats >= 3) \
         AND hid IN (SELECT hid FROM Hotels WHERE city = 'Paris' AND rooms >= 2) \
         AND ('jerry', fno) IN ANSWER Reservation \
         AND ('elaine', hid) IN ANSWER HotelReservation CHOOSE 1";
    let elaine_q = "SELECT 'elaine', fno INTO ANSWER Reservation, \
         'elaine', hid INTO ANSWER HotelReservation \
         WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris' AND seats >= 3) \
         AND hid IN (SELECT hid FROM Hotels WHERE city = 'Paris' AND rooms >= 2) \
         AND ('kramer', fno) IN ANSWER Reservation \
         AND ('kramer', hid) IN ANSWER HotelReservation CHOOSE 1";
    adhoc.coordinate_custom("jerry", jerry_q).unwrap();
    adhoc.coordinate_custom("kramer", kramer_q).unwrap();
    let out = adhoc.coordinate_custom("elaine", elaine_q).unwrap();
    assert!(out.is_confirmed(), "elaine closes the three-way group");
    let j = adhoc.account_view("jerry").unwrap();
    let k = adhoc.account_view("kramer").unwrap();
    let e = adhoc.account_view("elaine").unwrap();
    println!("jerry:  flights {:?} hotels {:?}", j.flights, j.hotels);
    println!("kramer: flights {:?} hotels {:?}", k.flights, k.hotels);
    println!("elaine: flights {:?} hotels {:?}", e.flights, e.hotels);
    assert_eq!(j.flights, k.flights);
    assert_eq!(k.hotels, e.hotels);
    assert!(j.hotels.is_empty());

    println!("\nAll Section 3.1 scenarios completed successfully.");
}

fn kind(out: &BookingOutcome) -> &'static str {
    match out {
        BookingOutcome::Confirmed(_) => "confirmed",
        BookingOutcome::Waiting(_) => "waiting for partners",
    }
}
