//! The loaded-system scalability demonstration (paper, Section 3):
//! "we also demonstrate the scalability of our coordination algorithm
//! by allowing our examples to be run on a loaded system, where a large
//! number of entangled queries are trying to coordinate
//! simultaneously."
//!
//! The demo preloads N unmatchable pending queries, then measures how
//! long a fresh pair takes to coordinate on top of that standing load,
//! for the incremental indexed matcher and for the naive
//! subset-enumeration baseline.
//!
//! Run with: `cargo run --release --example loaded_system`

use std::time::Instant;

use youtopia::core::MatchConfig;
use youtopia::travel::{drive_batched, WorkloadGen};
use youtopia::{
    Coordinator, CoordinatorConfig, MatcherKind, ShardedConfig, ShardedCoordinator, Submission,
};

fn measure(matcher: MatcherKind, noise: usize, trials: usize) -> (f64, u64) {
    let mut gen = WorkloadGen::new(42);
    let db = gen
        .build_database(200, &["Paris", "Rome", "London"])
        .unwrap();
    // The workload is pairs, so a group-size bound of 3 is generous for
    // both matchers. Without a bound the naive baseline enumerates
    // ~2^pending subsets per *unmatched* arrival and never terminates —
    // which is itself the point of E7, but we want numbers on the page.
    let config = CoordinatorConfig {
        matcher,
        match_config: MatchConfig {
            max_group_size: 3,
            ..MatchConfig::default()
        },
        ..CoordinatorConfig::default()
    };
    let coordinator = Coordinator::with_config(db, config);

    // standing load: `noise` pending queries that never match
    for r in gen.noise(noise, "Paris") {
        let sub = coordinator.submit_sql(&r.owner, &r.sql).unwrap();
        assert!(matches!(sub, Submission::Pending(_)));
    }
    assert_eq!(coordinator.pending_count(), noise);

    // measured work: fresh pairs coordinate on top of the load, and
    // lonely queries arrive that match nobody (the common case on a
    // loaded system, and where the naive algorithm pays)
    let started = Instant::now();
    for t in 0..trials {
        let a = format!("probeA{t}");
        let b = format!("probeB{t}");
        let first = WorkloadGen::pair_request(&a, &b, "Paris");
        let second = WorkloadGen::pair_request(&b, &a, "Paris");
        let s1 = coordinator.submit_sql(&first.owner, &first.sql).unwrap();
        assert!(matches!(s1, Submission::Pending(_)));
        let s2 = coordinator.submit_sql(&second.owner, &second.sql).unwrap();
        assert!(
            matches!(s2, Submission::Answered(_)),
            "probe pair must match"
        );
        let lonely = WorkloadGen::pair_request(&format!("lone{t}"), "nobody", "Paris");
        let s3 = coordinator.submit_sql(&lonely.owner, &lonely.sql).unwrap();
        assert!(matches!(s3, Submission::Pending(_)));
    }
    let elapsed = started.elapsed().as_secs_f64();
    let per_step_ms = elapsed * 1e3 / trials as f64;
    let work = coordinator.stats().match_work;
    (
        per_step_ms,
        work.candidates_considered + work.subsets_tested,
    )
}

/// The sharded variant: the same standing load, spread over four
/// relation families, probed through batched submission. The closing
/// arrival's match and cascade only scan the probe's own shard.
fn measure_sharded(noise: usize, trials: usize) -> f64 {
    const RELATIONS: usize = 4;
    let mut gen = WorkloadGen::new(42);
    let db = gen
        .build_database(200, &["Paris", "Rome", "London"])
        .unwrap();
    let coordinator = ShardedCoordinator::with_config(
        db,
        ShardedConfig {
            shards: 4,
            base: CoordinatorConfig {
                match_config: MatchConfig {
                    max_group_size: 3,
                    ..MatchConfig::default()
                },
                ..CoordinatorConfig::default()
            },
            ..Default::default()
        },
    );
    let standing = gen.noise_multi(noise, "Paris", RELATIONS);
    let report = drive_batched(&coordinator, &standing, 256);
    assert_eq!(report.pending, noise);

    let started = Instant::now();
    for t in 0..trials {
        let rel = format!("Reservation{}", t % RELATIONS);
        let a = format!("probeA{t}");
        let b = format!("probeB{t}");
        let batch = vec![
            WorkloadGen::pair_request_on(&rel, &a, &b, "Paris"),
            WorkloadGen::pair_request_on(&rel, &b, &a, "Paris"),
            WorkloadGen::pair_request_on(&rel, &format!("lone{t}"), "nobody", "Paris"),
        ];
        let report = drive_batched(&coordinator, &batch, batch.len());
        // within a batch the pair's first half reports Pending (its
        // notification arrives through the ticket); only the closing
        // half and the lonely arrival differ in outcome
        assert_eq!(report.answered, 1, "probe pair must match");
        assert_eq!(report.pending, 2);
    }
    started.elapsed().as_secs_f64() * 1e3 / trials as f64
}

fn main() {
    println!("Loaded-system experiment (E7): coordination latency vs standing load");
    println!("each step = one matched pair + one unmatched arrival");
    println!("(`work` counts candidate heads considered + subsets tested)\n");
    println!(
        "{:>8} | {:>22} | {:>22}",
        "pending", "indexed matcher", "naive baseline"
    );
    println!(
        "{:>8} | {:>10} {:>11} | {:>10} {:>11}",
        "", "ms/step", "work", "ms/step", "work"
    );
    println!("---------+------------------------+-----------------------");

    for &noise in &[0usize, 10, 50, 100, 500, 1000, 2000] {
        let trials = 10;
        let (indexed_ms, indexed_work) = measure(MatcherKind::Incremental, noise, trials);
        // the naive matcher's subset enumeration explodes; keep its load
        // bounded so the demo finishes (this asymmetry IS the result)
        let (naive_ms, naive_work) = if noise <= 500 {
            measure(MatcherKind::Naive, noise, trials)
        } else {
            (f64::NAN, 0)
        };
        if naive_ms.is_nan() {
            println!(
                "{noise:>8} | {indexed_ms:>10.3} {indexed_work:>11} | {:>10} {:>11}",
                "skipped", "-"
            );
        } else {
            println!(
                "{noise:>8} | {indexed_ms:>10.3} {indexed_work:>11} | {naive_ms:>10.3} {naive_work:>11}"
            );
        }
    }

    println!("\nSharded coordinator (4 shards, batched submission) on the same load:");
    println!("{:>8} | {:>10}", "pending", "ms/step");
    println!("---------+-----------");
    for &noise in &[0usize, 100, 500, 1000, 2000] {
        let sharded_ms = measure_sharded(noise, 10);
        println!("{noise:>8} | {sharded_ms:>10.3}");
    }

    println!(
        "\nShape check (matches the paper's scalability claim): the indexed matcher's \
         per-pair latency stays near-flat as pending queries grow, because the \
         constant-position index only surfaces the handful of heads naming the right \
         partner. The naive baseline re-enumerates subsets of the whole pending set \
         and falls off a cliff — and that is with its group-size bound already \
         lowered to 3; at the default bound of 16 it does not terminate at all."
    );
}
