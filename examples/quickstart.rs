//! Quickstart: the paper's worked example (Section 2.1 and Figure 1).
//!
//! Kramer wants to travel to Paris on the same flight as Jerry. Each
//! submits an entangled query; neither can be answered alone. When both
//! are in the system, Youtopia answers them jointly with a shared,
//! nondeterministically chosen flight number.
//!
//! Run with: `cargo run --example quickstart`

use youtopia::{run_sql, Coordinator, Database, StatementOutcome, Submission};

fn main() {
    // ---- the Figure 1 database -------------------------------------- //
    let db = Database::new();
    for sql in [
        "CREATE TABLE Flights (fno INT PRIMARY KEY, dest STRING NOT NULL)",
        "INSERT INTO Flights VALUES (122, 'Paris'), (123, 'Paris'), (134, 'Paris'), \
         (136, 'Rome')",
        "CREATE TABLE Airlines (fno INT PRIMARY KEY, airline STRING NOT NULL)",
        "INSERT INTO Airlines VALUES (122, 'United'), (123, 'United'), \
         (134, 'Lufthansa'), (136, 'Alitalia')",
    ] {
        run_sql(&db, sql).expect("setup succeeds");
    }
    println!("Flight database (paper, Figure 1a):");
    if let StatementOutcome::Rows(rs) = run_sql(
        &db,
        "SELECT f.fno, f.dest, a.airline FROM Flights f \
                      JOIN Airlines a ON f.fno = a.fno ORDER BY f.fno",
    )
    .unwrap()
    {
        for row in &rs.rows {
            println!("  {row}");
        }
    }

    // ---- the coordination component --------------------------------- //
    let coordinator = Coordinator::new(db);

    // Kramer's entangled query, verbatim from the paper.
    let kramer_sql = "SELECT 'Kramer', fno INTO ANSWER Reservation \
                      WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') \
                      AND ('Jerry', fno) IN ANSWER Reservation \
                      CHOOSE 1";
    println!("\nKramer submits:\n  {kramer_sql}");
    let kramer = coordinator
        .submit_sql("kramer", kramer_sql)
        .expect("safe query");
    let Submission::Pending(ticket) = kramer else {
        unreachable!("no partner yet: the query must wait");
    };
    println!(
        "  -> not answerable alone; registered as {} ({} pending)",
        ticket.id,
        coordinator.pending_count()
    );

    // Jerry's symmetric query: the names are swapped.
    let jerry_sql = "SELECT 'Jerry', fno INTO ANSWER Reservation \
                     WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') \
                     AND ('Kramer', fno) IN ANSWER Reservation \
                     CHOOSE 1";
    println!("\nJerry submits the symmetric query:\n  {jerry_sql}");
    let jerry = coordinator
        .submit_sql("jerry", jerry_sql)
        .expect("safe query")
        .answered()
        .expect("the pair matches immediately");

    // Kramer is notified asynchronously.
    let kramer = ticket
        .receiver
        .try_recv()
        .expect("kramer's notification is waiting");

    println!("\nJointly answered (group {:?}):", jerry.group);
    let (rel, jerry_tuple) = &jerry.answers[0];
    let (_, kramer_tuple) = &kramer.answers[0];
    println!("  {rel}{jerry_tuple}   <- Jerry's answer");
    println!("  {rel}{kramer_tuple}   <- Kramer's answer");

    let jerry_fno = jerry_tuple.values()[1].as_int().unwrap();
    let kramer_fno = kramer_tuple.values()[1].as_int().unwrap();
    assert_eq!(
        jerry_fno, kramer_fno,
        "mutual constraint satisfaction (Figure 1b)"
    );
    assert!(
        [122, 123, 134].contains(&jerry_fno),
        "the choice is always a Paris flight, never Rome's 136"
    );
    println!(
        "\nBoth received flight {jerry_fno} — one of the Paris flights, chosen \
         nondeterministically (CHOOSE 1)."
    );

    // The answer relation is a real table; regular SQL sees it.
    if let StatementOutcome::Rows(rs) =
        run_sql(coordinator.db(), "SELECT * FROM Reservation").unwrap()
    {
        println!("\nThe shared answer relation now contains:");
        for row in &rs.rows {
            println!("  {row}");
        }
    }
    let stats = coordinator.stats();
    println!(
        "\nstats: submitted={} groups_matched={} matching_time={:.3}ms",
        stats.submitted,
        stats.groups_matched,
        stats.matching_nanos as f64 / 1e6
    );
}
