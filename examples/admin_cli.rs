//! The administrative interface of Section 3.2: "an SQL command line
//! which allows SQL and entangled queries to be input directly to the
//! system", plus "a special mode that enables visual inspection of the
//! state of the system ... such as the set of queries pending to be
//! entangled and their representation in the system."
//!
//! Run the scripted session: `cargo run --example admin_cli`
//! Run interactively:        `cargo run --example admin_cli -- --interactive`

use std::io::{BufRead, Write};

use youtopia::travel::{AdminConsole, TravelService};

fn main() {
    let site = TravelService::bootstrap_demo().expect("demo stack boots");
    let console = AdminConsole::new(site.db().clone(), site.coordinator().clone());

    let interactive = std::env::args().any(|a| a == "--interactive");
    if interactive {
        repl(&console);
        return;
    }

    // The scripted session demonstrates the full §3.2 surface.
    let script: &[(&str, &str)] = &[
        ("admin", "SHOW TABLES"),
        (
            "admin",
            "SELECT fno, dest, price, seats FROM Flights ORDER BY fno",
        ),
        (
            "admin",
            "SELECT dest, COUNT(*) AS flights, MIN(price) AS cheapest \
                   FROM Flights GROUP BY dest ORDER BY dest",
        ),
        (
            "admin",
            "INSERT INTO Flights VALUES (999, 'New York', 'Berlin', 3, 199.0, 2)",
        ),
        (
            "admin",
            "UPDATE Flights SET price = price - 50 WHERE fno = 999",
        ),
        ("admin", "SELECT * FROM Flights WHERE fno = 999"),
        // plans and coordination IR without executing
        ("admin", "EXPLAIN SELECT dest FROM Flights WHERE fno = 122"),
        (
            "admin",
            "EXPLAIN SELECT 'Kramer', fno INTO ANSWER Reservation \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') \
             AND ('Jerry', fno) IN ANSWER Reservation CHOOSE 1",
        ),
        // entangled queries typed straight into the command line
        (
            "kramer",
            "SELECT 'Kramer', fno INTO ANSWER Reservation \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') \
             AND ('Jerry', fno) IN ANSWER Reservation CHOOSE 1",
        ),
        ("admin", "SHOW PENDING"),
        ("admin", "\\graph"),
        (
            "jerry",
            "SELECT 'Jerry', fno INTO ANSWER Reservation \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') \
             AND ('Kramer', fno) IN ANSWER Reservation CHOOSE 1",
        ),
        ("admin", "SHOW PENDING"),
        ("admin", "SELECT * FROM Reservation"),
        // error reporting
        ("admin", "SELECT 'X', v INTO ANSWER R CHOOSE 1"),
        ("admin", "SELECT * FROM NoSuchTable"),
    ];

    for (user, line) in script {
        println!("youtopia({user})> {line}");
        let out = match *line {
            "\\graph" => console.render_match_graph(),
            sql => console.execute_as(user, sql),
        };
        println!("{out}\n");
    }

    println!("-- coordination statistics --");
    println!("{}", console.render_stats());
}

fn repl(console: &AdminConsole) {
    println!("Youtopia admin console. SQL and entangled queries accepted.");
    println!("Commands: SHOW TABLES | SHOW PENDING | EXPLAIN <query> | \\graph | \\stats | \\q");
    let stdin = std::io::stdin();
    loop {
        print!("youtopia> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            return;
        }
        let line = line.trim();
        match line {
            "" => continue,
            "\\q" | "quit" | "exit" => return,
            "\\stats" => println!("{}", console.render_stats()),
            "\\graph" => println!("{}", console.render_match_graph()),
            sql => println!("{}", console.execute(sql)),
        }
    }
}
