//! Durability demo: coordinated answers survive a crash.
//!
//! Entangled matches are applied atomically inside a storage
//! transaction, and committed transactions reach the write-ahead log —
//! so the joint answers the coordinator produced are exactly as durable
//! as ordinary SQL writes. This example books a coordinated pair,
//! "crashes" (drops the process state), recovers from the WAL, verifies
//! the reservations, then compacts the log with a checkpoint.
//!
//! Run with: `cargo run --example durability`

use youtopia::storage::Wal;
use youtopia::{run_sql, Coordinator, Database, StatementOutcome};

fn main() {
    let dir = std::env::temp_dir().join("youtopia_durability_demo");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let wal_path = dir.join("demo.wal");
    let _ = std::fs::remove_file(&wal_path);

    // ---- session 1: build, coordinate, crash ------------------------- //
    println!(
        "session 1: creating database with WAL at {}",
        wal_path.display()
    );
    {
        let db = Database::with_wal(Wal::open(&wal_path).expect("open wal"));
        run_sql(
            &db,
            "CREATE TABLE Flights (fno INT PRIMARY KEY, dest STRING)",
        )
        .unwrap();
        run_sql(
            &db,
            "INSERT INTO Flights VALUES (122,'Paris'), (123,'Paris'), (136,'Rome')",
        )
        .unwrap();
        // churn to make the log worth compacting later
        for round in 0..20 {
            run_sql(
                &db,
                &format!("UPDATE Flights SET dest = 'Paris{round}' WHERE fno = 136"),
            )
            .unwrap();
        }
        run_sql(&db, "UPDATE Flights SET dest = 'Rome' WHERE fno = 136").unwrap();

        let co = Coordinator::new(db);
        co.submit_sql(
            "kramer",
            "SELECT 'Kramer', fno INTO ANSWER Reservation \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') \
             AND ('Jerry', fno) IN ANSWER Reservation CHOOSE 1",
        )
        .unwrap();
        let jerry = co
            .submit_sql(
                "jerry",
                "SELECT 'Jerry', fno INTO ANSWER Reservation \
                 WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') \
                 AND ('Kramer', fno) IN ANSWER Reservation CHOOSE 1",
            )
            .unwrap()
            .answered()
            .expect("pair matches");
        println!(
            "  coordinated on flight {} — then the process 'crashes'",
            jerry.answers[0].1.values()[1]
        );
        // db, coordinator dropped: simulated crash (the WAL has everything)
    }

    // ---- session 2: recover and verify -------------------------------- //
    println!("session 2: recovering from the WAL");
    let recovered =
        Database::recover(Wal::open(&wal_path).expect("reopen wal")).expect("replay succeeds");
    let StatementOutcome::Rows(rs) = run_sql(&recovered, "SELECT * FROM Reservation").unwrap()
    else {
        unreachable!()
    };
    assert_eq!(rs.rows.len(), 2, "both coordinated answers survived");
    println!("  recovered answer relation:");
    for row in &rs.rows {
        println!("    {row}");
    }
    let fnos: std::collections::HashSet<String> =
        rs.rows.iter().map(|r| r.values()[1].to_string()).collect();
    assert_eq!(fnos.len(), 1, "still the same coordinated flight");

    // ---- checkpoint: compact the churned log -------------------------- //
    let before = std::fs::metadata(&wal_path).unwrap().len();
    recovered.checkpoint().expect("checkpoint succeeds");
    let after = std::fs::metadata(&wal_path).unwrap().len();
    println!("checkpoint compacted the WAL: {before} -> {after} bytes");
    assert!(after < before, "dead updates were dropped");

    // the compacted log still recovers to the same state
    let again = Database::recover(Wal::open(&wal_path).unwrap()).unwrap();
    let StatementOutcome::Rows(rs2) = run_sql(&again, "SELECT COUNT(*) FROM Reservation").unwrap()
    else {
        unreachable!()
    };
    assert_eq!(rs2.rows[0].values()[0].as_int(), Some(2));
    println!("post-checkpoint recovery verified. done.");

    let _ = std::fs::remove_file(&wal_path);
}
