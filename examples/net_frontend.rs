//! Network front-end smoke: a real TCP server, real sockets, tenants.
//!
//! Spins up a [`NetServer`] over a sharded coordinator and exercises
//! the whole session lifecycle from the outside:
//!
//! * coordinating pairs, each side on its own connection, answered
//!   across the server's single event loop;
//! * a session that vanishes mid-coordination and **resumes** with its
//!   token — the reattached connection receives the answer;
//! * a greedy tenant capped by a per-tenant in-flight quota, its
//!   overflow rejected with `Quota` errors, its survivors cancelled;
//! * a scale phase: 1024 concurrent sessions (connect + `Hello` + one
//!   standing submission each) held open against the single reactor
//!   thread, probed for liveness, then torn down to zero;
//! * a final per-tenant ledger check: every submission is accounted
//!   for (`submitted == answered + cancelled + expired + aborted +
//!   in_flight`).
//!
//! Run with: `cargo run --release --example net_frontend`
//!
//! Exits non-zero (panics) on any lost answer, mis-accounted ledger,
//! or quota leak — CI runs this as the net smoke test.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use youtopia::net::{ErrorCode, NetError, Outcome, SubmitOutcome};
use youtopia::travel::WorkloadGen;
use youtopia::{
    AuditConfig, Clock, NetClient, NetServer, ServerConfig, ShardedConfig, ShardedCoordinator,
    SystemClock, TenantQuotas, TenantRegistry,
};

const PAIRS: usize = 32;
const RELATIONS: usize = 4;
const GREEDY_CAP: usize = 8;
const GREEDY_SUBMITS: usize = 40;
const SCALE_SESSIONS: usize = 1024;
const SCALE_WORKERS: usize = 16;
const PUSH_WAIT: Duration = Duration::from_secs(10);

fn pair_sql(relation: &str, me: &str, friend: &str) -> String {
    WorkloadGen::pair_request_on(relation, me, friend, "Paris").sql
}

/// Waits until the client either already resolved `qid` at submit time
/// or receives its completion push; panics on anything but `Answered`.
fn expect_answered(client: &mut NetClient, submitted: SubmitOutcome) {
    match submitted {
        SubmitOutcome::Done(_, Outcome::Answered { .. }) => {}
        SubmitOutcome::Done(qid, other) => panic!("q{qid} resolved {other:?}, want Answered"),
        SubmitOutcome::Pending(qid) => loop {
            match client.next_event(PUSH_WAIT).expect("event stream healthy") {
                Some((got, Outcome::Answered { .. })) if got == qid => break,
                Some((got, outcome)) if got == qid => {
                    panic!("q{qid} resolved {outcome:?}, want Answered")
                }
                Some(_) => continue,
                None => panic!("no completion push for q{qid} within {PUSH_WAIT:?}"),
            }
        },
    }
}

fn main() {
    // the scale phase holds both ends of 1k+ connections in this
    // process; lift the fd soft limit before anything binds
    youtopia::net::raise_nofile_limit((4 * SCALE_SESSIONS) as u64).expect("raise fd limit");
    let mut generator = WorkloadGen::new(0xBEEF);
    let db = generator
        .build_database(100, &["Paris", "Rome"])
        .expect("database builds");
    // audit on: every submit/terminal lands in sys_audit, served
    // remotely by the tenant-scoped AuditQuery (phase 3.5)
    let mut shard_config = ShardedConfig::default();
    shard_config.base.audit = AuditConfig::enabled();
    let co = Arc::new(ShardedCoordinator::with_config(db, shard_config));
    let tenants = TenantRegistry::new(TenantQuotas::default());
    tenants.set_quotas(
        "greedy",
        TenantQuotas {
            max_in_flight: GREEDY_CAP,
            ..TenantQuotas::unlimited()
        },
    );
    let clock: Arc<dyn Clock> = Arc::new(SystemClock);
    let mut server = NetServer::spawn(
        Arc::clone(&co),
        Arc::clone(&tenants),
        ServerConfig::default(),
        clock,
    )
    .expect("server binds");
    let addr = server.local_addr();
    println!("serving     : {addr}");

    // ---- phase 1: coordinating pairs over real sockets ------------- //
    let started = Instant::now();
    let answered = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    for p in 0..PAIRS {
        let answered = Arc::clone(&answered);
        handles.push(std::thread::spawn(move || {
            let relation = format!("Reservation{}", p % RELATIONS);
            let a = format!("pairs/p{p}a");
            let b = format!("pairs/p{p}b");
            let mut ca = NetClient::connect(addr).expect("connect a");
            ca.hello(&a).expect("hello a");
            let first = ca
                .submit(&pair_sql(&relation, &a, &b), None)
                .expect("submit a");
            let mut cb = NetClient::connect(addr).expect("connect b");
            cb.hello(&b).expect("hello b");
            let second = cb
                .submit(&pair_sql(&relation, &b, &a), None)
                .expect("submit b");
            expect_answered(&mut cb, second);
            expect_answered(&mut ca, first);
            answered.fetch_add(2, Ordering::Relaxed);
            ca.bye().ok();
            cb.bye().ok();
        }));
    }
    for handle in handles {
        handle.join().expect("pair thread");
    }
    assert_eq!(answered.load(Ordering::Relaxed), PAIRS * 2);
    println!(
        "pairs       : {} answers across {} connections ({:.2?})",
        PAIRS * 2,
        PAIRS * 2,
        started.elapsed()
    );

    // ---- phase 2: disconnect mid-coordination, resume, answer ------ //
    let owner = "roam/alice";
    let mut c1 = NetClient::connect(addr).expect("connect");
    let token = c1.hello(owner).expect("hello");
    let pending = c1
        .submit(&pair_sql("Reservation0", owner, "roam/bob"), None)
        .expect("submit");
    let SubmitOutcome::Pending(qid) = pending else {
        panic!("partnerless query cannot be answered yet");
    };
    drop(c1); // vanish without Bye: the query stays registered

    let mut c2 = NetClient::connect(addr).expect("reconnect");
    let (_token2, reattached) = c2.resume(owner, token).expect("resume");
    assert_eq!(reattached, 1, "the pending query reattaches");
    // a stale token (the pre-resume one) must now be refused
    let mut c3 = NetClient::connect(addr).expect("connect");
    match c3.resume(owner, token) {
        Err(NetError::Remote {
            code: ErrorCode::BadSession,
            ..
        }) => {}
        other => panic!("stale token accepted: {other:?}"),
    }

    let mut cb = NetClient::connect(addr).expect("connect partner");
    cb.hello("roam/bob").expect("hello partner");
    let closer = cb
        .submit(&pair_sql("Reservation0", "roam/bob", owner), None)
        .expect("submit closer");
    expect_answered(&mut cb, closer);
    expect_answered(&mut c2, SubmitOutcome::Pending(qid));
    cb.bye().ok();
    c2.bye().ok();
    println!("reattach    : q{qid} answered on the resumed session");

    // ---- phase 3: greedy tenant hits its in-flight quota ----------- //
    let mut greedy = NetClient::connect(addr).expect("connect greedy");
    greedy.hello("greedy/flood").expect("hello greedy");
    let mut accepted = Vec::new();
    let mut rejected = 0usize;
    for i in 0..GREEDY_SUBMITS {
        let sql = pair_sql(
            "Reservation1",
            &format!("greedy/s{i}"),
            &format!("ghost{i}"),
        );
        match greedy.submit(&sql, None) {
            Ok(SubmitOutcome::Pending(qid)) => accepted.push(qid),
            Ok(SubmitOutcome::Done(qid, outcome)) => {
                panic!("partnerless q{qid} resolved on arrival: {outcome:?}")
            }
            Err(NetError::Remote {
                code: ErrorCode::Quota,
                ..
            }) => rejected += 1,
            Err(e) => panic!("unexpected submit failure: {e}"),
        }
    }
    assert_eq!(accepted.len(), GREEDY_CAP, "quota admits exactly the cap");
    assert_eq!(rejected, GREEDY_SUBMITS - GREEDY_CAP);
    for qid in &accepted {
        greedy.cancel(*qid).expect("cancel accepted");
    }
    let mut cancelled = 0usize;
    while cancelled < accepted.len() {
        match greedy.next_event(PUSH_WAIT).expect("event stream healthy") {
            Some((_, Outcome::Cancelled)) => cancelled += 1,
            Some((qid, outcome)) => panic!("q{qid} resolved {outcome:?}, want Cancelled"),
            None => panic!("cancellation push missing"),
        }
    }
    let ledger = greedy
        .stats()
        .expect("stats reply")
        .expect("greedy has a ledger");
    assert_eq!(ledger.submitted, GREEDY_CAP as u64);
    assert_eq!(ledger.rejected, (GREEDY_SUBMITS - GREEDY_CAP) as u64);
    assert_eq!(ledger.cancelled, GREEDY_CAP as u64);
    assert_eq!(ledger.in_flight, 0);
    greedy.bye().ok();
    println!(
        "quota       : {} admitted (cap {}), {} rejected, ledger closed",
        accepted.len(),
        GREEDY_CAP,
        rejected
    );

    // ---- phase 3.5: tenant-scoped remote audit --------------------- //
    let mut auditor = NetClient::connect(addr).expect("connect auditor");
    auditor.hello("pairs/auditor").expect("hello auditor");
    let rows = auditor.audit("pairs", 4096).expect("audit reply");
    let submits = rows.iter().filter(|r| r.kind == "submit").count();
    let answers = rows.iter().filter(|r| r.outcome == "answered").count();
    assert_eq!(submits, PAIRS * 2, "one submit row per pair side");
    assert_eq!(answers, PAIRS * 2, "one answered row per pair side");
    assert!(
        rows.iter().all(|r| r.tenant == "pairs"),
        "reply carries only the session's tenant"
    );
    // another tenant's ledger is refused
    match auditor.audit("greedy", 16) {
        Err(NetError::Remote {
            code: ErrorCode::Forbidden,
            ..
        }) => {}
        other => panic!("cross-tenant audit not denied: {other:?}"),
    }
    auditor.bye().ok();
    println!(
        "audit       : {} rows for tenant 'pairs' ({} submits, {} answers), cross-tenant denied",
        rows.len(),
        submits,
        answers
    );

    // ---- phase 4: 1k+ concurrent sessions on one reactor thread ---- //
    let scale_started = Instant::now();
    let scale_clients: Vec<NetClient> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SCALE_WORKERS)
            .map(|w| {
                scope.spawn(move || {
                    let mut clients = Vec::new();
                    let mut s = w;
                    while s < SCALE_SESSIONS {
                        let owner = format!("scale{w}/s{s}");
                        let mut client = NetClient::connect(addr).expect("connect scale");
                        client.hello(&owner).expect("hello scale");
                        // one standing never-matching query keeps the
                        // session live in the coordinator, not just the
                        // socket table
                        let sql = pair_sql(
                            &format!("Reservation{}", s % RELATIONS),
                            &owner,
                            &format!("ghost{s}"),
                        );
                        match client.submit(&sql, None).expect("submit scale") {
                            SubmitOutcome::Pending(_) => {}
                            SubmitOutcome::Done(qid, o) => {
                                panic!("partnerless q{qid} resolved early: {o:?}")
                            }
                        }
                        clients.push(client);
                        s += SCALE_WORKERS;
                    }
                    clients
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("scale worker"))
            .collect()
    });
    assert_eq!(scale_clients.len(), SCALE_SESSIONS);
    let live = server.stats().active;
    assert!(
        live >= SCALE_SESSIONS as u64,
        "server reports {live} active sessions, want >= {SCALE_SESSIONS}"
    );
    // every session still answers with the full table open
    let mut probe = scale_clients;
    for client in probe.iter_mut().step_by(SCALE_SESSIONS / 8) {
        client.stats().expect("stats under load");
    }
    drop(probe);
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.stats().active > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.stats().active, 0, "scale sessions torn down");
    println!(
        "scale       : {SCALE_SESSIONS} concurrent sessions established and reaped ({:.2?})",
        scale_started.elapsed()
    );

    // ---- final: every tenant's ledger balances --------------------- //
    for stats in tenants.stats() {
        let accounted = stats.answered
            + stats.cancelled
            + stats.expired
            + stats.aborted
            + stats.in_flight as u64;
        assert_eq!(
            stats.submitted, accounted,
            "tenant '{}' ledger leaks: submitted {} != accounted {}",
            stats.tenant, stats.submitted, accounted
        );
    }
    let system = co.stats();
    assert_eq!(
        system.rejected_quota,
        (GREEDY_SUBMITS - GREEDY_CAP) as u64,
        "system-wide quota-rejection counter"
    );
    server.shutdown();
    println!("net_frontend: OK ({:.2?} total)", started.elapsed());
}
