//! Async front-end demo: thousands of in-flight coordinations, one
//! waiter thread, zero threads blocked per query.
//!
//! The sync API parks one OS thread per pending entangled query (a
//! blocking ticket channel). This example is the reason the async API
//! exists: a front-end submits a few thousand coordinations with
//! `submit_batch_sql_async`, holds every resulting
//! `CoordinationFuture` in a single `WaiterSet`, and harvests
//! completions as partners arrive, cancels fire, and an expiry sweep
//! retires the stragglers — all on one thread. At the end, every
//! future must have resolved exactly once.
//!
//! Run with: `cargo run --release --example async_frontend`
//!
//! Exits non-zero (panics) if any completion is lost, duplicated, or
//! mis-typed — CI runs this as the async smoke test.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use youtopia::travel::WorkloadGen;
use youtopia::{CoordinationOutcome, QueryId, ShardedCoordinator, WaiterSet};

const NOISE: usize = 3000; // standing load: queries whose partner never comes
const PAIRS: usize = 400; // coordinations that do complete
const BATCH: usize = 128;

fn main() {
    let mut generator = WorkloadGen::new(0xF00D);
    let db = generator
        .build_database(100, &["Paris", "Rome"])
        .expect("database builds");
    let co = ShardedCoordinator::new(db);
    let mut set = WaiterSet::new();
    let mut outcomes: HashMap<QueryId, CoordinationOutcome> = HashMap::new();
    let record = |harvested: Vec<(QueryId, CoordinationOutcome)>,
                  outcomes: &mut HashMap<QueryId, CoordinationOutcome>| {
        for (qid, outcome) in harvested {
            assert!(
                outcomes.insert(qid, outcome).is_none(),
                "future {qid} resolved twice"
            );
        }
    };

    // ---- phase 1: build up thousands of in-flight futures ---------- //
    let started = Instant::now();
    let mut requests = generator.noise_multi(NOISE, "Paris", 8);
    let storm = generator.pair_storm_multi(PAIRS, "Paris", 8);
    let (first_halves, second_halves) = storm.split_at(PAIRS);
    requests.extend(first_halves.to_vec());
    let mut submitted = 0usize;
    for chunk in requests.chunks(BATCH) {
        let batch: Vec<(String, String)> = chunk
            .iter()
            .map(|r| (r.owner.clone(), r.sql.clone()))
            .collect();
        for outcome in co.submit_batch_sql_async(&batch) {
            set.insert(outcome.expect("generated queries are safe"));
            submitted += 1;
        }
    }
    record(set.poll_ready(), &mut outcomes);
    println!(
        "in flight   : {} futures held by one WaiterSet after {} submissions ({:.2?}; {} threads blocked)",
        set.len(),
        submitted,
        started.elapsed(),
        0
    );
    assert!(set.len() >= NOISE + PAIRS - 50, "the load is standing");

    // ---- phase 2: partners arrive, completions fan out ------------- //
    for chunk in second_halves.chunks(BATCH) {
        let batch: Vec<(String, String)> = chunk
            .iter()
            .map(|r| (r.owner.clone(), r.sql.clone()))
            .collect();
        for outcome in co.submit_batch_sql_async(&batch) {
            set.insert(outcome.expect("generated queries are safe"));
            submitted += 1;
        }
        record(set.poll_ready(), &mut outcomes);
    }
    let answered = outcomes
        .values()
        .filter(|o| matches!(o, CoordinationOutcome::Answered(_)))
        .count();
    println!(
        "matched     : {answered} futures resolved Answered ({} pairs), {} still in flight",
        answered / 2,
        set.len()
    );
    assert_eq!(answered, 2 * PAIRS, "both halves of every pair resolve");

    // ---- phase 3: a user gives up — cancel wakes the future -------- //
    let mut cancelled = 0usize;
    for i in 0..100 {
        // noise owners are unique; cancel their single pending query
        cancelled += co.cancel_owner(&format!("noise{i}"));
    }
    // wakers fired synchronously inside the cancel calls, so a
    // non-blocking poll harvests them all
    record(set.poll_ready(), &mut outcomes);
    let cancelled_seen = outcomes
        .values()
        .filter(|o| matches!(o, CoordinationOutcome::Cancelled))
        .count();
    println!(
        "cancelled   : {cancelled} queries withdrawn, {cancelled_seen} futures woke Cancelled"
    );
    assert_eq!(
        cancelled, cancelled_seen,
        "every cancel resolves its future"
    );

    // ---- phase 4: the deadline sweep retires the rest -------------- //
    let expired = co.expire_before(u64::MAX).len();
    record(set.drain_timeout(Duration::from_secs(30)), &mut outcomes);
    let expired_seen = outcomes
        .values()
        .filter(|o| matches!(o, CoordinationOutcome::Expired))
        .count();
    println!("expired     : {expired} queries swept, {expired_seen} futures woke Expired");
    assert_eq!(expired, expired_seen, "every expiry resolves its future");

    // ---- the ledger closes ----------------------------------------- //
    assert!(set.is_empty(), "no future left hanging");
    assert_eq!(
        outcomes.len(),
        submitted,
        "every future resolved exactly once"
    );
    assert_eq!(co.pending_count(), 0);
    co.check_routing_invariants()
        .expect("routing invariants hold");
    println!(
        "ledger      : {} futures submitted = {} answered + {} cancelled + {} expired ({:.2?} total)",
        submitted,
        answered,
        cancelled_seen,
        expired_seen,
        started.elapsed()
    );
    println!("async front-end smoke: OK");
}
