//! Kill/restart demo: the coordinator itself survives a crash.
//!
//! The `durability` example shows that *committed answers* survive;
//! this one shows that *pending coordination state* does too. A
//! WAL-backed sharded coordinator takes a multi-relation pair workload
//! part-way, is killed (every in-memory structure dropped — registry,
//! router, waiters), and is rebuilt from the log with
//! `ShardedCoordinator::recover`. Reconnecting users reattach to their
//! pending queries, the rest of the workload runs, and the final state
//! is compared against an uncrashed control run under the same seed.
//! A torn tail is also simulated: the salvaged log is cut mid-frame,
//! as a real crash during an append would leave it.
//!
//! Run with: `cargo run --release --example crash_recovery`
//!
//! Exits non-zero (panics) if the recovered run diverges from the
//! uncrashed one — CI runs this as the recovery smoke test.

use youtopia::storage::Wal;
use youtopia::travel::{run_crash_restart, CrashScenario};
use youtopia::{ShardedConfig, ShardedCoordinator};

fn main() {
    // ---- part 1: in-memory kill/restart with equivalence check ----- //
    let mut config = ShardedConfig::default();
    config.base.match_config.randomize = false;
    let scenario = CrashScenario {
        seed: 2024,
        pairs: 40,
        noise: 120,
        relations: 8,
        flights: 120,
        batch_size: 32,
        crash_after: 180,
        config,
    };
    println!(
        "scenario: {} pairs + {} noise over {} relations, killed after {} submissions",
        scenario.pairs, scenario.noise, scenario.relations, scenario.crash_after
    );
    let report = run_crash_restart(&scenario).expect("scenario runs");
    println!(
        "before kill : {} answered, {} pending ({} bytes of WAL salvaged)",
        report.before.answered, report.before.pending, report.wal_bytes
    );
    println!(
        "recovery    : {} events replayed, {} pending restored, {} groups re-matched",
        report.recovery.events_replayed,
        report.recovery.restored_pending,
        report.recovery.rematched_groups
    );
    println!(
        "after restart: {} reattached waiters, {} answered, {} left pending",
        report.reattached, report.after.answered, report.pending_after
    );
    assert!(
        report.equivalent,
        "recovered run must match the uncrashed control run"
    );
    println!("equivalence  : crashed+recovered == uncrashed ✓");

    // ---- part 2: file-backed WAL with a torn tail ------------------ //
    let dir = std::env::temp_dir().join("youtopia_crash_recovery_demo");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let wal_path = dir.join("coordinator.wal");
    let _ = std::fs::remove_file(&wal_path);

    let mut generator = youtopia::WorkloadGen::new(7);
    let db = generator
        .build_database_with_wal(60, &["Paris"], Wal::open(&wal_path).expect("open wal"))
        .expect("database builds");
    let co = ShardedCoordinator::with_config(db, config);
    for request in generator.noise_multi(25, "Paris", 4) {
        co.submit_sql(&request.owner, &request.sql)
            .expect("noise submits");
    }
    assert_eq!(co.pending_count(), 25);
    drop(co); // kill

    // simulate a crash *mid-append*: tear the last frame of the file
    let bytes = std::fs::read(&wal_path).expect("read wal");
    std::fs::write(&wal_path, &bytes[..bytes.len() - 5]).expect("tear wal");

    let (recovered, file_report) =
        ShardedCoordinator::recover(Wal::open(&wal_path).expect("reopen wal"), config)
            .expect("recovery from torn file WAL");
    println!(
        "file WAL     : torn tail truncated, {} of 25 registrations recovered",
        file_report.restored_pending
    );
    // the torn frame was the last registration; everything else survives
    assert_eq!(file_report.restored_pending, 24);
    recovered
        .check_routing_invariants()
        .expect("routing invariants hold after file recovery");
    // and the recovered coordinator keeps working and logging
    let outcome = recovered.submit_sql(
        "late",
        "SELECT 'late', fno INTO ANSWER Reservation0 \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest = 'Paris') \
             AND ('ghost0', fno) IN ANSWER Reservation0 CHOOSE 1",
    );
    assert!(outcome.is_ok());
    std::fs::remove_file(&wal_path).expect("cleanup");
    println!("file WAL     : torn-tail recovery + continued logging ✓");

    // ---- part 3: a multi-frame batch torn mid-commit --------------- //
    // The group-commit writer was killed inside its append+sync
    // window: the log's unsynced suffix holds a multi-frame commit
    // group persisted OUT OF ORDER — frame k damaged while frame k+1
    // and even the group's commit marker landed. Before commit-
    // boundary markers this state replayed as a hard `WalCorrupt` and
    // needed manual truncation; now it recovers automatically to the
    // last complete commit.
    let wal_path = dir.join("torn_batch.wal");
    let _ = std::fs::remove_file(&wal_path);
    let mut generator = youtopia::WorkloadGen::new(11);
    let db = generator
        .build_database_with_wal(60, &["Paris"], Wal::open(&wal_path).expect("open wal"))
        .expect("database builds");
    let co = ShardedCoordinator::with_config(db, config);
    for request in generator.noise_multi(20, "Paris", 4) {
        co.submit_sql(&request.owner, &request.sql)
            .expect("noise submits");
    }
    assert_eq!(co.pending_count(), 20);
    drop(co); // kill

    // splice the torn group onto the synced log: two coordination
    // frames plus the marker, with the FIRST frame's payload damaged
    let mut side = Wal::in_memory();
    side.append_coordination(&[0u8; 24]).expect("side frame k");
    side.append_coordination(&[1u8; 16])
        .expect("side frame k+1");
    side.append_commit_boundary().expect("side marker");
    let mut group = side.raw_bytes().expect("memory sink").to_vec();
    group[8] ^= 0xff; // tear frame k; frame k+1 and the marker stay intact
    let mut bytes = std::fs::read(&wal_path).expect("read wal");
    bytes.extend_from_slice(&group);
    std::fs::write(&wal_path, &bytes).expect("splice torn batch");

    let (recovered, batch_report) =
        ShardedCoordinator::recover(Wal::open(&wal_path).expect("reopen wal"), config)
            .expect("torn multi-frame batch recovers automatically");
    println!(
        "torn batch   : out-of-order unsynced group rolled back, {} of 20 registrations recovered",
        batch_report.restored_pending
    );
    // the un-acknowledged group vanishes; every acked registration survives
    assert_eq!(batch_report.restored_pending, 20);
    recovered
        .check_routing_invariants()
        .expect("routing invariants hold after torn-batch recovery");
    std::fs::remove_file(&wal_path).expect("cleanup");
    println!("torn batch   : automatic mid-commit crash recovery ✓");

    println!("\ncrash recovery demo complete");
}
